//! Engine configuration.

use adapt_array::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the log-structured engine.
///
/// Defaults follow the paper's setup (§4.1): 4 KiB blocks, 64 KiB chunks,
/// 100 µs coalescing SLA, Greedy or Cost-Benefit GC.
///
/// Construct via `LssConfig::default()` (or a struct literal over it) and
/// refine with the builder-style `with_*` setters; the raw fields are
/// `#[doc(hidden)]` and kept public only for serde and struct-literal
/// construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LssConfig {
    /// Block size in bytes (the user request granularity).
    #[doc(hidden)]
    pub block_bytes: u64,
    /// Blocks per array chunk (chunk = minimum array write unit).
    #[doc(hidden)]
    pub chunk_blocks: u32,
    /// Chunks per segment.
    #[doc(hidden)]
    pub segment_chunks: u32,
    /// Logical capacity exposed to the user, in blocks.
    #[doc(hidden)]
    pub user_blocks: u64,
    /// Over-provisioning fraction: physical capacity is
    /// `user_blocks * (1 + op_ratio)` rounded up to whole segments.
    #[doc(hidden)]
    pub op_ratio: f64,
    /// Chunk coalescing SLA window in microseconds (paper: 100 µs, the
    /// Alibaba Pangu latency SLA).
    #[doc(hidden)]
    pub sla_us: u64,
    /// GC triggers when the free-segment pool drops to this many segments.
    #[doc(hidden)]
    pub gc_low_water: u32,
    /// GC keeps collecting until the pool recovers to this many segments.
    #[doc(hidden)]
    pub gc_high_water: u32,
    /// When true, the engine does not run GC inline on the write path
    /// (except as an emergency when the free pool is nearly exhausted);
    /// the embedder drives collection via [`crate::Lss::gc_step`] from
    /// dedicated threads, as the paper's prototype does (§4.4: "the number
    /// of background GC threads matches the number of client threads").
    #[doc(hidden)]
    pub background_gc: bool,
    /// How many times a chunk read hitting a *transient* array error
    /// (media retry, link hiccup) is retried before the error surfaces.
    /// Persistent faults (failed device, double fault) never retry.
    #[doc(hidden)]
    pub read_retry_limit: u32,
    /// Simulated backoff before the first read retry, in microseconds;
    /// doubles on each subsequent attempt. Accounted in
    /// [`crate::LssMetrics::retry_backoff_us`] rather than advancing the
    /// engine clock (retries must not perturb SLA deadlines).
    #[doc(hidden)]
    pub retry_backoff_us: u64,
    /// When true, inline GC overlaps foreground writes: instead of
    /// draining a whole victim inside one host write, the victim is
    /// *staged* (detached, live slots snapshotted) and its blocks migrate
    /// in bounded slices piggybacked on subsequent writes — the tail
    /// latency a monolithic collection would concentrate on one op is
    /// spread across many. Off by default: the staged interleaving is
    /// workload-order dependent, so the deterministic comparison gates
    /// keep it disabled. Forced off (legacy exact path) when the
    /// `ADAPT_GC_SYNC` env var is set or the job count is 1, so `jobs=1`
    /// runs are bit-identical to the synchronous engine.
    #[serde(default)]
    #[doc(hidden)]
    pub gc_overlap: bool,
    /// Background scrub pacing: stripes verified per host operation
    /// (0 disables scrubbing, the default). Paced exactly like the rebuild
    /// driver — a bounded amount of background work piggybacks on every
    /// host op, so scrub bandwidth scales with (and never outruns)
    /// foreground traffic. The scrub always yields to an in-flight
    /// rebuild.
    #[serde(default)]
    #[doc(hidden)]
    pub scrub_stripes_per_op: u64,
    /// Member devices in the backing array (`n`). Zero means "default"
    /// (4), so configs serialized before the geometry was tunable keep
    /// their historical meaning.
    #[serde(default)]
    #[doc(hidden)]
    pub array_devices: usize,
    /// Parity chunks per stripe (`m`): 1 = RAID-5, 2 = RAID-6, higher
    /// values use general Reed-Solomon rows. Zero means "default" (1).
    #[serde(default)]
    #[doc(hidden)]
    pub array_parity: usize,
    /// Per-stage cost attribution on the write hot path: when true the
    /// engine wall-clock-times each stage of every host write (index /
    /// placement / policy / parity / telemetry) into
    /// [`crate::StageCosts`], readable via `Lss::stage_costs`. Off by
    /// default — the disabled path pays a single branch per op and the
    /// deterministic [`crate::LssMetrics`] are bit-identical either way
    /// (timing never feeds back into engine decisions). Also enabled by
    /// the `ADAPT_STAGE_COSTS=1` env var in the bench binaries.
    #[serde(default)]
    #[doc(hidden)]
    pub stage_costs: bool,
}

impl Default for LssConfig {
    fn default() -> Self {
        Self {
            block_bytes: 4096,
            chunk_blocks: 16,  // 64 KiB chunks
            segment_chunks: 8, // 512 KiB segments
            user_blocks: 16 * 1024,
            op_ratio: 0.28,
            sla_us: 100,
            gc_low_water: 12,
            gc_high_water: 18,
            background_gc: false,
            read_retry_limit: 3,
            retry_backoff_us: 50,
            gc_overlap: false,
            scrub_stripes_per_op: 0,
            array_devices: 0,
            array_parity: 0,
            stage_costs: false,
        }
    }
}

impl LssConfig {
    /// Validate invariants; panics on an unusable configuration.
    pub fn validate(&self, num_groups: usize) {
        assert!(self.block_bytes > 0);
        assert!(self.chunk_blocks > 0);
        assert!(self.segment_chunks > 0);
        assert!(self.user_blocks >= self.segment_blocks() as u64 * 4, "capacity too small");
        assert!(self.op_ratio > 0.0, "log-structured stores need over-provisioning");
        assert!(self.gc_high_water > self.gc_low_water);
        // Every group keeps one open segment; GC must still make progress
        // with all opens allocated plus room for migration destinations.
        assert!(
            (self.gc_low_water as usize) >= num_groups + 2,
            "gc_low_water {} must exceed group count {} + 2 so GC can always allocate",
            self.gc_low_water,
            num_groups
        );
        // Spare segments must cover the GC high watermark plus one open
        // segment per group (all of which can be allocated mid-GC) with
        // margin, or the free pool can exhaust under pressure.
        let spare = self.total_segments() as i64 - self.user_segments() as i64;
        let needed = self.gc_high_water as i64 + num_groups as i64 + 2;
        assert!(
            spare > needed,
            "over-provisioned segments ({spare}) must exceed gc_high_water + groups + 2 ({needed})"
        );
    }

    /// Blocks per segment.
    pub fn segment_blocks(&self) -> u32 {
        self.chunk_blocks * self.segment_chunks
    }

    /// Segment size in bytes.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_blocks() as u64 * self.block_bytes
    }

    /// Chunk size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_blocks as u64 * self.block_bytes
    }

    /// Segments needed to hold exactly the user-visible capacity.
    pub fn user_segments(&self) -> u32 {
        self.user_blocks.div_ceil(self.segment_blocks() as u64) as u32
    }

    /// Total physical segments including over-provisioning.
    pub fn total_segments(&self) -> u32 {
        let phys_blocks = (self.user_blocks as f64 * (1.0 + self.op_ratio)).ceil() as u64;
        phys_blocks.div_ceil(self.segment_blocks() as u64) as u32
    }

    /// Array geometry consistent with this engine config: `array_devices`
    /// members with `array_parity` parity chunks per stripe (defaulting to
    /// the historical 4-device RAID-5 when either is zero/unset).
    pub fn array_config(&self) -> ArrayConfig {
        let n = if self.array_devices == 0 { 4 } else { self.array_devices };
        let m = if self.array_parity == 0 { 1 } else { self.array_parity };
        ArrayConfig::with_parity(n, m, self.chunk_bytes())
    }

    /// This config with an explicit `n` devices / `m` parity geometry.
    pub fn with_geometry(mut self, devices: usize, parity: usize) -> Self {
        self.array_devices = devices;
        self.array_parity = parity;
        self
    }

    /// This config with the given user-visible capacity in blocks.
    pub fn with_user_blocks(mut self, user_blocks: u64) -> Self {
        self.user_blocks = user_blocks;
        self
    }

    /// This config with the given over-provisioning fraction.
    pub fn with_op_ratio(mut self, op_ratio: f64) -> Self {
        self.op_ratio = op_ratio;
        self
    }

    /// This config with the given coalescing SLA window (µs).
    pub fn with_sla_us(mut self, sla_us: u64) -> Self {
        self.sla_us = sla_us;
        self
    }

    /// This config with the given GC trigger/stop watermarks (segments).
    pub fn with_gc_watermarks(mut self, low: u32, high: u32) -> Self {
        self.gc_low_water = low;
        self.gc_high_water = high;
        self
    }

    /// This config with background GC on or off (see the field docs for
    /// what the embedder then owes the engine).
    pub fn with_background_gc(mut self, background_gc: bool) -> Self {
        self.background_gc = background_gc;
        self
    }

    /// This config with the given scrub pacing (stripes verified per host
    /// op, 0 = scrubbing off).
    pub fn with_scrub_stripes_per_op(mut self, stripes: u64) -> Self {
        self.scrub_stripes_per_op = stripes;
        self
    }

    /// This config with the given transient-read retry budget and initial
    /// backoff.
    pub fn with_read_retry(mut self, limit: u32, backoff_us: u64) -> Self {
        self.read_retry_limit = limit;
        self.retry_backoff_us = backoff_us;
        self
    }

    /// This config with overlapped (staged) inline GC on or off.
    pub fn with_gc_overlap(mut self, overlap: bool) -> Self {
        self.gc_overlap = overlap;
        self
    }

    /// This config with per-stage write-path cost attribution on or off
    /// (see [`LssConfig::stage_costs`] for the determinism contract).
    pub fn with_stage_costs(mut self, enabled: bool) -> Self {
        self.stage_costs = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry() {
        let c = LssConfig::default();
        assert_eq!(c.segment_blocks(), 128);
        assert_eq!(c.segment_bytes(), 512 * 1024);
        assert_eq!(c.chunk_bytes(), 64 * 1024);
        assert_eq!(c.user_segments(), 128);
        assert!(c.total_segments() > c.user_segments());
        c.validate(6);
    }

    #[test]
    fn overprovision_accounted() {
        let c = LssConfig { user_blocks: 12800, op_ratio: 0.25, ..Default::default() };
        assert_eq!(c.user_segments(), 100);
        assert_eq!(c.total_segments(), 125);
    }

    #[test]
    #[should_panic]
    fn rejects_low_water_below_groups() {
        let c = LssConfig { gc_low_water: 5, ..Default::default() };
        c.validate(6);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_op() {
        let c = LssConfig { op_ratio: 0.0, ..Default::default() };
        c.validate(2);
    }

    #[test]
    fn array_config_chunk_matches() {
        let c = LssConfig::default();
        assert_eq!(c.array_config().chunk_bytes, c.chunk_bytes());
        assert_eq!(c.array_config().num_devices, 4, "unset geometry = historical 4-disk RAID-5");
        assert_eq!(c.array_config().parity_devices, 1);
    }

    #[test]
    fn geometry_knobs_flow_through() {
        let c = LssConfig::default().with_geometry(8, 2);
        let a = c.array_config();
        assert_eq!(a.num_devices, 8);
        assert_eq!(a.parity_devices, 2);
        assert_eq!(a.data_columns(), 6);
        assert_eq!(a.geometry().label(), "6+2");
    }
}
