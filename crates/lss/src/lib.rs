//! Log-structured storage (LSS) engine for the ADAPT reproduction.
//!
//! This crate implements the storage substrate of the paper's Fig. 1: a
//! log-structured layer that appends 4 KiB blocks into fixed-size
//! *segments*, organizes segments into *groups* (streams), coalesces blocks
//! into array *chunks* under a latency SLA (zero-padding partial chunks
//! when the 100 µs window expires), and reclaims space with a
//! garbage-collection driver using Greedy or Cost-Benefit victim selection.
//!
//! Data placement is pluggable through [`PlacementPolicy`]: the engine asks
//! the policy which group every user write and every GC rewrite should go
//! to, and notifies it of segment lifecycle events. The baselines
//! (`adapt-placement`) and ADAPT itself (`adapt-core`) are implementations
//! of that trait; the engine is policy-agnostic.
//!
//! The engine also implements the *mechanics* of ADAPT's cross-group
//! dynamic aggregation (§3.3) — shadow append and lazy append — because
//! they require bookkeeping inside the block index; policies opt in by
//! returning [`SlaAction::ShadowAppend`] from their SLA-expiry hook.
//! Policies that never do (all baselines) simply pad.
//!
//! # Model notes
//!
//! * The engine is a *simulator*: block payloads are not stored; the array
//!   below receives accounting-level chunk flushes (see `adapt-array`).
//! * GC is instantaneous in simulated time (as in the SepBIT/MiDAS public
//!   simulators); migrated blocks enter their destination group's open
//!   chunk without an SLA timer, matching the paper's Observation 2 that
//!   bulk GC traffic needs no padding.
//! * Time is driven by the caller's trace timestamps; SLA expiries between
//!   two requests are processed at their exact expiry instants.
//!
//! # Example
//!
//! ```
//! use adapt_lss::{GcSelection, Lss, LssConfig};
//! use adapt_array::CountingArray;
//! # use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, VictimMeta};
//! # struct Simple(Vec<GroupKind>);
//! # impl PlacementPolicy for Simple {
//! #     fn name(&self) -> &'static str { "simple" }
//! #     fn groups(&self) -> &[GroupKind] { &self.0 }
//! #     fn place_user(&mut self, _c: &PolicyCtx, _l: Lba) -> GroupId { 0 }
//! #     fn place_gc(&mut self, _c: &PolicyCtx, _l: Lba, _v: &VictimMeta) -> GroupId { 1 }
//! # }
//!
//! let cfg = LssConfig { user_blocks: 8 * 1024, op_ratio: 0.5, ..Default::default() };
//! let policy = Simple(vec![GroupKind::User, GroupKind::Gc]);
//! let mut engine = Lss::builder(policy, CountingArray::new(cfg.array_config()))
//!     .config(cfg)
//!     .gc_select(GcSelection::Greedy)
//!     .build();
//!
//! // Sixteen back-to-back 4 KiB writes fill exactly one 64 KiB chunk.
//! for lba in 0..16 {
//!     engine.write(lba, lba);
//! }
//! assert_eq!(engine.metrics().chunks_flushed, 1);
//! assert_eq!(engine.metrics().pad_bytes, 0);
//!
//! // A lone write pads out at the 100 µs SLA deadline.
//! engine.write(1_000_000, 42);
//! engine.advance_time(2_000_000);
//! assert_eq!(engine.metrics().padded_chunks, 1);
//! ```

pub mod builder;
pub mod config;
pub mod engine;
pub mod error;
pub mod events;
pub mod fxhash;
pub mod gc;
pub mod gc_buckets;
pub mod gc_variants;
pub mod group;
pub mod index;
pub mod latency;
pub mod metrics;
pub mod placement;
pub mod recovery;
pub mod segment;
pub mod telemetry;
pub mod types;
pub mod wal;

pub use adapt_array::Retryable;
pub use builder::EngineBuilder;
pub use config::LssConfig;
pub use engine::Lss;
pub use error::EngineError;
pub use events::{
    EngineEvent, EventConfig, EventKind, EventRecorder, EventStats, GaugeSample, PolicyEvent,
    EVENT_KINDS, KIND_LABELS,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use gc::GcSelection;
pub use gc_buckets::SegmentBuckets;
pub use gc_variants::VictimPolicy;
pub use index::{BlockEntry, BlockIndex, DenseMap, VersionIndex};
pub use latency::{LatencyHistogram, LatencySummary};
pub use metrics::{GroupTraffic, LssMetrics, StageCosts};
pub use placement::{
    GroupKind, GroupSnapshot, PlacementPolicy, PolicyCtx, ReclaimInfo, SegmentMeta, SlaAction,
    VictimMeta,
};
pub use recovery::{RecoveryError, RecoveryReport};
pub use telemetry::TelemetrySnapshot;
pub use types::{GroupId, HostOp, HostOpKind, Lba, SegmentId};
pub use wal::{
    DurabilityConfig, FsyncPolicy, TornTail, Wal, WalError, WalRecord, WalSlot, WalSlotKind,
    WalStats,
};
