//! Incremental, utilization-bucketed GC victim selection.
//!
//! The naive [`GcSelection::select`](crate::gc::GcSelection::select) scans
//! every segment on every GC pass — O(total segments), and the perf
//! harness measured it at 15–30% of replay wall time on medium volumes.
//! This module replaces the scan with an index maintained incrementally on
//! every invalidate/seal/reclaim:
//!
//! * Sealed segments are always full (`seal()` asserts it), so garbage is
//!   `capacity − valid_blocks` and segments with equal `valid_blocks` have
//!   equal utilization. We keep one bucket (a `Vec<SegmentId>`) per exact
//!   valid count, `0..=capacity` — for the default 128-block segments
//!   that is 129 buckets.
//! * A per-segment `(valid, position)` table makes every move a
//!   `swap_remove` + push: O(1) per invalidated block.
//! * **Greedy** is the lowest non-empty bucket below `capacity` (fewest
//!   valid = most garbage); a `min_occupied` cursor makes finding it O(1)
//!   amortized. Ties break to the smallest id, matching the naive scan.
//! * **Cost-Benefit** scores `age · (1 − u) / 2u` — within a bucket `u`
//!   is constant, so the bucket's best candidate is simply its *oldest*
//!   member (smallest creation byte-clock). Each bucket caches that
//!   member; removing the cached member marks the cache dirty and the
//!   next selection repairs it by scanning just that bucket. A full
//!   selection is then one score evaluation per non-empty bucket
//!   (≤ capacity + 1), independent of segment count.
//!
//! Tie-breaking mirrors the naive scan bit-for-bit (the equivalence
//! property test in `tests/` checks scores, and the unit tests here check
//! victims): naive `max_by` keeps the *last* maximal element of the
//! id-ordered scan, i.e. the highest id among score ties. Within a bucket
//! equal score means equal age, so the cache prefers smaller `created`,
//! then larger id; across buckets we compare `(score, id)`. The `u == 0`
//! bucket scores uniformly infinite, so its representative is its max id
//! regardless of age.

use crate::gc::{cost_benefit_score, GcSelection};
use crate::segment::{Segment, SegmentState};
use crate::types::SegmentId;

/// Per-bucket cache of the best Cost-Benefit candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Oldest {
    /// Bucket is empty.
    Empty,
    /// Cached best member: `(created_user_bytes, id)` — minimal created,
    /// maximal id among created-ties.
    Known(u64, SegmentId),
    /// The cached best was removed; recompute on next selection.
    Dirty,
}

/// Untracked marker for the position table.
const NOT_TRACKED: u32 = u32::MAX;

/// The bucketed index over sealed segments. Owned by the engine and kept
/// in lockstep with segment state; see the maintenance hooks in
/// `engine.rs` (`seal_segment`, `retire_previous_version`, `flush_chunk`,
/// `collect_segment`).
#[derive(Debug, Clone)]
pub struct SegmentBuckets {
    /// Segment capacity in blocks (buckets are indexed by valid count).
    capacity: u32,
    /// `buckets[v]` = sealed segments with exactly `v` valid blocks.
    buckets: Vec<Vec<SegmentId>>,
    /// Per segment: index within its bucket, or [`NOT_TRACKED`].
    pos: Vec<u32>,
    /// Per segment: tracked valid count (meaningful only when tracked).
    valid: Vec<u32>,
    /// Per segment: creation byte-clock at insert (CB age input).
    created: Vec<u64>,
    /// Per-bucket Cost-Benefit candidate cache.
    oldest: Vec<Oldest>,
    /// No non-empty bucket exists below this index (cursor, may lag).
    min_occupied: usize,
    /// Tracked (sealed) segment count.
    tracked: usize,
}

impl SegmentBuckets {
    /// An empty index for `total_segments` segments of `capacity` blocks.
    pub fn new(capacity: u32, total_segments: usize) -> Self {
        Self {
            capacity,
            buckets: vec![Vec::new(); capacity as usize + 1],
            pos: vec![NOT_TRACKED; total_segments],
            valid: vec![0; total_segments],
            created: vec![0; total_segments],
            oldest: vec![Oldest::Empty; capacity as usize + 1],
            min_occupied: capacity as usize + 1,
            tracked: 0,
        }
    }

    /// Number of tracked (sealed) segments.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// Whether no segment is tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// The tracked valid count of `seg`, or `None` if untracked.
    pub fn tracked_valid(&self, seg: SegmentId) -> Option<u32> {
        (self.pos[seg as usize] != NOT_TRACKED).then(|| self.valid[seg as usize])
    }

    /// Start tracking a freshly sealed segment.
    pub fn insert(&mut self, seg: SegmentId, valid: u32, created: u64) {
        debug_assert!(valid <= self.capacity);
        debug_assert_eq!(self.pos[seg as usize], NOT_TRACKED, "segment {seg} double-tracked");
        self.valid[seg as usize] = valid;
        self.created[seg as usize] = created;
        self.push_into(valid as usize, seg);
        self.tracked += 1;
    }

    /// Stop tracking `seg` (reclaimed, or detached for collection).
    pub fn remove(&mut self, seg: SegmentId) {
        debug_assert_ne!(self.pos[seg as usize], NOT_TRACKED, "segment {seg} not tracked");
        let v = self.valid[seg as usize] as usize;
        self.take_out(v, seg);
        self.tracked -= 1;
    }

    /// One block of `seg` was invalidated: move it down one bucket. No-op
    /// for untracked segments — the one legitimate caller of that shape is
    /// a lazy-append completing against the segment currently being
    /// collected (already detached via [`SegmentBuckets::remove`]).
    pub fn note_invalidate(&mut self, seg: SegmentId) {
        if self.pos[seg as usize] == NOT_TRACKED {
            return;
        }
        let v = self.valid[seg as usize] as usize;
        debug_assert!(v > 0, "invalidate below zero valid for segment {seg}");
        self.take_out(v, seg);
        self.valid[seg as usize] = (v - 1) as u32;
        self.push_into(v - 1, seg);
    }

    fn push_into(&mut self, bucket: usize, seg: SegmentId) {
        self.pos[seg as usize] = self.buckets[bucket].len() as u32;
        self.buckets[bucket].push(seg);
        let cand = (self.created[seg as usize], seg);
        self.oldest[bucket] = match self.oldest[bucket] {
            Oldest::Empty => Oldest::Known(cand.0, cand.1),
            Oldest::Known(c, id) if better_cb(cand, (c, id)) => Oldest::Known(cand.0, cand.1),
            other => other,
        };
        self.min_occupied = self.min_occupied.min(bucket);
    }

    fn take_out(&mut self, bucket: usize, seg: SegmentId) {
        let i = self.pos[seg as usize] as usize;
        debug_assert_eq!(self.buckets[bucket][i], seg);
        self.buckets[bucket].swap_remove(i);
        if let Some(&moved) = self.buckets[bucket].get(i) {
            self.pos[moved as usize] = i as u32;
        }
        self.pos[seg as usize] = NOT_TRACKED;
        self.oldest[bucket] = if self.buckets[bucket].is_empty() {
            Oldest::Empty
        } else {
            match self.oldest[bucket] {
                Oldest::Known(_, id) if id != seg => self.oldest[bucket],
                _ => Oldest::Dirty,
            }
        };
    }

    /// Repair a dirty Cost-Benefit cache by scanning its bucket.
    fn repair(&mut self, bucket: usize) -> Option<(u64, SegmentId)> {
        match self.oldest[bucket] {
            Oldest::Empty => None,
            Oldest::Known(c, id) => Some((c, id)),
            Oldest::Dirty => {
                let best = self.buckets[bucket]
                    .iter()
                    .map(|&id| (self.created[id as usize], id))
                    .reduce(|a, b| if better_cb(b, a) { b } else { a })
                    .expect("dirty cache on empty bucket");
                self.oldest[bucket] = Oldest::Known(best.0, best.1);
                Some(best)
            }
        }
    }

    /// Choose a victim among tracked segments with reclaimable garbage
    /// (valid < capacity). Equivalent to the naive scan over the sealed
    /// set — same score, same tie-breaks — in O(buckets) instead of
    /// O(segments).
    pub fn select(&mut self, policy: GcSelection, now_user_bytes: u64) -> Option<SegmentId> {
        match policy {
            GcSelection::Greedy => self.select_greedy(),
            GcSelection::CostBenefit => self.select_cost_benefit(now_user_bytes),
        }
    }

    fn select_greedy(&mut self) -> Option<SegmentId> {
        // Advance the cursor over drained buckets; it only ever moves down
        // when a segment enters a lower bucket, which resets it.
        while self.min_occupied < self.buckets.len() && self.buckets[self.min_occupied].is_empty() {
            self.min_occupied += 1;
        }
        // The full bucket (valid == capacity) holds no garbage.
        if self.min_occupied >= self.capacity as usize {
            return None;
        }
        self.buckets[self.min_occupied].iter().min().copied()
    }

    fn select_cost_benefit(&mut self, now_user_bytes: u64) -> Option<SegmentId> {
        let mut best: Option<(f64, SegmentId)> = None;
        // Bucket 0 is uniformly infinite-score; its tie-break is max id.
        if let Some(&id) = self.buckets[0].iter().max() {
            best = Some((f64::INFINITY, id));
        }
        for v in 1..self.capacity as usize {
            let Some((created, id)) = self.repair(v) else { continue };
            let age = now_user_bytes.saturating_sub(created);
            let score = cost_benefit_score(v as u32, self.capacity, age);
            if best.map(|(s, i)| (score, id) > (s, i)).unwrap_or(true) {
                best = Some((score, id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Sealed-utilization histogram in ten 10%-wide buckets, identical to
    /// a scan over sealed segments (same per-segment float rounding).
    pub fn histogram10(&self) -> [u64; 10] {
        let mut h = [0u64; 10];
        for (v, b) in self.buckets.iter().enumerate() {
            if !b.is_empty() {
                let u = v as f64 / self.capacity as f64;
                h[((u * 10.0) as usize).min(9)] += b.len() as u64;
            }
        }
        h
    }

    /// Mean valid fraction across tracked segments (1.0 when none).
    pub fn mean_utilization(&self) -> f64 {
        if self.tracked == 0 {
            return 1.0;
        }
        let cap = self.capacity as f64;
        let sum: f64 =
            self.buckets.iter().enumerate().map(|(v, b)| (v as f64 / cap) * b.len() as f64).sum();
        sum / self.tracked as f64
    }

    /// Verify internal consistency and lockstep with `segments` (test /
    /// debug aid, called from the engine's `check_invariants`). Panics on
    /// violation.
    pub fn check_against(&self, segments: &[Segment]) {
        self.check_against_detached(segments, None);
    }

    /// [`SegmentBuckets::check_against`] with one sealed segment exempted
    /// from tracking: an overlapped-GC victim mid-collection is sealed
    /// but legitimately detached from the index.
    pub fn check_against_detached(&self, segments: &[Segment], detached: Option<SegmentId>) {
        let mut tracked = 0usize;
        for s in segments {
            if detached == Some(s.id) {
                assert_eq!(
                    self.tracked_valid(s.id),
                    None,
                    "detached victim {} still tracked in buckets",
                    s.id
                );
                continue;
            }
            if s.state == SegmentState::Sealed {
                assert_eq!(
                    self.tracked_valid(s.id),
                    Some(s.valid_blocks),
                    "bucket drift for sealed segment {}",
                    s.id
                );
                assert_eq!(self.created[s.id as usize], s.created_user_bytes);
                tracked += 1;
            } else {
                assert_eq!(
                    self.tracked_valid(s.id),
                    None,
                    "non-sealed segment {} tracked in buckets",
                    s.id
                );
            }
        }
        assert_eq!(tracked, self.tracked, "tracked count drift");
        for (v, b) in self.buckets.iter().enumerate() {
            for (i, &seg) in b.iter().enumerate() {
                assert_eq!(self.pos[seg as usize], i as u32, "position drift for {seg}");
                assert_eq!(self.valid[seg as usize], v as u32, "bucket drift for {seg}");
            }
            match self.oldest[v] {
                Oldest::Empty => assert!(b.is_empty(), "empty cache on non-empty bucket {v}"),
                Oldest::Dirty => assert!(!b.is_empty(), "dirty cache on empty bucket {v}"),
                Oldest::Known(c, id) => {
                    let best = b.iter().map(|&s| (self.created[s as usize], s)).reduce(|a, b| {
                        if better_cb(b, a) {
                            b
                        } else {
                            a
                        }
                    });
                    assert_eq!(best, Some((c, id)), "stale oldest cache in bucket {v}");
                }
            }
        }
    }
}

/// Cost-Benefit candidate ordering within a bucket: smaller creation clock
/// wins (older → higher score); equal ages keep the larger id, matching
/// the naive scan's last-maximal-element tie-break.
#[inline]
fn better_cb(a: (u64, SegmentId), b: (u64, SegmentId)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Slot;

    fn sealed(id: SegmentId, cap: u32, valid: u32, created: u64) -> Segment {
        let mut s = Segment::new(id, cap);
        s.open(0, created, 0);
        for i in 0..cap {
            s.append_slot(Slot::Block(i as u64));
        }
        s.seal();
        s.valid_blocks = valid;
        s
    }

    /// Build buckets tracking every sealed segment of `segs`.
    fn tracking(segs: &[Segment]) -> SegmentBuckets {
        let cap = segs.first().map(|s| s.capacity()).unwrap_or(8);
        let mut b = SegmentBuckets::new(cap, segs.len());
        for s in segs {
            if s.state == SegmentState::Sealed {
                b.insert(s.id, s.valid_blocks, s.created_user_bytes);
            }
        }
        b
    }

    #[test]
    fn matches_naive_greedy() {
        let segs = vec![sealed(0, 8, 6, 0), sealed(1, 8, 2, 0), sealed(2, 8, 4, 0)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::Greedy, 100), Some(1));
        assert_eq!(b.select(GcSelection::Greedy, 100), GcSelection::Greedy.select(&segs, 100));
    }

    #[test]
    fn greedy_ties_break_to_smallest_id() {
        let segs = vec![sealed(0, 8, 2, 0), sealed(1, 8, 2, 0), sealed(2, 8, 2, 0)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::Greedy, 100), Some(0));
        assert_eq!(b.select(GcSelection::Greedy, 100), GcSelection::Greedy.select(&segs, 100));
    }

    #[test]
    fn skips_fully_valid() {
        let segs = vec![sealed(0, 8, 8, 0), sealed(1, 8, 8, 0)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::Greedy, 100), None);
        assert_eq!(b.select(GcSelection::CostBenefit, 100), None);
    }

    #[test]
    fn cost_benefit_prefers_older_at_equal_utilization() {
        let segs = vec![sealed(0, 8, 4, 900), sealed(1, 8, 4, 100)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::CostBenefit, 1000), Some(1));
    }

    #[test]
    fn cost_benefit_zero_valid_ties_break_to_highest_id() {
        // All of bucket 0 scores +inf; the naive scan keeps the last
        // (highest-id) maximal element.
        let segs = vec![sealed(0, 8, 0, 0), sealed(1, 8, 0, 999), sealed(2, 8, 3, 0)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::CostBenefit, 1000), Some(1));
        assert_eq!(
            b.select(GcSelection::CostBenefit, 1000),
            GcSelection::CostBenefit.select(&segs, 1000)
        );
    }

    #[test]
    fn invalidate_moves_between_buckets() {
        let segs = vec![sealed(0, 8, 6, 0), sealed(1, 8, 5, 0)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::Greedy, 0), Some(1));
        // Drop segment 0 to 4 valid: it overtakes.
        b.note_invalidate(0);
        b.note_invalidate(0);
        assert_eq!(b.tracked_valid(0), Some(4));
        assert_eq!(b.select(GcSelection::Greedy, 0), Some(0));
    }

    #[test]
    fn remove_then_invalidate_is_noop() {
        let segs = vec![sealed(0, 8, 6, 0)];
        let mut b = tracking(&segs);
        b.remove(0);
        b.note_invalidate(0); // collection in flight: must not panic
        assert_eq!(b.len(), 0);
        assert_eq!(b.select(GcSelection::Greedy, 0), None);
    }

    #[test]
    fn dirty_cache_repairs_on_select() {
        // Two segments share a bucket; removing the cached oldest forces a
        // repair scan on the next CB selection.
        let segs = vec![sealed(0, 8, 4, 10), sealed(1, 8, 4, 20), sealed(2, 8, 4, 30)];
        let mut b = tracking(&segs);
        assert_eq!(b.select(GcSelection::CostBenefit, 100), Some(0));
        b.remove(0);
        assert_eq!(b.select(GcSelection::CostBenefit, 100), Some(1));
        b.check_against(&[segs[1].clone(), segs[2].clone()]);
    }

    #[test]
    fn histogram_and_mean_match_scan() {
        let segs: Vec<Segment> = (0..16).map(|i| sealed(i, 8, i % 9, i as u64)).collect();
        let b = tracking(&segs);
        let mut h = [0u64; 10];
        let mut sum = 0.0;
        for s in &segs {
            let u = s.valid_blocks as f64 / s.capacity() as f64;
            h[((u * 10.0) as usize).min(9)] += 1;
            sum += u;
        }
        assert_eq!(b.histogram10(), h);
        assert!((b.mean_utilization() - sum / segs.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn randomized_equivalence_with_naive() {
        // Deterministic pseudo-random churn; victims must match the naive
        // scan at every step for both policies.
        let cap = 8u32;
        let n = 24usize;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for policy in [GcSelection::Greedy, GcSelection::CostBenefit] {
            let mut segs: Vec<Segment> =
                (0..n).map(|i| sealed(i as SegmentId, cap, cap, next() % 1000)).collect();
            let mut b = tracking(&segs);
            let mut clock = 1000u64;
            for _ in 0..400 {
                let id = (next() % n as u64) as usize;
                if segs[id].valid_blocks > 0 {
                    segs[id].valid_blocks -= 1;
                    b.note_invalidate(id as SegmentId);
                }
                clock += next() % 50;
                assert_eq!(b.select(policy, clock), policy.select(&segs, clock), "{policy:?}");
            }
            b.check_against(&segs);
        }
    }
}
