//! Garbage-collection victim selection.
//!
//! Two classic policies, both evaluated throughout the paper's §4:
//!
//! * **Greedy** — pick the sealed segment with the most garbage.
//! * **Cost-Benefit** (Rosenblum & Ousterhout, LFS '92) — maximize
//!   `age · (1 − u) / 2u`, where `u` is the segment's valid fraction and
//!   `age` the time since the segment was created. Cost-Benefit prefers
//!   slightly-dirty *old* segments over very dirty young ones, which pays
//!   off under skewed workloads.

use crate::segment::{Segment, SegmentState};
use crate::types::SegmentId;
use serde::{Deserialize, Serialize};

/// Which victim-selection policy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcSelection {
    /// Most-garbage-first.
    Greedy,
    /// LFS cost-benefit score.
    CostBenefit,
}

/// The LFS cost-benefit score of a sealed segment: `age · (1 − u) / 2u`
/// with `u = valid / capacity` and `age` in byte-clock units. Fully
/// garbage segments (`u == 0`) are free wins and score infinitely.
///
/// Shared by the naive scan below and the bucketed index
/// ([`crate::gc_buckets::SegmentBuckets`]) so both paths compute
/// bit-identical floats — the equivalence property test depends on that.
#[inline]
pub fn cost_benefit_score(valid: u32, capacity: u32, age_bytes: u64) -> f64 {
    let u = valid as f64 / capacity as f64;
    if u == 0.0 {
        f64::INFINITY
    } else {
        age_bytes as f64 * (1.0 - u) / (2.0 * u)
    }
}

impl GcSelection {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            GcSelection::Greedy => "Greedy",
            GcSelection::CostBenefit => "Cost-Benefit",
        }
    }

    /// Choose a victim among sealed segments. `now_user_bytes` is the byte
    /// clock used for segment age. Returns `None` when no sealed segment
    /// exists or none has any garbage to reclaim... except that under
    /// pressure a fully-valid victim is still legal (it frees nothing, so
    /// we skip those: collecting them would loop forever).
    pub fn select(&self, segments: &[Segment], now_user_bytes: u64) -> Option<SegmentId> {
        let candidates =
            segments.iter().filter(|s| s.state == SegmentState::Sealed && s.garbage_blocks() > 0);
        match self {
            GcSelection::Greedy => candidates
                .max_by_key(|s| (s.garbage_blocks(), std::cmp::Reverse(s.id)))
                .map(|s| s.id),
            GcSelection::CostBenefit => candidates
                .map(|s| {
                    let age = now_user_bytes.saturating_sub(s.created_user_bytes);
                    (s.id, cost_benefit_score(s.valid_blocks, s.capacity(), age))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(id, _)| id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Slot;

    /// Build a sealed segment with `valid` of `cap` blocks valid, created
    /// at byte-clock `created`.
    fn sealed(id: SegmentId, cap: u32, valid: u32, created: u64) -> Segment {
        let mut s = Segment::new(id, cap);
        s.open(0, created, 0);
        for i in 0..cap {
            s.append_slot(Slot::Block(i as u64));
        }
        s.seal();
        s.valid_blocks = valid;
        s
    }

    #[test]
    fn greedy_picks_most_garbage() {
        let segs = vec![sealed(0, 8, 6, 0), sealed(1, 8, 2, 0), sealed(2, 8, 4, 0)];
        assert_eq!(GcSelection::Greedy.select(&segs, 100), Some(1));
    }

    #[test]
    fn skips_fully_valid_segments() {
        let segs = vec![sealed(0, 8, 8, 0), sealed(1, 8, 8, 0)];
        assert_eq!(GcSelection::Greedy.select(&segs, 100), None);
        assert_eq!(GcSelection::CostBenefit.select(&segs, 100), None);
    }

    #[test]
    fn skips_open_segments() {
        let mut open = Segment::new(0, 8);
        open.open(0, 0, 0);
        open.append_slot(Slot::Block(1));
        let segs = vec![open, sealed(1, 8, 7, 0)];
        assert_eq!(GcSelection::Greedy.select(&segs, 100), Some(1));
    }

    #[test]
    fn cost_benefit_prefers_older_at_equal_utilization() {
        // Same garbage; the older (created earlier) segment wins.
        let segs = vec![sealed(0, 8, 4, 900), sealed(1, 8, 4, 100)];
        assert_eq!(GcSelection::CostBenefit.select(&segs, 1000), Some(1));
    }

    #[test]
    fn cost_benefit_can_prefer_old_low_garbage_over_young_dirty() {
        // Young, very dirty: age 10, u=0.25 → 10*0.75/0.5 = 15.
        // Old, lightly dirty: age 10000, u=0.875 → 10000*0.125/1.75 ≈ 714.
        let segs = vec![sealed(0, 8, 2, 990), sealed(1, 8, 7, 0)];
        assert_eq!(GcSelection::CostBenefit.select(&segs, 1000), Some(1));
        // Greedy disagrees:
        assert_eq!(GcSelection::Greedy.select(&segs, 1000), Some(0));
    }

    #[test]
    fn empty_or_all_free_returns_none() {
        let segs = vec![Segment::new(0, 8)];
        assert_eq!(GcSelection::Greedy.select(&segs, 0), None);
    }

    #[test]
    fn zero_valid_segment_is_best_for_cost_benefit() {
        let segs = vec![sealed(0, 8, 0, 999), sealed(1, 8, 1, 0)];
        assert_eq!(GcSelection::CostBenefit.select(&segs, 1000), Some(0));
    }
}
