//! Fundamental identifiers and slot encoding.

/// Logical block address (4 KiB block units).
pub type Lba = u64;

/// Group (stream) identifier. Policies define at most 255 groups.
pub type GroupId = u8;

/// Segment identifier (index into the engine's segment table; stable for
/// the lifetime of the engine, reused after reclaim).
pub type SegmentId = u32;

/// Contents of one block slot inside a sealed/open segment.
///
/// Encoded in a single `u64` for density: the segment table holds one word
/// per block of capacity. LBAs are limited to 2^62 − 3, far beyond any
/// realistic volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Not yet written (open segment tail).
    Free,
    /// Zero padding.
    Pad,
    /// A block holding `lba`'s data.
    Block(Lba),
    /// A shadow-append substitute copy of `lba` (ADAPT §3.3).
    Shadow(Lba),
}

/// One host block operation, as fed to the batched
/// [`apply_ops`](crate::Lss::apply_ops) entry point. Semantically
/// identical to calling the corresponding one-shot engine method —
/// [`crate::Lss::try_write_request`], [`crate::Lss::try_read_request`] or
/// [`crate::Lss::try_trim`] — at the same timestamp; the batch form exists
/// so embedders (the serve drain loop, replay harnesses) can hand the
/// engine a whole dequeued run at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOp {
    /// Arrival timestamp (simulated µs); must be monotone within a batch,
    /// exactly as the one-shot calls require.
    pub ts_us: u64,
    /// What to do.
    pub kind: HostOpKind,
    /// First logical block of the request.
    pub lba: Lba,
    /// Request length in blocks.
    pub blocks: u32,
}

/// Operation selector for [`HostOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOpKind {
    /// Block write(s): `blocks` sequential single-block writes at `lba`.
    Write,
    /// Block read spanning `blocks` blocks at `lba`.
    Read,
    /// TRIM/discard of `blocks` blocks at `lba`.
    Trim,
}

impl HostOp {
    /// A `blocks`-long write request at `lba`.
    pub fn write(ts_us: u64, lba: Lba, blocks: u32) -> Self {
        Self { ts_us, kind: HostOpKind::Write, lba, blocks }
    }

    /// A `blocks`-long read request at `lba`.
    pub fn read(ts_us: u64, lba: Lba, blocks: u32) -> Self {
        Self { ts_us, kind: HostOpKind::Read, lba, blocks }
    }

    /// A `blocks`-long TRIM at `lba`.
    pub fn trim(ts_us: u64, lba: Lba, blocks: u32) -> Self {
        Self { ts_us, kind: HostOpKind::Trim, lba, blocks }
    }
}

const SLOT_FREE: u64 = u64::MAX;
const SLOT_PAD: u64 = u64::MAX - 1;
const SHADOW_BIT: u64 = 1 << 62;
const LBA_MASK: u64 = SHADOW_BIT - 1;

impl Slot {
    /// Pack into the one-word representation.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Slot::Free => SLOT_FREE,
            Slot::Pad => SLOT_PAD,
            Slot::Block(lba) => {
                debug_assert!(lba < SHADOW_BIT);
                lba
            }
            Slot::Shadow(lba) => {
                debug_assert!(lba < SHADOW_BIT);
                lba | SHADOW_BIT
            }
        }
    }

    /// Unpack from the one-word representation.
    #[inline]
    pub fn decode(word: u64) -> Self {
        match word {
            SLOT_FREE => Slot::Free,
            SLOT_PAD => Slot::Pad,
            w if w & SHADOW_BIT != 0 => Slot::Shadow(w & LBA_MASK),
            w => Slot::Block(w),
        }
    }

    /// The LBA this slot refers to, if any.
    #[inline]
    pub fn lba(self) -> Option<Lba> {
        match self {
            Slot::Block(l) | Slot::Shadow(l) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for s in [
            Slot::Free,
            Slot::Pad,
            Slot::Block(0),
            Slot::Block(12345),
            Slot::Shadow(0),
            Slot::Shadow(987654321),
        ] {
            assert_eq!(Slot::decode(s.encode()), s);
        }
    }

    #[test]
    fn lba_accessor() {
        assert_eq!(Slot::Block(7).lba(), Some(7));
        assert_eq!(Slot::Shadow(9).lba(), Some(9));
        assert_eq!(Slot::Pad.lba(), None);
        assert_eq!(Slot::Free.lba(), None);
    }

    #[test]
    fn encodings_distinct() {
        let words: Vec<u64> = [Slot::Free, Slot::Pad, Slot::Block(1), Slot::Shadow(1)]
            .iter()
            .map(|s| s.encode())
            .collect();
        let mut dedup = words.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(words.len(), dedup.len());
    }

    #[test]
    fn large_lba_roundtrip() {
        let lba = (1u64 << 62) - 3;
        assert_eq!(Slot::decode(Slot::Block(lba).encode()), Slot::Block(lba));
        assert_eq!(Slot::decode(Slot::Shadow(lba).encode()), Slot::Shadow(lba));
    }
}
