//! Property tests for the WAL's on-disk framing.
//!
//! The frame format (`[len][payload][crc32c]`) carries the whole
//! durability story: recovery trusts exactly the longest decodable
//! prefix. These tests pin the three load-bearing guarantees for
//! arbitrary record batches: round-trip fidelity, truncation at *every*
//! byte offset yielding exactly the full-frame prefix, and single-bit
//! corruption never smuggling a wrong record past the CRC.

use adapt_array::CountingArray;
use adapt_lss::wal::{
    decode_frame, repair_tail, replay_dir, DurabilityConfig, FsyncPolicy, Wal, WalRecord, WalSlot,
    WalSlotKind,
};
use adapt_lss::{
    GcSelection, GroupId, Lba, Lss, LssConfig, PlacementPolicy, PolicyCtx, VictimMeta,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// Map a tuple of arbitraries onto one record, exercising every variant
/// (including `Flush` slot vectors of every kind mix).
fn record_from(tag: u8, a: u64, b: u64, n: u32) -> WalRecord {
    match tag % 6 {
        0 => WalRecord::Open {
            seg: a as u32,
            group: b as GroupId,
            open_seq: a ^ b,
            created_user_bytes: b,
            created_ts_us: a,
        },
        1 => WalRecord::BufferAppend {
            lba: a,
            version: b,
            group: (a >> 8) as GroupId,
            gc: a & 1 == 1,
            needs_sla: b & 1 == 1,
        },
        2 => {
            let slots = (0..n % 12)
                .map(|i| WalSlot {
                    kind: match (a >> i) % 3 {
                        0 => WalSlotKind::User,
                        1 => WalSlotKind::Gc,
                        _ => WalSlotKind::Shadow,
                    },
                    lba: a.wrapping_mul(u64::from(i) + 1),
                    version: b ^ u64::from(i),
                })
                .collect();
            WalRecord::Flush {
                flush_seq: a,
                seg: b as u32,
                chunk_in_seg: n,
                group: (b >> 16) as GroupId,
                now_us: b,
                user_bytes_clock: a,
                pad_blocks: n % 7,
                slots,
            }
        }
        3 => WalRecord::GcBegin { seg: a as u32 },
        4 => WalRecord::Reclaim { seg: b as u32 },
        _ => WalRecord::Trim { lba: a, blocks: n },
    }
}

/// Encode a batch into one contiguous buffer, returning the byte offset
/// just past each frame.
fn encode_batch(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut ends = Vec::with_capacity(records.len());
    for rec in records {
        rec.encode_frame(&mut buf);
        ends.push(buf.len());
    }
    (buf, ends)
}

/// Decode frames sequentially until the stream stops validating.
fn decode_all(buf: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut off = 0;
    while let Some((rec, next)) = decode_frame(buf, off) {
        out.push(rec);
        off = next;
    }
    out
}

fn records_of(ops: &[(u8, u64, u64, u32)]) -> Vec<WalRecord> {
    ops.iter().map(|&(t, a, b, n)| record_from(t, a, b, n)).collect()
}

fn tdir(name: &str, salt: u64) -> PathBuf {
    let d =
        std::env::temp_dir().join(format!("adapt_walprop_{name}_{}_{salt}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    /// Any batch of records round-trips bit-exactly through the frame
    /// codec.
    #[test]
    fn frames_roundtrip(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>(), 0u32..40), 1..40),
    ) {
        let records = records_of(&ops);
        let (buf, _) = encode_batch(&records);
        prop_assert_eq!(decode_all(&buf), records);
    }

    /// Truncating the stream at ANY byte offset recovers exactly the
    /// records whose frames fit entirely below the cut — never a torn
    /// record, never a lost complete one.
    #[test]
    fn truncation_yields_exact_frame_prefix(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>(), 0u32..40), 1..30),
        cut_seed in any::<u64>(),
    ) {
        let records = records_of(&ops);
        let (buf, ends) = encode_batch(&records);
        let cut = (cut_seed % (buf.len() as u64 + 1)) as usize;
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(decode_all(&buf[..cut]), &records[..expect]);
    }

    /// Flipping any single bit anywhere in the stream stops decoding at
    /// (or before) the damaged frame: the decoded records are always a
    /// strict prefix of the originals, never altered data.
    #[test]
    fn single_bit_flip_is_detected(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>(), 0u32..40), 1..30),
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let records = records_of(&ops);
        let (mut buf, _) = encode_batch(&records);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= 1u8 << bit;
        let decoded = decode_all(&buf);
        prop_assert!(decoded.len() < records.len());
        prop_assert_eq!(decoded.as_slice(), &records[..decoded.len()]);
    }

    /// Decoding arbitrary garbage never panics and never fabricates more
    /// than the garbage could hold.
    #[test]
    fn arbitrary_garbage_never_panics(noise in prop::collection::vec(any::<u8>(), 0..400)) {
        let decoded = decode_all(&noise);
        // Each decoded frame consumed at least 9 bytes (len + 1-byte
        // payload + crc).
        prop_assert!(decoded.len() <= noise.len() / 9);
    }
}

proptest! {
    /// Against a real on-disk WAL: commit a batch, truncate the file at an
    /// arbitrary offset (simulating a torn tail), and replay. Recovery
    /// must return exactly the durable full-frame prefix, flag the tear
    /// iff the cut is mid-frame, and `repair_tail` must make a second
    /// replay clean and identical.
    #[test]
    fn torn_file_replays_durable_prefix(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>(), 0u32..20), 1..20),
        cut_seed in any::<u64>(),
    ) {
        let records = records_of(&ops);
        let dir = tdir("torn", cut_seed ^ ops.len() as u64);
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::EveryCommit,
            rotate_bytes: u64::MAX,
            checkpoint_every_flushes: 0,
            fsync_data: false,
            budget: None,
        };
        let mut wal = Wal::create(&dir, cfg).unwrap();
        let path = dir.join("wal-000000.log");
        let mut ends = Vec::new();
        for rec in &records {
            wal.append(rec);
            wal.commit().unwrap();
            ends.push(std::fs::metadata(&path).unwrap().len());
        }
        drop(wal);
        let total = *ends.last().unwrap();
        let cut = cut_seed % (total + 1);
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();

        let replay = replay_dir(&dir, 0).unwrap();
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(replay.records.as_slice(), &records[..expect]);
        let at_boundary = cut == 0 || ends.contains(&cut);
        prop_assert_eq!(replay.torn.is_some(), !at_boundary);

        repair_tail(&dir, &replay).unwrap();
        let again = replay_dir(&dir, 0).unwrap();
        prop_assert_eq!(again.records.as_slice(), &records[..expect]);
        prop_assert!(again.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

struct OneGroup;
impl PlacementPolicy for OneGroup {
    fn name(&self) -> &'static str {
        "one"
    }
    fn groups(&self) -> &[adapt_lss::GroupKind] {
        &[adapt_lss::GroupKind::Mixed]
    }
    fn place_user(&mut self, _c: &PolicyCtx, _l: Lba) -> GroupId {
        0
    }
    fn place_gc(&mut self, _c: &PolicyCtx, _l: Lba, _v: &VictimMeta) -> GroupId {
        0
    }
}

proptest! {
    /// Full-engine recovery over arbitrary garbage durable state — noise
    /// in the WAL file, optionally a noise checkpoint — never panics: it
    /// either recovers (ignoring the undecodable tail) or returns a typed
    /// error.
    #[test]
    fn engine_recover_survives_garbage(
        noise in prop::collection::vec(any::<u8>(), 1..300),
        bad_checkpoint in any::<bool>(),
    ) {
        let salt = noise.iter().map(|&b| u64::from(b)).sum::<u64>()
            ^ (noise.len() as u64) << 9
            ^ u64::from(bad_checkpoint);
        let dir = tdir("garbage", salt);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-000000.log"), &noise).unwrap();
        if bad_checkpoint {
            std::fs::write(dir.join("checkpoint.bin"), &noise).unwrap();
        }
        let cfg = LssConfig {
            user_blocks: 4096,
            op_ratio: 0.5,
            gc_low_water: 5,
            gc_high_water: 7,
            ..Default::default()
        };
        let res = Lss::builder(OneGroup, CountingArray::new(cfg.array_config()))
            .config(cfg)
            .gc_select(GcSelection::Greedy)
            .durability(
                &dir,
                DurabilityConfig {
                    fsync: FsyncPolicy::EveryCommit,
                    rotate_bytes: u64::MAX,
                    checkpoint_every_flushes: 0,
                    fsync_data: false,
                    budget: None,
                },
            )
            .recover();
        // No panic is the property; both outcomes are legitimate.
        match res {
            Ok((engine, report)) => {
                engine.check_invariants();
                prop_assert_eq!(report.records_applied, 0);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
