//! The batched-pipeline determinism contract: [`Lss::try_apply_ops`] over
//! *any* partitioning of an op stream is bit-identical to the one-op-at-a-
//! time loop, and enabling per-stage cost attribution never changes the
//! deterministic metrics. These are the guarantees the serve drain loop
//! and the `ADAPT_APPLY_BATCH` knob rely on.

use adapt_array::CountingArray;
use adapt_lss::{
    GcSelection, GroupId, GroupKind, HostOp, Lba, Lss, LssConfig, PlacementPolicy, PolicyCtx,
    SlaAction, VictimMeta,
};
use proptest::prelude::*;

/// Three-group policy that stripes user writes by LBA parity and shadow-
/// appends across groups at SLA expiry — enough cross-group traffic to
/// exercise coalescing, shadow/lazy append, GC, and the deadline cache.
struct Striped;

impl PlacementPolicy for Striped {
    fn name(&self) -> &'static str {
        "striped"
    }
    fn groups(&self) -> &[GroupKind] {
        &[GroupKind::User, GroupKind::User, GroupKind::Gc]
    }
    fn place_user(&mut self, _c: &PolicyCtx, lba: Lba) -> GroupId {
        (lba % 2) as GroupId
    }
    fn place_gc(&mut self, _c: &PolicyCtx, _l: Lba, _v: &VictimMeta) -> GroupId {
        2
    }
    fn on_sla_expire(&mut self, _c: &PolicyCtx, gid: GroupId) -> SlaAction {
        // Donate group 0's stragglers to group 1; everyone else pads.
        if gid == 0 {
            SlaAction::ShadowAppend { target: 1 }
        } else {
            SlaAction::Pad
        }
    }
}

fn small_cfg() -> LssConfig {
    LssConfig {
        user_blocks: 4096,
        op_ratio: 0.5,
        gc_low_water: 6,
        gc_high_water: 9,
        ..Default::default()
    }
}

fn engine(cfg: LssConfig) -> Lss<Striped, CountingArray> {
    Lss::builder(Striped, CountingArray::new(cfg.array_config()))
        .config(cfg)
        .gc_select(GcSelection::Greedy)
        .build()
}

/// Decode a raw op tuple stream into `HostOp`s with monotone timestamps.
/// Mostly writes (the hot path under test), salted with reads, trims and
/// idle gaps long enough to fire SLA expiries between ops.
fn ops_of(raw: &[(u8, u16, u8, u8)], user_blocks: u64) -> Vec<HostOp> {
    let mut ts = 0u64;
    raw.iter()
        .map(|&(kind, lba_seed, blocks, dt)| {
            ts += dt as u64; // 0..=255 µs steps straddle the 100 µs SLA
            let lba = lba_seed as u64 % user_blocks;
            let blocks = (blocks % 4) as u32 + 1;
            let blocks = blocks.min((user_blocks - lba) as u32);
            match kind % 8 {
                0 => HostOp::read(ts, lba, blocks),
                1 => HostOp::trim(ts, lba, blocks),
                _ => HostOp::write(ts, lba, blocks),
            }
        })
        .collect()
}

/// Apply every op through the one-shot entry points (the reference).
fn run_unbatched(ops: &[HostOp]) -> Lss<Striped, CountingArray> {
    let mut e = engine(small_cfg());
    for op in ops {
        match op.kind {
            adapt_lss::HostOpKind::Write => e.write_request(op.ts_us, op.lba, op.blocks),
            adapt_lss::HostOpKind::Read => e.read_request(op.ts_us, op.lba, op.blocks),
            adapt_lss::HostOpKind::Trim => e.trim(op.ts_us, op.lba, op.blocks),
        }
    }
    e
}

/// Apply the same stream through `apply_ops` in chunks drawn from `cuts`.
fn run_batched(ops: &[HostOp], cuts: &[u8]) -> Lss<Striped, CountingArray> {
    let mut e = engine(small_cfg());
    let mut rest = ops;
    let mut i = 0;
    while !rest.is_empty() {
        let take = (cuts.get(i).copied().unwrap_or(7) as usize % 9 + 1).min(rest.len());
        i += 1;
        let (batch, tail) = rest.split_at(take);
        e.apply_ops(batch);
        rest = tail;
    }
    e
}

proptest! {
    /// Any batch partitioning of any op stream leaves the engine in a
    /// bit-identical state: metrics, per-group traffic, and the op clock
    /// all match the op-at-a-time reference.
    #[test]
    fn apply_ops_matches_op_at_a_time(
        raw in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>()), 1..400),
        cuts in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let ops = ops_of(&raw, small_cfg().user_blocks);
        let a = run_unbatched(&ops);
        let b = run_batched(&ops, &cuts);
        prop_assert_eq!(a.metrics(), b.metrics());
        prop_assert_eq!(a.group_traffic(), b.group_traffic());
        a.check_invariants();
        b.check_invariants();
        a.check_recovery();
        b.check_recovery();
    }

    /// Turning stage attribution on changes nothing observable except the
    /// attribution itself: the deterministic metrics are bit-identical,
    /// and the profiler actually counted every host write.
    #[test]
    fn stage_costs_do_not_perturb_metrics(
        raw in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>()), 1..200),
    ) {
        let ops = ops_of(&raw, small_cfg().user_blocks);
        let plain = run_unbatched(&ops);

        let mut profiled = Lss::builder(
            Striped,
            CountingArray::new(small_cfg().array_config()),
        )
        .config(small_cfg().with_stage_costs(true))
        .gc_select(GcSelection::Greedy)
        .build();
        profiled.apply_ops(&ops);

        prop_assert_eq!(plain.metrics(), profiled.metrics());
        prop_assert_eq!(plain.group_traffic(), profiled.group_traffic());
        let writes: u64 = ops
            .iter()
            .filter(|o| o.kind == adapt_lss::HostOpKind::Write)
            .map(|o| o.blocks as u64)
            .sum();
        let costs = profiled.stage_costs().expect("attribution enabled");
        prop_assert_eq!(costs.ops, writes);
    }
}

#[test]
fn stage_costs_absent_when_disabled() {
    let e = engine(small_cfg());
    assert!(e.stage_costs().is_none());
}

#[test]
fn stage_costs_reset_zeroes_window() {
    let mut e = Lss::builder(Striped, CountingArray::new(small_cfg().array_config()))
        .config(small_cfg().with_stage_costs(true))
        .gc_select(GcSelection::Greedy)
        .build();
    for lba in 0..64 {
        e.write(lba, lba);
    }
    assert_eq!(e.stage_costs().unwrap().ops, 64);
    e.reset_stage_costs();
    assert_eq!(e.stage_costs().unwrap(), &adapt_lss::StageCosts::default());
    e.write(0, 1000);
    assert_eq!(e.stage_costs().unwrap().ops, 1);
}

#[test]
fn stage_costs_merge_and_total() {
    let a = adapt_lss::StageCosts { ops: 2, index_ns: 10, parity_ns: 5, ..Default::default() };
    let mut b = adapt_lss::StageCosts { ops: 1, policy_ns: 7, ..Default::default() };
    b.merge_from(&a);
    assert_eq!(b.ops, 3);
    assert_eq!(b.total_ns(), 22);
}
