//! Parsers for the public trace formats the paper evaluates on.
//!
//! The reproduction ships *calibrated synthetic* suites because the trace
//! archives cannot be redistributed, but anyone holding the real files can
//! replay them directly through the same pipeline:
//!
//! * **MSRC** (SNIA "MSR Cambridge" block traces):
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` with
//!   Windows 100 ns timestamps, byte offsets/sizes.
//! * **Alibaba cloud block storage** (Li et al., ToS '23 release):
//!   `device_id,opcode,offset,length,timestamp` with byte offsets and
//!   microsecond timestamps, opcode `R`/`W`.
//! * **Tencent CBS** (SNIA): `timestamp,offset,size,ioType,volumeId` with
//!   second timestamps and 512-byte-sector offsets/sizes.
//!
//! All parsers normalize to [`TraceRecord`]s in 4 KiB blocks with
//! microsecond timestamps rebased to the first record, skip malformed
//! lines (counted), and can filter a single volume/device.

use crate::record::{TraceRecord, BLOCK_SIZE};
use std::io::BufRead;

/// Which on-disk trace dialect to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// MSR Cambridge enterprise traces.
    Msrc,
    /// Alibaba cloud block storage traces.
    Ali,
    /// Tencent CBS traces.
    Tencent,
}

/// Parse outcome with data-quality counters.
#[derive(Debug, Default)]
pub struct ParseStats {
    /// Records successfully parsed.
    pub parsed: u64,
    /// Lines skipped (malformed, header, wrong device).
    pub skipped: u64,
}

/// Streaming trace parser over any `BufRead`.
pub struct TraceParser<R: BufRead> {
    reader: R,
    format: TraceFormat,
    /// Restrict to this device/volume id, if set.
    device_filter: Option<String>,
    /// Timestamp of the first accepted record (for rebasing).
    epoch_us: Option<u64>,
    /// Counters.
    pub stats: ParseStats,
    line: String,
}

impl<R: BufRead> TraceParser<R> {
    /// Create a parser for the given dialect.
    pub fn new(reader: R, format: TraceFormat) -> Self {
        Self {
            reader,
            format,
            device_filter: None,
            epoch_us: None,
            stats: ParseStats::default(),
            line: String::new(),
        }
    }

    /// Only keep records whose device/volume field equals `id`.
    pub fn with_device_filter(mut self, id: impl Into<String>) -> Self {
        self.device_filter = Some(id.into());
        self
    }

    fn parse_line(&self, line: &str) -> Option<(String, TraceRecord)> {
        let fields: Vec<&str> = line.trim().split(',').collect();
        match self.format {
            TraceFormat::Msrc => {
                // Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
                if fields.len() < 6 {
                    return None;
                }
                let ts_100ns: u64 = fields[0].parse().ok()?;
                let device = format!("{}:{}", fields[1], fields[2]);
                let is_write = fields[3].eq_ignore_ascii_case("write");
                let offset: u64 = fields[4].parse().ok()?;
                let size: u64 = fields[5].parse().ok()?;
                let rec = normalize(ts_100ns / 10, offset, size, is_write)?;
                Some((device, rec))
            }
            TraceFormat::Ali => {
                // device_id,opcode,offset,length,timestamp
                if fields.len() < 5 {
                    return None;
                }
                let device = fields[0].to_string();
                let is_write = fields[1].eq_ignore_ascii_case("w");
                let offset: u64 = fields[2].parse().ok()?;
                let size: u64 = fields[3].parse().ok()?;
                let ts_us: u64 = fields[4].parse().ok()?;
                let rec = normalize(ts_us, offset, size, is_write)?;
                Some((device, rec))
            }
            TraceFormat::Tencent => {
                // timestamp,offset,size,ioType,volumeId (sectors)
                if fields.len() < 5 {
                    return None;
                }
                let ts_s: u64 = fields[0].parse().ok()?;
                let offset_sect: u64 = fields[1].parse().ok()?;
                let size_sect: u64 = fields[2].parse().ok()?;
                let is_write = fields[3].trim() == "1";
                let device = fields[4].to_string();
                let rec =
                    normalize(ts_s * 1_000_000, offset_sect * 512, size_sect * 512, is_write)?;
                Some((device, rec))
            }
        }
    }
}

/// Convert byte-granular fields to a block-granular record.
fn normalize(
    ts_us: u64,
    offset_bytes: u64,
    size_bytes: u64,
    is_write: bool,
) -> Option<TraceRecord> {
    if size_bytes == 0 {
        return None;
    }
    let first_block = offset_bytes / BLOCK_SIZE;
    let last_block = (offset_bytes + size_bytes - 1) / BLOCK_SIZE;
    let num_blocks = (last_block - first_block + 1).min(u32::MAX as u64) as u32;
    Some(if is_write {
        TraceRecord::write(ts_us, first_block, num_blocks)
    } else {
        TraceRecord::read(ts_us, first_block, num_blocks)
    })
}

impl<R: BufRead> Iterator for TraceParser<R> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line).ok()? == 0 {
                return None;
            }
            if self.line.trim().is_empty() {
                continue;
            }
            let line = std::mem::take(&mut self.line);
            match self.parse_line(&line) {
                Some((device, mut rec)) => {
                    if let Some(f) = &self.device_filter {
                        if &device != f {
                            self.stats.skipped += 1;
                            continue;
                        }
                    }
                    let epoch = *self.epoch_us.get_or_insert(rec.ts_us);
                    rec.ts_us = rec.ts_us.saturating_sub(epoch);
                    self.stats.parsed += 1;
                    return Some(rec);
                }
                None => {
                    self.stats.skipped += 1;
                    continue;
                }
            }
        }
    }
}

/// Serialize records in the Ali dialect (the most compact of the three) —
/// useful for exporting synthetic suites so external tools can consume
/// them.
pub fn write_ali_format<W: std::io::Write>(
    out: &mut W,
    device: &str,
    records: impl IntoIterator<Item = TraceRecord>,
) -> std::io::Result<u64> {
    let mut n = 0;
    for rec in records {
        writeln!(
            out,
            "{},{},{},{},{}",
            device,
            if rec.is_write() { "W" } else { "R" },
            rec.lba * BLOCK_SIZE,
            rec.bytes(),
            rec.ts_us
        )?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OpType;
    use std::io::Cursor;

    #[test]
    fn parses_msrc_lines() {
        let data = "\
128166372003061629,usr,0,Write,8192,8192,1331\n\
128166372013061629,usr,0,Read,0,4096,100\n";
        let recs: Vec<_> = TraceParser::new(Cursor::new(data), TraceFormat::Msrc).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].op, OpType::Write);
        assert_eq!(recs[0].lba, 2); // 8192 / 4096
        assert_eq!(recs[0].num_blocks, 2);
        assert_eq!(recs[0].ts_us, 0); // rebased
        assert_eq!(recs[1].ts_us, 1_000_000); // 10^7 × 100ns later
    }

    #[test]
    fn parses_ali_lines_and_filters_device() {
        let data = "\
dev1,W,4096,4096,1000\n\
dev2,W,0,4096,1500\n\
dev1,R,8192,16384,2000\n";
        let mut p =
            TraceParser::new(Cursor::new(data), TraceFormat::Ali).with_device_filter("dev1");
        let recs: Vec<_> = p.by_ref().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(p.stats.parsed, 2);
        assert_eq!(p.stats.skipped, 1);
        assert_eq!(recs[0].lba, 1);
        assert_eq!(recs[1].num_blocks, 4);
    }

    #[test]
    fn parses_tencent_sectors() {
        let data = "1538323200,8,16,1,1283\n";
        let recs: Vec<_> = TraceParser::new(Cursor::new(data), TraceFormat::Tencent).collect();
        assert_eq!(recs.len(), 1);
        // 8 sectors * 512 = 4096 bytes offset → block 1; 16 sectors = 8192
        // bytes spanning blocks 1..=2.
        assert_eq!(recs[0].lba, 1);
        assert_eq!(recs[0].num_blocks, 2);
        assert!(recs[0].is_write());
    }

    #[test]
    fn malformed_lines_skipped_not_fatal() {
        let data = "garbage\n\ndev1,W,0,4096,100\nnot,enough\n";
        let mut p = TraceParser::new(Cursor::new(data), TraceFormat::Ali);
        let recs: Vec<_> = p.by_ref().collect();
        assert_eq!(recs.len(), 1);
        assert!(p.stats.skipped >= 2);
    }

    #[test]
    fn unaligned_requests_cover_all_touched_blocks() {
        // 1 byte at offset 4095 touches block 0 only; 2 bytes at 4095
        // touch blocks 0 and 1.
        let data = "d,W,4095,1,0\nd,W,4095,2,1\n";
        let recs: Vec<_> = TraceParser::new(Cursor::new(data), TraceFormat::Ali).collect();
        assert_eq!((recs[0].lba, recs[0].num_blocks), (0, 1));
        assert_eq!((recs[1].lba, recs[1].num_blocks), (0, 2));
    }

    #[test]
    fn ali_roundtrip() {
        let original = vec![TraceRecord::write(0, 5, 3), TraceRecord::read(1000, 0, 1)];
        let mut buf = Vec::new();
        let n = write_ali_format(&mut buf, "vol0", original.clone()).unwrap();
        assert_eq!(n, 2);
        let parsed: Vec<_> = TraceParser::new(Cursor::new(buf), TraceFormat::Ali).collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn zero_size_requests_dropped() {
        let data = "d,W,0,0,0\nd,W,0,4096,10\n";
        let recs: Vec<_> = TraceParser::new(Cursor::new(data), TraceFormat::Ali).collect();
        assert_eq!(recs.len(), 1);
    }
}
