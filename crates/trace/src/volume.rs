//! Per-volume workload model and trace generator.
//!
//! A [`VolumeModel`] captures everything that distinguishes one cloud block
//! volume from another: working-set size, arrival density, request-size
//! mixture, update skew, read/write mix, and sequentiality. A
//! [`VolumeTrace`] turns a model into a concrete deterministic stream of
//! [`TraceRecord`]s.

use crate::arrival::{ArrivalClock, ArrivalModel};
use crate::record::TraceRecord;
use crate::rng::Xoshiro256StarStar;
use crate::size_dist::SizeDist;
use crate::zipf::ZipfGenerator;
use serde::{Deserialize, Serialize};

/// Description of a single volume's workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VolumeModel {
    /// Stable identifier within a suite.
    pub id: u32,
    /// Number of distinct 4 KiB blocks in the volume's address space.
    pub unique_blocks: u64,
    /// Arrival process for requests.
    pub arrival: ArrivalModel,
    /// Request-size mixture.
    pub sizes: SizeDist,
    /// Zipfian skew of the access pattern over blocks (0 = uniform).
    pub zipf_alpha: f64,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Probability that a request starts where the previous one ended
    /// (sequential run behaviour, common in enterprise traces).
    pub seq_prob: f64,
    /// Fraction of the address space that is update-heavy; Zipfian rewrites
    /// target only this region. Cloud block traces show most LBAs written
    /// once or twice with a small heavily-updated region.
    pub update_frac: f64,
    /// Probability that a (non-sequential) request touches the write-once
    /// region (uniformly) instead of the update region.
    pub once_prob: f64,
    /// RNG seed; two volumes with equal fields but different seeds produce
    /// different concrete traces.
    pub seed: u64,
}

impl VolumeModel {
    /// Generator over this model producing `num_requests` records.
    pub fn trace(&self, num_requests: u64) -> VolumeTrace {
        VolumeTrace::new(self.clone(), num_requests)
    }

    /// Long-run mean request rate (req/s) implied by the arrival model.
    pub fn mean_rate_per_sec(&self) -> f64 {
        self.arrival.mean_rate_per_sec()
    }
}

/// Deterministic iterator of trace records for one volume.
#[derive(Debug, Clone)]
pub struct VolumeTrace {
    model: VolumeModel,
    remaining: u64,
    clock: ArrivalClock,
    rng: Xoshiro256StarStar,
    zipf: ZipfGenerator,
    /// Permutation seed decorrelating Zipf rank from LBA so that hot blocks
    /// are scattered across the address space rather than clustered at 0.
    scatter: u64,
    prev_end: u64,
}

impl VolumeTrace {
    fn new(model: VolumeModel, num_requests: u64) -> Self {
        let update_blocks =
            ((model.unique_blocks as f64 * model.update_frac) as u64).clamp(1, model.unique_blocks);
        let zipf = ZipfGenerator::new(update_blocks, model.zipf_alpha);
        let clock = model.arrival.clock(model.seed ^ 0xA11C_E5ED);
        let rng = Xoshiro256StarStar::new(model.seed);
        let scatter = crate::rng::mix64(model.seed ^ 0x5CA7_7E2D);
        Self { model, remaining: num_requests, clock, rng, zipf, scatter, prev_end: 0 }
    }

    /// Map a Zipf rank to an LBA inside the update region via a cheap
    /// bijective-ish scatter (affine map with an odd multiplier modulo the
    /// region size; we force oddness and accept the rare non-coprime case
    /// since the region size is arbitrary).
    fn rank_to_lba(&self, rank: u64) -> u64 {
        let n = self.zipf.n().max(1);
        let mult = self.scatter | 1;
        ((rank as u128 * mult as u128) % n as u128) as u64
    }
}

impl Iterator for VolumeTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let ts = self.clock.next_arrival();
        let nb = self.model.sizes.sample(&mut self.rng);
        let n = self.model.unique_blocks.max(1);
        let update_blocks = self.zipf.n();
        let lba = if self.rng.next_f64() < self.model.seq_prob {
            // Sequential continuation, wrapped into the address space.
            self.prev_end % n
        } else if update_blocks < n && self.rng.next_f64() < self.model.once_prob {
            // Write-once / rarely-touched region: uniform beyond the
            // update region.
            update_blocks + self.rng.next_bounded(n - update_blocks)
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            self.rank_to_lba(rank)
        };
        // Clamp multi-block requests into the address space.
        let lba = if nb as u64 >= n { 0 } else { lba.min(n - nb as u64) };
        self.prev_end = lba + nb as u64;
        let is_read = self.rng.next_f64() < self.model.read_ratio;
        Some(if is_read { TraceRecord::read(ts, lba, nb) } else { TraceRecord::write(ts, lba, nb) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OpType;

    fn model() -> VolumeModel {
        VolumeModel {
            id: 0,
            unique_blocks: 10_000,
            arrival: ArrivalModel::Fixed { gap_us: 100 },
            sizes: SizeDist::cloud_mixture(0.8, 0.1),
            zipf_alpha: 0.9,
            read_ratio: 0.3,
            seq_prob: 0.1,
            update_frac: 0.4,
            once_prob: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = model().trace(1000).collect();
        let b: Vec<_> = model().trace(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_trace() {
        let mut m2 = model();
        m2.seed = 43;
        let a: Vec<_> = model().trace(1000).collect();
        let b: Vec<_> = m2.trace(1000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn records_stay_in_address_space() {
        for rec in model().trace(5000) {
            assert!(rec.lba + rec.num_blocks as u64 <= 10_000);
            assert!(rec.num_blocks >= 1);
        }
    }

    #[test]
    fn read_ratio_approximated() {
        let n = 20_000;
        let reads = model().trace(n).filter(|r| r.op == OpType::Read).count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "read frac {frac}");
    }

    #[test]
    fn timestamps_monotone() {
        let mut prev = 0;
        for rec in model().trace(2000) {
            assert!(rec.ts_us >= prev);
            prev = rec.ts_us;
        }
    }

    #[test]
    fn skew_concentrates_writes() {
        // With alpha 0.9, distinct-block count must be far below request
        // count for a working set of 10k and 50k requests.
        let distinct: std::collections::HashSet<u64> = model()
            .trace(50_000)
            .filter(|r| r.is_write())
            .flat_map(|r| r.lbas().collect::<Vec<_>>())
            .collect();
        assert!(
            (distinct.len() as u64) < 10_000,
            "distinct {} should be below working set",
            distinct.len()
        );
    }

    #[test]
    fn takes_exactly_n_records() {
        assert_eq!(model().trace(777).count(), 777);
    }
}
