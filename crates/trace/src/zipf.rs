//! Zipfian item sampler.
//!
//! Implements the rejection-inversion-free generator of Gray et al.
//! ("Quickly generating billion-record synthetic databases", SIGMOD '94),
//! which is exactly what the YCSB benchmark uses internally. Sampling is
//! O(1) per draw after O(n^s)-free closed-form setup (two harmonic numbers
//! computed once in O(n); we cache them).
//!
//! For `alpha = 0` this degrades to a uniform distribution, matching the
//! paper's skewness sweep in Fig. 11 (right).

use crate::rng::Xoshiro256StarStar;

/// Zipfian generator over items `0..n` with skew parameter `alpha`
/// (a.k.a. `theta` in the YCSB source). Item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    alpha: f64,
    // Cached constants of the Gray et al. method.
    zetan: f64,
    theta: f64,
    eta: f64,
}

impl ZipfGenerator {
    /// Create a generator over `n` items with skew `alpha >= 0`.
    ///
    /// `alpha = 0` is uniform; YCSB's default is `0.99`. Setup is O(n) for
    /// the zeta sums (done once; generators are cheap to clone afterwards).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "ZipfGenerator needs at least one item");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let theta = alpha;
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2.min(n), theta);
        let eta = if n == 1 {
            // Degenerate single-item distribution; eta is unused because the
            // sampler below always returns 0, but keep it finite.
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan)
        };
        Self { n, alpha, zetan, theta, eta }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draw the next item rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.n == 1 {
            return 0;
        }
        if self.theta == 0.0 {
            return rng.next_bounded(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(1.0 / (1.0 - self.theta));
        let item = (self.n as f64 * spread) as u64;
        item.min(self.n - 1)
    }
}

/// Partial harmonic sum `sum_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq(alpha: f64, n: u64, draws: usize) -> Vec<f64> {
        let g = ZipfGenerator::new(n, alpha);
        let mut rng = Xoshiro256StarStar::new(12345);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[g.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let f = freq(0.0, 10, 100_000);
        for p in &f {
            assert!((p - 0.1).abs() < 0.01, "p={p}");
        }
    }

    #[test]
    fn skewed_head_dominates() {
        let f = freq(0.99, 1000, 200_000);
        // With alpha=0.99 over 1000 items, rank 0 should take a large share.
        assert!(f[0] > 0.1, "head share {}", f[0]);
        // Monotone-ish decay head vs tail.
        let tail: f64 = f[500..].iter().sum();
        assert!(f[0] > tail, "head should beat the entire upper tail");
    }

    #[test]
    fn eighty_twenty_at_high_alpha() {
        // The paper notes alpha=0.9 gives ~80% of traffic to top 20% of
        // blocks; check we are in that regime (loose bounds).
        let f = freq(0.9, 10_000, 400_000);
        let mut sorted = f.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top20: f64 = sorted[..2000].iter().sum();
        assert!(top20 > 0.65 && top20 < 0.95, "top-20% share {top20}");
    }

    #[test]
    fn sample_in_range() {
        let g = ZipfGenerator::new(7, 0.7);
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let g = ZipfGenerator::new(1, 0.99);
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }

    #[test]
    fn ranks_follow_zipf_ratio() {
        // P(0)/P(1) should be ~2^theta for theta=1-ish distributions.
        let f = freq(0.99, 100, 400_000);
        let ratio = f[0] / f[1];
        assert!(ratio > 1.5 && ratio < 2.6, "ratio {ratio}");
    }
}
