//! Calibrated synthetic workload suites.
//!
//! Stand-ins for the three production trace sets the paper evaluates
//! (Alibaba cloud block storage, Tencent cloud block storage, MSRC
//! enterprise servers). Each suite is a population of 50 volumes whose
//! marginal statistics are calibrated to the paper's Fig. 2:
//!
//! * per-volume mean request rate is log-normal, with the fraction of
//!   volumes above 100 req/s and below 10 req/s matching the reported
//!   1.9–2.7 % / 75–86.1 % ranges;
//! * write-size mixtures match the reported ≤8 KiB and >32 KiB write
//!   fractions (69.8–80.9 % and 10.8–23.4 %);
//! * Tencent volumes are more skewed than Alibaba (the paper notes its
//!   per-volume WA is lower because access is more skewed); MSRC is
//!   read-intensive with more sequential runs.
//!
//! The log-normal parameters below are solved from the two quantile
//! constraints: if `P(rate < 10) = p10` and `P(rate > 100) = p100`, then
//! `sigma = ln(10) / (z(1-p100) - z(p10))` and
//! `mu = ln(10) - z(p10) * sigma` (z = standard normal quantile).

use crate::arrival::ArrivalModel;
use crate::rng::Xoshiro256StarStar;
use crate::size_dist::SizeDist;
use crate::volume::VolumeModel;
use serde::{Deserialize, Serialize};

/// Which production environment a suite models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteKind {
    /// Alibaba cloud block storage (Li et al., ToS '23).
    Ali,
    /// Tencent cloud block storage (Zhang et al., ATC '20).
    Tencent,
    /// Microsoft Research Cambridge enterprise servers (Narayanan et al.).
    Msrc,
}

impl SuiteKind {
    /// All three suites in paper order.
    pub const ALL: [SuiteKind; 3] = [SuiteKind::Ali, SuiteKind::Tencent, SuiteKind::Msrc];

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SuiteKind::Ali => "AliCloud",
            SuiteKind::Tencent => "TencentCloud",
            SuiteKind::Msrc => "MSRC",
        }
    }

    /// Calibration targets for this suite (used both for generation and as
    /// oracle values in tests).
    pub fn calibration(&self) -> SuiteCalibration {
        match self {
            SuiteKind::Ali => SuiteCalibration {
                // 80% of volumes < 10 req/s, 2.5% > 100 req/s.
                rate_mu: 0.576,
                rate_sigma: 2.056,
                p_small_write: 0.75,
                p_large_write: 0.12,
                alpha_lo: 0.70,
                alpha_hi: 1.00,
                read_ratio_lo: 0.30,
                read_ratio_hi: 0.55,
                seq_prob: 0.08,
                update_frac_lo: 0.25,
                update_frac_hi: 0.55,
                once_prob_lo: 0.1,
                once_prob_hi: 0.3,
                bursty_frac: 0.55,
                min_blocks: 20 * 1024,
                max_blocks: 56 * 1024,
            },
            SuiteKind::Tencent => SuiteCalibration {
                // 86% of volumes < 10 req/s, 1.9% > 100 req/s; more skewed.
                rate_mu: -0.209,
                rate_sigma: 2.326,
                p_small_write: 0.81,
                p_large_write: 0.108,
                alpha_lo: 0.90,
                alpha_hi: 1.15,
                read_ratio_lo: 0.25,
                read_ratio_hi: 0.50,
                seq_prob: 0.05,
                update_frac_lo: 0.2,
                update_frac_hi: 0.45,
                once_prob_lo: 0.08,
                once_prob_hi: 0.25,
                bursty_frac: 0.55,
                min_blocks: 20 * 1024,
                max_blocks: 48 * 1024,
            },
            SuiteKind::Msrc => SuiteCalibration {
                // 75% of volumes < 10 req/s, 2.7% > 100 req/s; read heavy.
                rate_mu: 1.064,
                rate_sigma: 1.838,
                p_small_write: 0.70,
                p_large_write: 0.23,
                alpha_lo: 0.60,
                alpha_hi: 1.00,
                read_ratio_lo: 0.60,
                read_ratio_hi: 0.85,
                seq_prob: 0.20,
                update_frac_lo: 0.25,
                update_frac_hi: 0.55,
                once_prob_lo: 0.15,
                once_prob_hi: 0.4,
                bursty_frac: 0.45,
                min_blocks: 20 * 1024,
                max_blocks: 56 * 1024,
            },
        }
    }
}

/// Meta-distribution parameters from which a suite's volumes are drawn.
#[derive(Debug, Clone, Copy)]
pub struct SuiteCalibration {
    /// Log-normal mu of per-volume mean request rate (req/s).
    pub rate_mu: f64,
    /// Log-normal sigma of per-volume mean request rate.
    pub rate_sigma: f64,
    /// Target fraction of writes ≤ 8 KiB.
    pub p_small_write: f64,
    /// Target fraction of writes > 32 KiB.
    pub p_large_write: f64,
    /// Per-volume Zipf alpha range (uniform).
    pub alpha_lo: f64,
    /// Upper end of the alpha range.
    pub alpha_hi: f64,
    /// Per-volume read ratio range (uniform).
    pub read_ratio_lo: f64,
    /// Upper end of the read-ratio range.
    pub read_ratio_hi: f64,
    /// Sequential-run probability.
    pub seq_prob: f64,
    /// Update-region fraction range (uniform per volume).
    pub update_frac_lo: f64,
    /// Upper end of the update-region fraction range.
    pub update_frac_hi: f64,
    /// Write-once probability range (uniform per volume).
    pub once_prob_lo: f64,
    /// Upper end of the write-once probability range.
    pub once_prob_hi: f64,
    /// Fraction of volumes with bursty (on/off) rather than Poisson arrivals.
    pub bursty_frac: f64,
    /// Working-set size range in 4 KiB blocks.
    pub min_blocks: u64,
    /// Upper end of the working-set range.
    pub max_blocks: u64,
}

/// A population of volumes standing in for one production trace set.
#[derive(Debug, Clone)]
pub struct WorkloadSuite {
    /// Which environment this models.
    pub kind: SuiteKind,
    /// The volume models (paper: 50 volumes per trace set).
    pub volumes: Vec<VolumeModel>,
}

/// Number of volumes per suite, matching the paper's selection of 50.
pub const VOLUMES_PER_SUITE: usize = 50;

impl WorkloadSuite {
    /// Generate the suite deterministically from a seed.
    pub fn generate(kind: SuiteKind, seed: u64) -> Self {
        Self::generate_n(kind, seed, VOLUMES_PER_SUITE)
    }

    /// Generate the *evaluation selection*: volumes drawn from the same
    /// calibrated population but conditioned on being reasonably active
    /// (mean rate ≥ `min_rate` req/s). The paper "selects 50 volumes" from
    /// each trace set for its WA experiments; an activity-biased selection
    /// is the standard practice (idle volumes barely exercise GC), and it
    /// is what reproduces the paper's padding-ratio ranges.
    pub fn evaluation_selection(kind: SuiteKind, seed: u64, n: usize, min_rate: f64) -> Self {
        let mut out = Self::generate_n(kind, seed, 0);
        let mut attempt = 0u64;
        while out.volumes.len() < n {
            let candidate = Self::generate_n(kind, seed ^ crate::rng::mix64(attempt + 1), 1);
            attempt += 1;
            let v = &candidate.volumes[0];
            if v.mean_rate_per_sec() >= min_rate {
                let mut v = v.clone();
                v.id = out.volumes.len() as u32;
                out.volumes.push(v);
            }
            assert!(attempt < 200_000, "selection failed to find active volumes");
        }
        out
    }

    /// Generate a suite with an explicit volume count (smaller counts are
    /// useful for fast tests).
    pub fn generate_n(kind: SuiteKind, seed: u64, n: usize) -> Self {
        let cal = kind.calibration();
        let mut rng = Xoshiro256StarStar::new(seed ^ crate::rng::mix64(kind as u64 + 1));
        let volumes = (0..n as u32)
            .map(|id| {
                // Per-volume mean request rate, clamped to a sane range so a
                // single extreme volume cannot dominate simulation cost.
                let rate = rng.next_lognormal(cal.rate_mu, cal.rate_sigma).clamp(0.2, 2_000.0);
                let arrival = if rng.next_f64() < cal.bursty_frac {
                    // Bursts of 8–32 requests at 20 µs spacing (VM flush
                    // behaviour documented for cloud block traces); the
                    // idle gap is chosen to hit the target mean rate:
                    // cycle_us = (len-1)*20 + inter_gap, rate = len*1e6/cycle.
                    let burst_len = 8u32 << rng.next_bounded(3); // 8, 16, 32
                    let cycle_us = (burst_len as f64 * 1e6 / rate).max(400.0) as u64;
                    let inter = cycle_us.saturating_sub((burst_len as u64 - 1) * 20).max(1);
                    ArrivalModel::Bursty { burst_len, intra_gap_us: 20, inter_gap_us: inter }
                } else {
                    ArrivalModel::Poisson { rate_per_sec: rate }
                };
                let alpha = cal.alpha_lo + rng.next_f64() * (cal.alpha_hi - cal.alpha_lo);
                let read_ratio =
                    cal.read_ratio_lo + rng.next_f64() * (cal.read_ratio_hi - cal.read_ratio_lo);
                let span = cal.max_blocks - cal.min_blocks;
                let unique_blocks = cal.min_blocks + rng.next_bounded(span.max(1));
                let update_frac =
                    cal.update_frac_lo + rng.next_f64() * (cal.update_frac_hi - cal.update_frac_lo);
                let once_prob =
                    cal.once_prob_lo + rng.next_f64() * (cal.once_prob_hi - cal.once_prob_lo);
                VolumeModel {
                    id,
                    unique_blocks,
                    arrival,
                    sizes: SizeDist::cloud_mixture(cal.p_small_write, cal.p_large_write),
                    zipf_alpha: alpha,
                    read_ratio,
                    seq_prob: cal.seq_prob,
                    update_frac,
                    once_prob,
                    seed: crate::rng::mix64(seed ^ ((kind as u64) << 32) ^ id as u64),
                }
            })
            .collect();
        Self { kind, volumes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_fifty_volumes() {
        for kind in SuiteKind::ALL {
            let s = WorkloadSuite::generate(kind, 1);
            assert_eq!(s.volumes.len(), VOLUMES_PER_SUITE);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = WorkloadSuite::generate(SuiteKind::Ali, 9);
        let b = WorkloadSuite::generate(SuiteKind::Ali, 9);
        for (va, vb) in a.volumes.iter().zip(&b.volumes) {
            assert_eq!(va.seed, vb.seed);
            assert_eq!(va.unique_blocks, vb.unique_blocks);
        }
    }

    #[test]
    fn rate_quantiles_near_paper_fig2a() {
        // With only 50 volumes the sample quantiles are noisy; use a large
        // population to validate the meta-distribution itself.
        for kind in SuiteKind::ALL {
            let s = WorkloadSuite::generate_n(kind, 17, 4000);
            let rates: Vec<f64> = s.volumes.iter().map(|v| v.mean_rate_per_sec()).collect();
            let below10 = rates.iter().filter(|&&r| r < 10.0).count() as f64 / rates.len() as f64;
            let above100 = rates.iter().filter(|&&r| r > 100.0).count() as f64 / rates.len() as f64;
            assert!((0.70..=0.90).contains(&below10), "{}: below10 {below10}", kind.name());
            assert!((0.01..=0.05).contains(&above100), "{}: above100 {above100}", kind.name());
        }
    }

    #[test]
    fn write_size_marginals_match_calibration() {
        for kind in SuiteKind::ALL {
            let cal = kind.calibration();
            let s = WorkloadSuite::generate(kind, 3);
            let d = &s.volumes[0].sizes;
            assert!((d.prob_le(2) - cal.p_small_write).abs() < 1e-9);
            assert!(((1.0 - d.prob_le(8)) - cal.p_large_write).abs() < 1e-9);
        }
    }

    #[test]
    fn tencent_more_skewed_than_ali() {
        let ali = WorkloadSuite::generate(SuiteKind::Ali, 5);
        let tc = WorkloadSuite::generate(SuiteKind::Tencent, 5);
        let mean = |s: &WorkloadSuite| {
            s.volumes.iter().map(|v| v.zipf_alpha).sum::<f64>() / s.volumes.len() as f64
        };
        assert!(mean(&tc) > mean(&ali));
    }

    #[test]
    fn msrc_read_intensive() {
        let m = WorkloadSuite::generate(SuiteKind::Msrc, 5);
        let mean_reads =
            m.volumes.iter().map(|v| v.read_ratio).sum::<f64>() / m.volumes.len() as f64;
        assert!(mean_reads > 0.55, "MSRC read ratio {mean_reads}");
    }

    #[test]
    fn volume_seeds_unique_within_suite() {
        let s = WorkloadSuite::generate(SuiteKind::Ali, 21);
        let mut seeds: Vec<u64> = s.volumes.iter().map(|v| v.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), VOLUMES_PER_SUITE);
    }
}
