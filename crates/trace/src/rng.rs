//! Deterministic pseudo-random number generation.
//!
//! Simulation experiments must be exactly reproducible across runs and
//! platforms, so we implement two tiny, well-known generators in-repo rather
//! than depending on `rand`'s version-dependent stream semantics:
//!
//! * [`SplitMix64`] — used for seeding and for cheap hash-style mixing.
//! * [`Xoshiro256StarStar`] — the main generator for workload synthesis.
//!
//! Both match the published reference implementations (Vigna et al.).

/// SplitMix64 generator. Extremely fast, passes BigCrush when used for
/// seeding; also usable as a 64-bit mixing/finalization function.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        to_unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bias is < 2^-64 * bound, negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The SplitMix64 finalizer as a standalone mixing function. Used as the
/// spatial-sampling hash in `adapt-core` (SHARDS-style sampling needs a
/// uniform stateless hash over LBAs).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a `u64` to `[0, 1)` using the top 53 bits.
#[inline]
pub fn to_unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// xoshiro256** 1.0 — general-purpose 64-bit generator with 256-bit state.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 per the reference recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); SplitMix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        to_unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Standard exponential variate with the given rate (mean `1/rate`),
    /// via inverse transform. Used for Poisson arrival processes.
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - u in (0,1] avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Standard normal variate via Box–Muller (one value per call; we do not
    /// cache the second value to keep the stream position deterministic and
    /// easy to reason about).
    pub fn next_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal variate with the given parameters of the underlying
    /// normal distribution.
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut g = SplitMix64::new(1234567);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), a);
        assert_eq!(h.next_u64(), b);
    }

    #[test]
    fn splitmix_zero_seed_is_fine() {
        let mut g = SplitMix64::new(0);
        let vals: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        assert!(vals.iter().all(|&v| v != 0) || vals.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        let mut c = Xoshiro256StarStar::new(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut g = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn bounded_in_range_and_covers() {
        let mut g = Xoshiro256StarStar::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = g.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn exponential_mean_close() {
        let mut g = Xoshiro256StarStar::new(11);
        let n = 100_000;
        let rate = 4.0;
        let sum: f64 = (0..n).map(|_| g.next_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} should be ~0.25");
    }

    #[test]
    fn normal_mean_and_var_close() {
        let mut g = Xoshiro256StarStar::new(13);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mix64_is_bijective_sample() {
        // Spot-check injectivity on a small set (full proof is structural:
        // each step of mix64 is invertible).
        let mut outs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(outs.insert(mix64(i)));
        }
    }
}
