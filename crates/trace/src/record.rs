//! Block-level trace records.
//!
//! A trace is a time-ordered sequence of [`TraceRecord`]s. The unit of
//! addressing is the 4 KiB logical block (the paper's block size, §4.1);
//! multi-block requests cover `num_blocks` consecutive LBAs.

use serde::{Deserialize, Serialize};

/// Logical block size in bytes (4 KiB, the paper's default and the common
/// page size in storage systems).
pub const BLOCK_SIZE: u64 = 4096;

/// Request type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Read request. Reads never enter the placement path; they are used for
    /// workload statistics (request-rate CDFs) only.
    Read,
    /// Write (or update) request; drives the log-structured write path.
    Write,
}

/// One block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time in microseconds since trace start.
    pub ts_us: u64,
    /// Request type.
    pub op: OpType,
    /// First logical block address touched (block units, not bytes).
    pub lba: u64,
    /// Number of consecutive 4 KiB blocks covered.
    pub num_blocks: u32,
}

impl TraceRecord {
    /// Construct a write record.
    pub fn write(ts_us: u64, lba: u64, num_blocks: u32) -> Self {
        Self { ts_us, op: OpType::Write, lba, num_blocks }
    }

    /// Construct a read record.
    pub fn read(ts_us: u64, lba: u64, num_blocks: u32) -> Self {
        Self { ts_us, op: OpType::Read, lba, num_blocks }
    }

    /// Request size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.num_blocks as u64 * BLOCK_SIZE
    }

    /// Iterator over the LBAs this request covers.
    #[inline]
    pub fn lbas(&self) -> impl Iterator<Item = u64> {
        self.lba..self.lba + self.num_blocks as u64
    }

    /// Whether this is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.op == OpType::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bytes_and_lbas() {
        let r = TraceRecord::write(10, 100, 4);
        assert_eq!(r.bytes(), 16384);
        assert_eq!(r.lbas().collect::<Vec<_>>(), vec![100, 101, 102, 103]);
        assert!(r.is_write());
        assert!(!TraceRecord::read(0, 0, 1).is_write());
    }

    #[test]
    fn zero_length_request_covers_nothing() {
        let r = TraceRecord::read(0, 42, 0);
        assert_eq!(r.bytes(), 0);
        assert_eq!(r.lbas().count(), 0);
    }
}
