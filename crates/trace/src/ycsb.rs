//! YCSB-style workload generator.
//!
//! The paper's sensitivity study (§4.3, Fig. 11) and prototype evaluation
//! (§4.4, Fig. 12) use YCSB-A: an update-heavy workload with Zipfian access
//! over a fixed key population. This module reproduces that shape at the
//! block level: a *load* phase that fills `num_blocks` blocks once, then a
//! *run* phase of `num_updates` updates drawn from a Zipfian distribution
//! with configurable skew and arrival density.

use crate::arrival::ArrivalModel;
use crate::record::TraceRecord;
use crate::rng::Xoshiro256StarStar;
use crate::zipf::ZipfGenerator;
use serde::{Deserialize, Serialize};

/// Traffic intensity presets used by Fig. 11 (left). "Light" keeps every
/// inter-arrival gap above the 100 µs coalescing SLA so padding pressure is
/// maximal; "medium" and "heavy" fall below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficIntensity {
    /// Inter-arrival gap > SLA window (sparse; padding-bound).
    Light,
    /// Inter-arrival gap just below the SLA window.
    Medium,
    /// Dense back-to-back requests; no padding occurs.
    Heavy,
}

impl TrafficIntensity {
    /// Arrival model for this intensity given the 100 µs SLA used in the
    /// paper's setup.
    pub fn arrival(&self) -> ArrivalModel {
        match self {
            // Mean 250 µs gaps (Poisson): the stream is sparse relative
            // to the 100 µs window, so partial chunks dominate.
            TrafficIntensity::Light => ArrivalModel::Poisson { rate_per_sec: 4_000.0 },
            // Mean 60 µs gaps: some chunks fill before timing out.
            TrafficIntensity::Medium => ArrivalModel::Poisson { rate_per_sec: 16_667.0 },
            // Back-to-back submission (saturated queue): simulated time
            // does not advance between requests, so no coalescing window
            // ever expires — padding vanishes for every scheme, as in the
            // paper's heavy setting.
            TrafficIntensity::Heavy => ArrivalModel::Fixed { gap_us: 0 },
        }
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficIntensity::Light => "light",
            TrafficIntensity::Medium => "medium",
            TrafficIntensity::Heavy => "heavy",
        }
    }
}

/// Access distribution of the run phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessDistribution {
    /// Zipfian over the whole population (YCSB default).
    Zipfian,
    /// Uniform over the whole population.
    Uniform,
    /// "Latest": Zipfian over recency — recently *written* blocks are the
    /// most likely to be accessed again (YCSB-D's distribution).
    Latest,
}

/// Configuration of a YCSB-shaped block workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Number of distinct 4 KiB blocks (paper: 1 M blocks = 4 GiB).
    pub num_blocks: u64,
    /// Number of update requests in the run phase (paper: 10 M writes).
    pub num_updates: u64,
    /// Zipfian skew (YCSB default 0.99; Fig. 11 sweeps 0..0.99).
    pub zipf_alpha: f64,
    /// Fraction of run-phase requests that are reads (YCSB-A: 0.5).
    pub read_ratio: f64,
    /// Arrival process of the run phase.
    pub arrival: ArrivalModel,
    /// Blocks per request (1 = pure 4 KiB updates, YCSB record-sized).
    pub blocks_per_request: u32,
    /// Access distribution of the run phase.
    pub distribution: AccessDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// YCSB-A defaults (50/50 read/update, Zipfian) at the given intensity
    /// and skew.
    pub fn workload_a(
        num_blocks: u64,
        num_updates: u64,
        alpha: f64,
        intensity: TrafficIntensity,
    ) -> Self {
        Self {
            num_blocks,
            num_updates,
            zipf_alpha: alpha,
            read_ratio: 0.5,
            arrival: intensity.arrival(),
            blocks_per_request: 1,
            distribution: AccessDistribution::Zipfian,
            seed: 0x9C5B_A001,
        }
    }

    /// YCSB-B: 95% reads, 5% updates, Zipfian.
    pub fn workload_b(num_blocks: u64, num_ops: u64, intensity: TrafficIntensity) -> Self {
        Self { read_ratio: 0.95, ..Self::workload_a(num_blocks, num_ops, 0.99, intensity) }
    }

    /// YCSB-D-shaped: 95% reads, 5% writes, *latest* distribution — both
    /// reads and writes favour recently written blocks.
    pub fn workload_d(num_blocks: u64, num_ops: u64, intensity: TrafficIntensity) -> Self {
        Self {
            read_ratio: 0.95,
            distribution: AccessDistribution::Latest,
            ..Self::workload_a(num_blocks, num_ops, 0.99, intensity)
        }
    }

    /// YCSB-F-shaped: read-modify-write — every key access issues a read
    /// followed by a write of the same block. Modeled as a 50/50 mix where
    /// the generator pairs each write with the preceding read (the block
    /// stream is what the placement layer sees either way).
    pub fn workload_f(num_blocks: u64, num_ops: u64, intensity: TrafficIntensity) -> Self {
        Self { read_ratio: 0.5, ..Self::workload_a(num_blocks, num_ops, 0.99, intensity) }
    }

    /// Generator over this configuration (load phase then run phase).
    pub fn generator(&self) -> YcsbGenerator {
        YcsbGenerator::new(self.clone())
    }
}

/// Iterator producing the load phase (sequential fill of every block)
/// followed by the run phase (Zipfian updates/reads).
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    zipf: ZipfGenerator,
    rng: Xoshiro256StarStar,
    clock_now: u64,
    arrival: crate::arrival::ArrivalClock,
    loaded: u64,
    updates_done: u64,
    scatter: u64,
    /// Ring of recently written LBAs (for the latest distribution).
    recent: Vec<u64>,
    recent_pos: usize,
}

impl YcsbGenerator {
    fn new(cfg: YcsbConfig) -> Self {
        let zipf = ZipfGenerator::new(cfg.num_blocks.max(1), cfg.zipf_alpha);
        let arrival = cfg.arrival.clock(cfg.seed ^ 0xDEAD_BEEF);
        let rng = Xoshiro256StarStar::new(cfg.seed);
        let scatter = crate::rng::mix64(cfg.seed ^ 0x5CA7);
        Self {
            cfg,
            zipf,
            rng,
            clock_now: 0,
            arrival,
            loaded: 0,
            updates_done: 0,
            scatter,
            recent: Vec::with_capacity(RECENT_WINDOW),
            recent_pos: 0,
        }
    }

    fn rank_to_lba(&self, rank: u64) -> u64 {
        let n = self.cfg.num_blocks.max(1);
        let mult = self.scatter | 1;
        ((rank as u128 * mult as u128) % n as u128) as u64
    }

    /// Total number of records this generator will yield.
    pub fn total_len(&self) -> u64 {
        let stride = self.cfg.blocks_per_request.max(1) as u64;
        self.cfg.num_blocks.div_ceil(stride) + self.cfg.num_updates
    }
}

/// Window of the latest distribution (most recent writes tracked).
const RECENT_WINDOW: usize = 1024;

impl YcsbGenerator {
    fn note_write(&mut self, lba: u64) {
        if self.recent.len() < RECENT_WINDOW {
            self.recent.push(lba);
        } else {
            self.recent[self.recent_pos] = lba;
            self.recent_pos = (self.recent_pos + 1) % RECENT_WINDOW;
        }
    }
}

impl Iterator for YcsbGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let stride = self.cfg.blocks_per_request.max(1);
        if self.loaded < self.cfg.num_blocks {
            // Load phase: dense sequential fill (back-to-back, 1 µs apart);
            // it is excluded from WA measurement windows by the simulator.
            let lba = self.loaded;
            let nb = stride.min((self.cfg.num_blocks - self.loaded) as u32);
            self.loaded += nb as u64;
            let ts = self.clock_now;
            self.clock_now += 1;
            return Some(TraceRecord::write(ts, lba, nb));
        }
        if self.updates_done >= self.cfg.num_updates {
            return None;
        }
        self.updates_done += 1;
        // Run-phase arrivals start after the load phase finished.
        let ts = self.clock_now + self.arrival.next_arrival();
        let n = self.cfg.num_blocks.max(1);
        let lba = match self.cfg.distribution {
            AccessDistribution::Zipfian => {
                let rank = self.zipf.sample(&mut self.rng);
                self.rank_to_lba(rank)
            }
            AccessDistribution::Uniform => self.rng.next_bounded(n),
            AccessDistribution::Latest => {
                if self.recent.is_empty() {
                    let rank = self.zipf.sample(&mut self.rng);
                    self.rank_to_lba(rank)
                } else {
                    // Zipfian over recency: rank 0 = newest write.
                    let r = self.zipf.sample(&mut self.rng) as usize % self.recent.len();
                    let newest = (self.recent_pos + self.recent.len() - 1) % self.recent.len();
                    self.recent[(newest + self.recent.len() - r) % self.recent.len()]
                }
            }
        };
        let lba = if stride as u64 >= n { 0 } else { lba.min(n - stride as u64) };
        Some(if self.rng.next_f64() < self.cfg.read_ratio {
            TraceRecord::read(ts, lba, stride)
        } else {
            self.note_write(lba);
            TraceRecord::write(ts, lba, stride)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OpType;

    fn cfg(alpha: f64) -> YcsbConfig {
        YcsbConfig {
            num_blocks: 1000,
            num_updates: 5000,
            zipf_alpha: alpha,
            read_ratio: 0.5,
            arrival: ArrivalModel::Fixed { gap_us: 100 },
            blocks_per_request: 1,
            distribution: AccessDistribution::Zipfian,
            seed: 11,
        }
    }

    #[test]
    fn load_phase_covers_all_blocks_once() {
        let recs: Vec<_> = cfg(0.99).generator().take(1000).collect();
        assert!(recs.iter().all(|r| r.op == OpType::Write));
        let lbas: Vec<u64> = recs.iter().map(|r| r.lba).collect();
        assert_eq!(lbas, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn total_len_matches_iteration() {
        let g = cfg(0.5).generator();
        let expect = g.total_len();
        assert_eq!(g.count() as u64, expect);
    }

    #[test]
    fn run_phase_mixes_reads_and_writes() {
        let recs: Vec<_> = cfg(0.99).generator().skip(1000).collect();
        let reads = recs.iter().filter(|r| r.op == OpType::Read).count();
        let frac = reads as f64 / recs.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "read frac {frac}");
    }

    #[test]
    fn intensity_gaps_ordered() {
        let l = TrafficIntensity::Light.arrival().mean_rate_per_sec();
        let m = TrafficIntensity::Medium.arrival().mean_rate_per_sec();
        let h = TrafficIntensity::Heavy.arrival().mean_rate_per_sec();
        assert!(l < m && m < h);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = cfg(0.9).generator().collect();
        let b: Vec<_> = cfg(0.9).generator().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_nondecreasing() {
        let mut prev = 0;
        for r in cfg(0.7).generator() {
            assert!(r.ts_us >= prev, "ts {} < prev {prev}", r.ts_us);
            prev = r.ts_us;
        }
    }

    #[test]
    fn latest_distribution_prefers_recent_writes() {
        let mut c = cfg(0.99);
        c.distribution = AccessDistribution::Latest;
        c.read_ratio = 0.0;
        c.num_updates = 20_000;
        let recs: Vec<_> = c.generator().skip(1000).collect();
        // Consecutive-write reuse: with the latest distribution a large
        // share of writes hit a block written within the last few ops.
        let mut last_seen = std::collections::HashMap::new();
        let mut near = 0u64;
        for (i, r) in recs.iter().enumerate() {
            if let Some(&prev) = last_seen.get(&r.lba) {
                if i - prev <= 64 {
                    near += 1;
                }
            }
            last_seen.insert(r.lba, i);
        }
        let frac = near as f64 / recs.len() as f64;
        assert!(frac > 0.2, "recency fraction {frac}");
    }

    #[test]
    fn workload_presets_shapes() {
        let b = YcsbConfig::workload_b(1000, 100, TrafficIntensity::Heavy);
        assert!((b.read_ratio - 0.95).abs() < 1e-9);
        let d = YcsbConfig::workload_d(1000, 100, TrafficIntensity::Heavy);
        assert_eq!(d.distribution, AccessDistribution::Latest);
        let f = YcsbConfig::workload_f(1000, 100, TrafficIntensity::Heavy);
        assert!((f.read_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_distribution_covers_space() {
        let mut c = cfg(0.0);
        c.distribution = AccessDistribution::Uniform;
        c.read_ratio = 0.0;
        let distinct: std::collections::HashSet<u64> =
            c.generator().skip(1000).map(|r| r.lba).collect();
        assert!(distinct.len() > 900, "{}", distinct.len());
    }

    #[test]
    fn multi_block_requests_in_range() {
        let mut c = cfg(0.9);
        c.blocks_per_request = 4;
        for r in c.generator() {
            assert!(r.lba + r.num_blocks as u64 <= 1000);
        }
    }
}
