//! Request arrival-time models.
//!
//! The paper's motivation (Observation 1) and the density-sensitivity
//! experiment (Fig. 11 left) hinge on how request inter-arrival times relate
//! to the array's 100 µs chunk-coalescing SLA window: sparse arrivals force
//! zero padding, dense arrivals fill chunks naturally.

use crate::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// An arrival process producing monotonically non-decreasing timestamps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Fixed inter-arrival gap in microseconds.
    Fixed { gap_us: u64 },
    /// Poisson process with the given mean rate (requests per second).
    Poisson { rate_per_sec: f64 },
    /// On/off bursty process: bursts of `burst_len` requests with
    /// `intra_gap_us` spacing, separated by `inter_gap_us` idle gaps.
    /// Models the diurnal/bursty volumes seen in cloud block traces.
    Bursty { burst_len: u32, intra_gap_us: u64, inter_gap_us: u64 },
}

impl ArrivalModel {
    /// Stateful clock over this model.
    pub fn clock(&self, rng_seed: u64) -> ArrivalClock {
        ArrivalClock {
            model: self.clone(),
            rng: Xoshiro256StarStar::new(rng_seed),
            now_us: 0,
            burst_pos: 0,
        }
    }

    /// Long-run mean rate in requests per second.
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalModel::Fixed { gap_us } => {
                if gap_us == 0 {
                    f64::INFINITY
                } else {
                    1e6 / gap_us as f64
                }
            }
            ArrivalModel::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalModel::Bursty { burst_len, intra_gap_us, inter_gap_us } => {
                let cycle_us = (burst_len as u64).saturating_sub(1) * intra_gap_us + inter_gap_us;
                if cycle_us == 0 {
                    f64::INFINITY
                } else {
                    burst_len as f64 * 1e6 / cycle_us as f64
                }
            }
        }
    }
}

/// Iterator-style clock yielding successive arrival timestamps (µs).
#[derive(Debug, Clone)]
pub struct ArrivalClock {
    model: ArrivalModel,
    rng: Xoshiro256StarStar,
    now_us: u64,
    burst_pos: u32,
}

impl ArrivalClock {
    /// Timestamp of the next arrival; advances the clock.
    pub fn next_arrival(&mut self) -> u64 {
        let ts = self.now_us;
        let gap = match self.model {
            ArrivalModel::Fixed { gap_us } => gap_us,
            ArrivalModel::Poisson { rate_per_sec } => {
                let rate_per_us = rate_per_sec / 1e6;
                if rate_per_us <= 0.0 {
                    u64::MAX / 4
                } else {
                    self.rng.next_exp(rate_per_us).round() as u64
                }
            }
            ArrivalModel::Bursty { burst_len, intra_gap_us, inter_gap_us } => {
                self.burst_pos += 1;
                if self.burst_pos >= burst_len {
                    self.burst_pos = 0;
                    inter_gap_us
                } else {
                    intra_gap_us
                }
            }
        };
        self.now_us = self.now_us.saturating_add(gap);
        ts
    }

    /// Current clock value without advancing.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_gaps_are_exact() {
        let mut c = ArrivalModel::Fixed { gap_us: 50 }.clock(1);
        assert_eq!(c.next_arrival(), 0);
        assert_eq!(c.next_arrival(), 50);
        assert_eq!(c.next_arrival(), 100);
    }

    #[test]
    fn poisson_rate_close_to_target() {
        let mut c = ArrivalModel::Poisson { rate_per_sec: 1000.0 }.clock(2);
        let n = 50_000;
        let mut last = 0;
        for _ in 0..n {
            last = c.next_arrival();
        }
        let observed_rate = (n - 1) as f64 / (last as f64 / 1e6);
        assert!((observed_rate - 1000.0).abs() / 1000.0 < 0.05, "rate {observed_rate}");
    }

    #[test]
    fn bursty_structure() {
        let mut c =
            ArrivalModel::Bursty { burst_len: 3, intra_gap_us: 10, inter_gap_us: 1000 }.clock(3);
        let ts: Vec<u64> = (0..6).map(|_| c.next_arrival()).collect();
        assert_eq!(ts, vec![0, 10, 20, 1020, 1030, 1040]);
    }

    #[test]
    fn mean_rate_formulas() {
        assert!((ArrivalModel::Fixed { gap_us: 1000 }.mean_rate_per_sec() - 1000.0).abs() < 1e-9);
        let b = ArrivalModel::Bursty { burst_len: 3, intra_gap_us: 10, inter_gap_us: 980 };
        // cycle = 2*10 + 980 = 1000us for 3 reqs => 3000 req/s
        assert!((b.mean_rate_per_sec() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_timestamps() {
        for model in [
            ArrivalModel::Fixed { gap_us: 7 },
            ArrivalModel::Poisson { rate_per_sec: 5000.0 },
            ArrivalModel::Bursty { burst_len: 5, intra_gap_us: 3, inter_gap_us: 99 },
        ] {
            let mut c = model.clock(9);
            let mut prev = 0;
            for _ in 0..1000 {
                let t = c.next_arrival();
                assert!(t >= prev);
                prev = t;
            }
        }
    }
}
