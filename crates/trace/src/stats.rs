//! Workload statistics: the measurements behind Fig. 2.
//!
//! Provides empirical CDFs over per-volume request rates and write sizes,
//! plus general summary helpers (quantiles, box-plot stats) reused by the
//! experiment reports.

use crate::record::TraceRecord;
use serde::{Deserialize, Serialize};

/// Empirical distribution over f64 samples with quantile/CDF queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation; `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Five-number summary plus outliers — the data behind a box plot
/// (paper Fig. 8 bottom row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum non-outlier (lower whisker).
    pub whisker_lo: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum non-outlier (upper whisker).
    pub whisker_hi: f64,
    /// Points beyond 1.5×IQR from the box.
    pub outliers: Vec<f64>,
    /// Mean of all samples.
    pub mean: f64,
}

impl BoxStats {
    /// Compute box-plot statistics from samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "BoxStats of empty sample set");
        let e = Ecdf::new(samples.to_vec());
        let q1 = e.quantile(0.25);
        let q3 = e.quantile(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let inliers: Vec<f64> =
            e.samples().iter().copied().filter(|&x| x >= lo_fence && x <= hi_fence).collect();
        let outliers =
            e.samples().iter().copied().filter(|&x| x < lo_fence || x > hi_fence).collect();
        Self {
            // Clamp whiskers to the box: with tiny samples and extreme
            // outliers, the smallest inlier can exceed the *interpolated*
            // Q1 (and symmetrically for Q3); a whisker inside the box is
            // meaningless, so it collapses onto the box edge.
            whisker_lo: inliers.first().copied().unwrap_or(q1).min(q1),
            q1,
            median: e.quantile(0.5),
            q3,
            whisker_hi: inliers.last().copied().unwrap_or(q3).max(q3),
            outliers,
            mean: e.mean(),
        }
    }
}

/// Summary of one volume's trace, aggregated record-by-record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total requests observed.
    pub requests: u64,
    /// Write requests observed.
    pub writes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Writes of at most 8 KiB.
    pub writes_le_8k: u64,
    /// Writes strictly larger than 32 KiB.
    pub writes_gt_32k: u64,
    /// First timestamp seen (µs).
    pub first_ts_us: u64,
    /// Last timestamp seen (µs).
    pub last_ts_us: u64,
}

impl TraceSummary {
    /// Fold one record into the summary.
    pub fn observe(&mut self, rec: &TraceRecord) {
        if self.requests == 0 {
            self.first_ts_us = rec.ts_us;
        }
        self.requests += 1;
        self.last_ts_us = self.last_ts_us.max(rec.ts_us);
        if rec.is_write() {
            self.writes += 1;
            self.write_bytes += rec.bytes();
            if rec.bytes() <= 8 * 1024 {
                self.writes_le_8k += 1;
            }
            if rec.bytes() > 32 * 1024 {
                self.writes_gt_32k += 1;
            }
        }
    }

    /// Summarize an iterator of records.
    pub fn from_trace<I: IntoIterator<Item = TraceRecord>>(trace: I) -> Self {
        let mut s = Self::default();
        for rec in trace {
            s.observe(&rec);
        }
        s
    }

    /// Mean request rate over the observed span (req/s).
    pub fn mean_rate_per_sec(&self) -> f64 {
        let span_us = self.last_ts_us.saturating_sub(self.first_ts_us);
        if span_us == 0 {
            return 0.0;
        }
        (self.requests.saturating_sub(1)) as f64 / (span_us as f64 / 1e6)
    }

    /// Mean write request size in bytes.
    pub fn mean_write_bytes(&self) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        self.write_bytes as f64 / self.writes as f64
    }

    /// Fraction of writes at most 8 KiB.
    pub fn frac_writes_le_8k(&self) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        self.writes_le_8k as f64 / self.writes as f64
    }

    /// Fraction of writes larger than 32 KiB.
    pub fn frac_writes_gt_32k(&self) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        self.writes_gt_32k as f64 / self.writes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn ecdf_cdf_and_quantiles() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert!((e.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((e.quantile(1.0) - 4.0).abs() < 1e-12);
        assert!((e.quantile(0.5) - 2.5).abs() < 1e-12);
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn box_stats_basic() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxStats::from_samples(&samples);
        assert!((b.median - 50.5).abs() < 1e-9);
        assert!(b.q1 < b.median && b.median < b.q3);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn box_stats_detects_outliers() {
        let mut samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        samples.push(1000.0);
        let b = BoxStats::from_samples(&samples);
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
    }

    #[test]
    fn trace_summary_counts() {
        let recs = vec![
            TraceRecord::write(0, 0, 1),          // 4k
            TraceRecord::write(1_000_000, 4, 2),  // 8k
            TraceRecord::write(2_000_000, 8, 16), // 64k
            TraceRecord::read(3_000_000, 0, 1),
        ];
        let s = TraceSummary::from_trace(recs);
        assert_eq!(s.requests, 4);
        assert_eq!(s.writes, 3);
        assert_eq!(s.writes_le_8k, 2);
        assert_eq!(s.writes_gt_32k, 1);
        // 3 intervals over 3 seconds => 1 req/s.
        assert!((s.mean_rate_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = TraceSummary::default();
        assert_eq!(s.mean_rate_per_sec(), 0.0);
        assert_eq!(s.mean_write_bytes(), 0.0);
        assert_eq!(s.frac_writes_le_8k(), 0.0);
    }

    #[test]
    fn ecdf_quantile_single_sample() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.quantile(0.3), 7.0);
    }
}
