//! Request-size distributions.
//!
//! Production block workloads are dominated by small I/Os (paper Fig. 2b:
//! 69.8–80.9 % of writes ≤ 8 KiB, only 10.8–23.4 % > 32 KiB). We model
//! request sizes as a categorical mixture over block counts, which lets the
//! suites (`suites.rs`) hit those marginals exactly.

use crate::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Categorical distribution over request sizes in 4 KiB blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeDist {
    /// `(num_blocks, weight)` entries; weights need not be normalized.
    entries: Vec<(u32, f64)>,
    /// Cumulative weights for sampling (normalized).
    #[serde(skip)]
    cum: Vec<f64>,
}

impl SizeDist {
    /// Build from `(num_blocks, weight)` pairs. Panics if empty, if any
    /// entry has zero blocks, or if the total weight is non-positive.
    pub fn new(entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty(), "SizeDist needs at least one entry");
        assert!(entries.iter().all(|&(b, w)| b > 0 && w >= 0.0));
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut cum = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for &(_, w) in &entries {
            acc += w / total;
            cum.push(acc);
        }
        // Guard against rounding leaving the last boundary below 1.0.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Self { entries, cum }
    }

    /// A fixed size (every request `blocks` long).
    pub fn fixed(blocks: u32) -> Self {
        Self::new(vec![(blocks, 1.0)])
    }

    /// Small-I/O-dominated mixture characteristic of cloud block storage:
    /// `p_small` of requests are ≤ 8 KiB (split 4 KiB / 8 KiB),
    /// `p_large` exceed 32 KiB, the remainder fall in between.
    pub fn cloud_mixture(p_small: f64, p_large: f64) -> Self {
        assert!(p_small >= 0.0 && p_large >= 0.0 && p_small + p_large <= 1.0);
        let p_mid = 1.0 - p_small - p_large;
        Self::new(vec![
            (1, p_small * 0.70),  // 4 KiB
            (2, p_small * 0.30),  // 8 KiB
            (4, p_mid * 0.55),    // 16 KiB
            (8, p_mid * 0.45),    // 32 KiB
            (16, p_large * 0.60), // 64 KiB
            (32, p_large * 0.30), // 128 KiB
            (64, p_large * 0.10), // 256 KiB
        ])
    }

    /// Sample a request size in blocks.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u32 {
        let u = rng.next_f64();
        let idx = self.cum.iter().position(|&c| u < c).unwrap_or(self.entries.len() - 1);
        self.entries[idx].0
    }

    /// Mean request size in blocks.
    pub fn mean_blocks(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        self.entries.iter().map(|&(b, w)| b as f64 * w / total).sum()
    }

    /// Probability that a request is at most `blocks` blocks long.
    pub fn prob_le(&self, blocks: u32) -> f64 {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        self.entries.iter().filter(|&&(b, _)| b <= blocks).map(|&(_, w)| w / total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let d = SizeDist::fixed(3);
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3);
        }
    }

    #[test]
    fn cloud_mixture_marginals() {
        // Target: 75% ≤ 8KiB (≤2 blocks), 15% > 32KiB (>8 blocks).
        let d = SizeDist::cloud_mixture(0.75, 0.15);
        assert!((d.prob_le(2) - 0.75).abs() < 1e-9);
        assert!((1.0 - d.prob_le(8) - 0.15).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_analytic_prob() {
        let d = SizeDist::cloud_mixture(0.8, 0.1);
        let mut rng = Xoshiro256StarStar::new(77);
        let n = 200_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) <= 2).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn mean_blocks_sane() {
        let d = SizeDist::new(vec![(1, 1.0), (3, 1.0)]);
        assert!((d.mean_blocks() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = SizeDist::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_block_entry_rejected() {
        let _ = SizeDist::new(vec![(0, 1.0)]);
    }
}
