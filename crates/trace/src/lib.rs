//! Trace substrate for the ADAPT reproduction.
//!
//! This crate provides everything the simulator and prototype consume as
//! *input*: the block-level trace record model, deterministic pseudo-random
//! number generation, Zipfian and YCSB-style workload generators, and three
//! synthetic workload *suites* calibrated to the statistics the ADAPT paper
//! reports for the Alibaba, Tencent, and MSRC production traces (Fig. 2).
//!
//! The public traces themselves are not redistributable/downloadable in this
//! environment, so the suites are synthetic volume populations whose
//! per-volume request-rate CDF, write-size CDF, skew, and read/write mix are
//! calibrated to the paper's reported marginals (see `suites`). Placement
//! policies only ever observe `(timestamp, op, lba, length)`, so matching
//! those marginals exercises the same code paths as the original traces.
//!
//! Everything here is deterministic given a seed: generators are pure
//! functions of `(seed, index)` so experiments are exactly reproducible.

pub mod arrival;
pub mod formats;
pub mod record;
pub mod rng;
pub mod size_dist;
pub mod stats;
pub mod suites;
pub mod volume;
pub mod ycsb;
pub mod zipf;

pub use record::{OpType, TraceRecord, BLOCK_SIZE};
pub use rng::SplitMix64;
pub use suites::{SuiteKind, WorkloadSuite};
pub use volume::{VolumeModel, VolumeTrace};
pub use ycsb::{YcsbConfig, YcsbGenerator};
pub use zipf::ZipfGenerator;
