//! Pre-change baseline for the perf harness.
//!
//! These rows were measured by running the `perf` bin against the engine
//! as it stood *before* the hot-path overhaul (full-scan GC victim
//! selection, SipHash maps, per-chunk allocations), on the same machine
//! and the same seeded workloads. They are embedded as data because the
//! vendored `serde_json` is write-only (no parser to merge a previous
//! `BENCH_perf.json`), and they define the denominator of the `speedup`
//! section every future run reports.

use crate::perf::BaselineRow;

/// `(key, wall_ms, kops_per_sec, gc_select_share)` per workload/scheme.
pub const BASELINE: &[BaselineRow] = &[
    ("small/ADAPT/Greedy", 44.5, 2943.0, 0.046),
    ("small/ADAPT/Cost-Benefit", 41.3, 3175.5, 0.059),
    ("small/SepBIT/Greedy", 28.4, 4609.8, 0.047),
    ("small/SepGC/Greedy", 17.0, 7715.5, 0.088),
    ("medium/ADAPT/Greedy", 611.5, 2143.3, 0.152),
    ("medium/ADAPT/Cost-Benefit", 647.6, 2023.9, 0.245),
    ("medium/SepBIT/Greedy", 498.6, 2629.0, 0.184),
    ("medium/SepGC/Greedy", 316.2, 4144.7, 0.307),
];
