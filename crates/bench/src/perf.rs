//! The perf regression harness (`perf` bin).
//!
//! Replays fixed, seeded single-volume workloads through ADAPT and two
//! baselines and records wall time, throughput, the share of wall time
//! spent in GC victim selection, and peak resident structure sizes. The
//! result lands in `BENCH_perf.json` at the repo root so every PR leaves
//! a trajectory point behind.
//!
//! Two sizes: `small` (a quick sanity point) and `medium` (the regression
//! gate — large enough that per-op engine cost dominates wall time, like
//! the paper's §4 multi-capacity replays). Traces are fully materialized
//! before the clock starts, so the measurement covers the engine only,
//! not trace synthesis.
//!
//! The `baseline` section is a measurement of the *pre-optimization*
//! engine (captured on the same machine before the incremental-GC /
//! fxhash / buffer-pool changes landed) embedded as data; `current` is
//! re-measured on every run and `speedup` is the per-run wall-time ratio
//! against that baseline.

use adapt_array::CountingArray;
use adapt_lss::{EventConfig, GcSelection, Lss, LssConfig, PlacementPolicy, StageCosts};
use adapt_sim::runner::run_suite;
use adapt_sim::scheme::{with_policy, PolicyVisitor};
use adapt_sim::{ReplayConfig, Scheme};
use adapt_trace::arrival::ArrivalModel;
use adapt_trace::ycsb::{AccessDistribution, YcsbConfig};
use adapt_trace::{SuiteKind, TraceRecord, WorkloadSuite};
use serde::Serialize;
use std::time::Instant;

/// One seeded replay workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Workload name ("small", "medium", "quick").
    pub name: &'static str,
    /// Logical volume size in 4 KiB blocks.
    pub user_blocks: u64,
    /// Overwrite blocks replayed on top of the initial full-volume fill
    /// (the generator prepends `user_blocks` fill writes).
    pub write_blocks: u64,
    /// Zipf skew of the update stream.
    pub zipf_alpha: f64,
    /// Trace seed.
    pub seed: u64,
}

/// The standard ladder: `small` for a fast signal, `medium` as the
/// regression gate (≈4× capacity of overwrite traffic, enough segments
/// that victim selection cost is visible).
pub const WORKLOADS: [Workload; 2] = [
    Workload {
        name: "small",
        user_blocks: 32 * 1024,
        write_blocks: 3 * 32 * 1024,
        zipf_alpha: 0.9,
        seed: 0xADA7,
    },
    Workload {
        name: "medium",
        user_blocks: 256 * 1024,
        write_blocks: 4 * 256 * 1024,
        zipf_alpha: 0.9,
        seed: 0xADA7,
    },
];

/// The CI smoke workload (`--quick`): seconds even on a cold cache.
pub const QUICK: Workload = Workload {
    name: "quick",
    user_blocks: 8 * 1024,
    write_blocks: 2 * 8 * 1024,
    zipf_alpha: 0.9,
    seed: 0xADA7,
};

/// The schemes the harness tracks: ADAPT plus two baselines, and ADAPT
/// again under Cost-Benefit so both victim-selection paths stay measured.
pub const SCHEMES: [(Scheme, GcSelection); 4] = [
    (Scheme::Adapt, GcSelection::Greedy),
    (Scheme::Adapt, GcSelection::CostBenefit),
    (Scheme::SepBit, GcSelection::Greedy),
    (Scheme::SepGc, GcSelection::Greedy),
];

/// One measured replay.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// `workload/scheme/gc` key, e.g. `medium/ADAPT/Greedy`.
    pub key: String,
    /// Host write blocks replayed.
    pub blocks: u64,
    /// Wall time of the replay (ms).
    pub wall_ms: f64,
    /// Throughput in thousand block-writes per second.
    pub kops_per_sec: f64,
    /// Wall time inside GC victim selection (ms).
    pub gc_select_ms: f64,
    /// GC-selection share of wall time (0..1).
    pub gc_select_share: f64,
    /// GC passes run.
    pub gc_passes: u64,
    /// Write amplification over the whole replay.
    pub wa: f64,
    /// Resident index + policy structures at the end (bytes).
    pub memory_bytes: u64,
    /// Structured events emitted (0 when capture is disabled).
    pub events_emitted: u64,
    /// Per-stage write-path cost attribution of this replay. Only present
    /// when `ADAPT_STAGE_COSTS` enabled the op-clocked profiler; the
    /// block is purely additive — every other field is bit-identical to
    /// the unprofiled run (the profiler's determinism contract, pinned by
    /// the hotpath pipeline point and the CI pipeline-smoke diff).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub stage_costs: Option<StageCosts>,
}

/// Whether `ADAPT_STAGE_COSTS` requests per-stage cost attribution on the
/// gate replays (any non-empty value other than `0`).
pub fn stage_costs_enabled() -> bool {
    std::env::var("ADAPT_STAGE_COSTS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A baseline row embedded as data: `(key, wall_ms, kops_per_sec,
/// gc_select_share)` measured before the hot-path overhaul landed.
pub type BaselineRow = (&'static str, f64, f64, f64);

/// Key for a scheme/gc pair under a workload.
pub fn key_of(w: &Workload, scheme: Scheme, gc: GcSelection) -> String {
    format!("{}/{}/{}", w.name, scheme.name(), gc.name())
}

struct PerfVisitor<'a> {
    cfg: LssConfig,
    gc: GcSelection,
    events: EventConfig,
    trace: &'a [TraceRecord],
    key: String,
}

impl PolicyVisitor<Measurement> for PerfVisitor<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> Measurement {
        let PerfVisitor { cfg, gc, events, trace, key } = self;
        let cfg = cfg.with_stage_costs(stage_costs_enabled());
        let mut engine = Lss::builder(policy, CountingArray::new(cfg.array_config()))
            .config(cfg)
            .gc_select(gc)
            .events(events)
            .build();
        let start = Instant::now();
        for rec in trace {
            engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
        }
        engine.flush_all();
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let gc_select_ms = engine.gc_select_nanos() as f64 / 1e6;
        let blocks: u64 = trace.iter().map(|r| r.num_blocks as u64).sum();
        Measurement {
            key,
            blocks,
            wall_ms,
            kops_per_sec: blocks as f64 / wall.as_secs_f64() / 1e3,
            gc_select_ms,
            gc_select_share: (gc_select_ms / wall_ms).min(1.0),
            gc_passes: engine.metrics().gc_passes,
            wa: engine.metrics().wa(),
            memory_bytes: engine.memory_bytes() as u64,
            events_emitted: engine.events().emitted(),
            stage_costs: engine.stage_costs().copied(),
        }
    }
}

/// Materialize a workload's trace (writes only, dense arrivals so the SLA
/// path stays realistic without dominating).
pub fn trace_of(w: &Workload) -> Vec<TraceRecord> {
    YcsbConfig {
        num_blocks: w.user_blocks,
        num_updates: w.write_blocks,
        zipf_alpha: w.zipf_alpha,
        read_ratio: 0.0,
        arrival: ArrivalModel::Fixed { gap_us: 2 },
        blocks_per_request: 1,
        distribution: AccessDistribution::Zipfian,
        seed: w.seed,
    }
    .generator()
    .collect()
}

/// Replay one workload under one scheme/GC pair and measure it, with
/// event capture disabled (the regression-gate configuration).
pub fn measure(w: &Workload, scheme: Scheme, gc: GcSelection) -> Measurement {
    measure_with_events(w, scheme, gc, EventConfig::default(), None)
}

/// Replay one workload under one scheme/GC pair with an explicit event
/// configuration, so the observability overhead itself can be measured.
/// `geometry` overrides the array layout as `(devices, parity)`; `None`
/// keeps the historical 4-disk RAID-5 the baselines were captured on.
pub fn measure_with_events(
    w: &Workload,
    scheme: Scheme,
    gc: GcSelection,
    events: EventConfig,
    geometry: Option<(usize, usize)>,
) -> Measurement {
    let mut cfg = ReplayConfig::for_volume(w.user_blocks, gc).lss;
    if let Some((n, m)) = geometry {
        cfg = cfg.with_geometry(n, m);
    }
    let trace = trace_of(w);
    let key = key_of(w, scheme, gc);
    with_policy(scheme, &cfg, PerfVisitor { cfg, gc, events, trace: &trace, key })
}

/// Parallel-scaling measurement of a suite sweep: the same seeded
/// multi-volume sweep timed at `jobs = 1` (the exact sequential path) and
/// at `jobs = N`, with the speedup and a bit-identical check of the two
/// result payloads. This is the regression record for the work-stealing
/// pool itself — the single-point gate entries above it are unaffected.
#[derive(Debug, Clone, Serialize)]
pub struct SweepScaling {
    /// Suite swept ("AliCloud").
    pub suite: String,
    /// Volumes in the sweep.
    pub volumes: usize,
    /// Trace length per volume.
    pub requests_per_volume: u64,
    /// Parallel job count measured (the machine's effective job count,
    /// floored at 2 so the pool path is exercised even on one core).
    pub jobs: usize,
    /// Wall time of the sweep at `jobs = 1` (ms).
    pub wall_ms_jobs1: f64,
    /// Wall time of the same sweep at `jobs = N` (ms).
    pub wall_ms_jobs_n: f64,
    /// `wall_ms_jobs1 / wall_ms_jobs_n`.
    pub speedup: f64,
    /// Whether the two sweeps serialized to byte-identical JSON (the
    /// pool's determinism contract; must always be true).
    pub bit_identical: bool,
}

/// Time the suite sweep at `jobs = 1` vs `jobs = N` and verify the
/// results are bit-identical. `quick` shrinks the sweep to CI-smoke size.
pub fn measure_sweep(quick: bool) -> SweepScaling {
    let (volumes, requests_per_volume) = if quick { (3, 4_000) } else { (12, 30_000) };
    let suite = WorkloadSuite::generate_n(SuiteKind::Ali, 0xADA7, volumes);
    let jobs = rayon::current_num_threads().max(2);
    let timed = |jobs| {
        rayon::with_jobs(jobs, || {
            let t0 = Instant::now();
            let r =
                run_suite(Scheme::Adapt, GcSelection::Greedy, &suite, Some(requests_per_volume));
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            (wall_ms, serde_json::to_string(&r).expect("serialize sweep"))
        })
    };
    let (wall_ms_jobs1, seq) = timed(1);
    let (wall_ms_jobs_n, par) = timed(jobs);
    SweepScaling {
        suite: suite.kind.name().to_string(),
        volumes,
        requests_per_volume,
        jobs,
        wall_ms_jobs1,
        wall_ms_jobs_n,
        speedup: wall_ms_jobs1 / wall_ms_jobs_n,
        bit_identical: seq == par,
    }
}

/// Provenance stamp: what produced this report. Wall-clock numbers are
/// only comparable across runs that agree here — a trajectory diff
/// between an AVX2 machine and a scalar one, or across job counts,
/// measures the hardware, not the PR.
#[derive(Debug, Clone, Serialize)]
pub struct Capability {
    /// `git rev-parse --short=12 HEAD` of the measured tree (`unknown`
    /// outside a work tree).
    pub git_commit: String,
    /// CPU feature summary the SIMD kernels dispatched on, including the
    /// `ADAPT_NO_SIMD` override when forced.
    pub simd: String,
    /// Effective worker-thread count of the work-stealing pool.
    pub jobs: usize,
    /// Array geometry the replays ran on (`k+m` label, e.g. `3+1`). The
    /// embedded baselines were measured on the default `3+1`; trajectory
    /// diffs across geometries measure the code rate, not the PR.
    pub geometry: String,
}

/// Capture the provenance stamp for this process. `geometry` is the
/// `(devices, parity)` override the replays ran with (`None` = default).
pub fn capability(geometry: Option<(usize, usize)>) -> Capability {
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let label = match geometry {
        Some((n, m)) => LssConfig::default().with_geometry(n, m),
        None => LssConfig::default(),
    }
    .array_config()
    .geometry()
    .label();
    Capability {
        git_commit,
        simd: adapt_array::cpu_features::get().summary(),
        jobs: rayon::current_num_threads(),
        geometry: label,
    }
}

/// The JSON payload written to `BENCH_perf.json`.
///
/// Schema history: 1 — baseline/current/speedup plus the sweep and
/// durability sections; 2 — adds the `capability` provenance stamp and
/// the `hotpath` microbench section; 3 — the replays honor the
/// `--geometry`/`ADAPT_BENCH_GEOMETRY` override and `capability` stamps
/// the `k+m` geometry label they ran on; 4 — adds the `serving` section
/// (the shard-scaling saturation sweep of the serving layer, see
/// `crate::saturation` and EXPERIMENTS.md); 5 — adds the
/// `hotpath.pipeline` batched-pipeline point (per-stage cost attribution
/// and the packed-index footprint) and the optional per-measurement
/// `stage_costs` block, emitted only when `ADAPT_STAGE_COSTS` enables the
/// op-clocked profiler.
#[derive(Debug, Serialize)]
pub struct PerfReport {
    /// Schema version of this file.
    pub schema: u32,
    /// Provenance of this run (git commit, SIMD features, job count).
    pub capability: Capability,
    /// What the baseline section is.
    pub baseline_note: String,
    /// Pre-optimization measurements `(key, wall_ms, kops_per_sec,
    /// gc_select_share)`; empty until a baseline is recorded.
    pub baseline: Vec<BaselineRow>,
    /// Measurements from this run.
    pub current: Vec<Measurement>,
    /// Per-key wall-time speedup vs the baseline (baseline / current).
    pub speedup: Vec<(String, f64)>,
    /// Whether the structured event stream was captured during this run.
    /// The regression gate compares disabled-path runs only; enabled-path
    /// reports exist to bound the observability overhead.
    pub events_enabled: bool,
    /// Parallel-scaling record for the sweep engine (`jobs = 1` vs
    /// `jobs = N` over a medium suite sweep). Populated by the `perf` bin
    /// on gate runs; `None` for events-enabled overhead runs.
    pub sweep: Option<SweepScaling>,
    /// Durable-backend cost record: fsync-policy throughput ladder on the
    /// file-backed sink + WAL vs the in-memory reference, plus cold
    /// recovery timing. Populated by the `perf` bin on gate runs; `None`
    /// for events-enabled overhead runs.
    pub durability: Option<crate::durability::DurabilityBench>,
    /// Hot-path microbenches: SIMD parity, zero-copy traffic, batched
    /// remaps, staged-GC tails, jobs ladder. Populated by the `perf` bin
    /// on gate runs; `None` for events-enabled overhead runs.
    pub hotpath: Option<crate::hotpath::HotpathBench>,
    /// Serving-layer saturation sweep: wall-clock and critical-path
    /// throughput at shards {1, 2, 4} × client threads {1, 8}, with the
    /// cross-client determinism check. Populated by the `perf` bin on
    /// gate runs; `None` for events-enabled overhead runs.
    pub serving: Option<crate::saturation::SaturationBench>,
}

/// Run the harness over `workloads` with events disabled (the regression
/// gate) and assemble the report against the embedded `baseline` rows.
pub fn run(workloads: &[Workload], baseline: &[BaselineRow]) -> PerfReport {
    run_with_events(workloads, baseline, EventConfig::default(), None)
}

/// Run the harness over `workloads` with an explicit event configuration
/// and an optional `(devices, parity)` array-geometry override.
pub fn run_with_events(
    workloads: &[Workload],
    baseline: &[BaselineRow],
    events: EventConfig,
    geometry: Option<(usize, usize)>,
) -> PerfReport {
    let mut current = Vec::new();
    for w in workloads {
        for &(scheme, gc) in &SCHEMES {
            let m = measure_with_events(w, scheme, gc, events, geometry);
            println!(
                "perf {key:<28} {wall:>9.1} ms  {kops:>8.1} kops/s  gc-select {share:>5.1}%  wa {wa:.2}",
                key = m.key,
                wall = m.wall_ms,
                kops = m.kops_per_sec,
                share = m.gc_select_share * 100.0,
                wa = m.wa,
            );
            current.push(m);
        }
    }
    let speedup = current
        .iter()
        .filter_map(|m| {
            baseline
                .iter()
                .find(|(k, ..)| *k == m.key)
                .map(|&(_, wall, ..)| (m.key.clone(), wall / m.wall_ms))
        })
        .collect();
    PerfReport {
        schema: 5,
        capability: capability(geometry),
        baseline_note: "pre-optimization engine (before incremental GC buckets, fxhash, \
                        buffer pooling), measured on the same machine and workloads"
            .to_string(),
        baseline: baseline.to_vec(),
        current,
        speedup,
        events_enabled: events.enabled,
        sweep: None,
        durability: None,
        hotpath: None,
        serving: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_stamps_the_geometry_label() {
        assert_eq!(capability(None).geometry, "3+1");
        assert_eq!(capability(Some((6, 2))).geometry, "4+2");
    }

    #[test]
    fn quick_measurement_is_sane() {
        let m = measure(&QUICK, Scheme::SepGc, GcSelection::Greedy);
        // The generator prepends a full-volume fill before the updates.
        assert_eq!(m.blocks, QUICK.user_blocks + QUICK.write_blocks);
        assert!(m.wall_ms > 0.0);
        assert!(m.kops_per_sec > 0.0);
        assert!(m.wa >= 1.0);
        assert!(m.gc_select_share >= 0.0 && m.gc_select_share <= 1.0);
        assert!(m.memory_bytes > 0);
    }

    #[test]
    fn event_capture_leaves_workload_metrics_untouched() {
        let off = measure(&QUICK, Scheme::SepGc, GcSelection::Greedy);
        let on = measure_with_events(
            &QUICK,
            Scheme::SepGc,
            GcSelection::Greedy,
            EventConfig::enabled(),
            None,
        );
        assert_eq!(off.events_emitted, 0);
        assert!(on.events_emitted > 0);
        // Wall time may shift; the workload-derived numbers must not.
        assert_eq!(off.wa, on.wa);
        assert_eq!(off.gc_passes, on.gc_passes);
        assert_eq!(off.blocks, on.blocks);
    }

    #[test]
    fn stage_costs_block_is_absent_unless_requested() {
        // The gate runs with ADAPT_STAGE_COSTS unset, so the report rows
        // must not carry even a `stage_costs: null` — schema-5 readers
        // treat presence of the key as "the profiler ran".
        let m = measure(&QUICK, Scheme::SepGc, GcSelection::Greedy);
        assert!(m.stage_costs.is_none());
        let json = serde_json::to_string(&m).expect("serialize measurement");
        assert!(!json.contains("stage_costs"), "None must be omitted, not nulled: {json}");
    }

    #[test]
    fn keys_are_unique_per_scheme() {
        let keys: Vec<String> = SCHEMES.iter().map(|&(s, g)| key_of(&QUICK, s, g)).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
    }

    #[test]
    fn sweep_scaling_is_bit_identical_and_positive() {
        let s = measure_sweep(true);
        assert!(s.bit_identical, "jobs=1 and jobs={} sweeps must match exactly", s.jobs);
        assert!(s.wall_ms_jobs1 > 0.0 && s.wall_ms_jobs_n > 0.0);
        assert!(s.jobs >= 2);
        assert!(s.speedup > 0.0);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = trace_of(&QUICK);
        let b = trace_of(&QUICK);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }
}
