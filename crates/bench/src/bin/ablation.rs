//! Regenerates the paper's ablation (see DESIGN.md's experiment index).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::ablation::run(&cli);
}
