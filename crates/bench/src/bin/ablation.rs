//! Regenerates the paper's ablation (see DESIGN.md's experiment index).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::ablation::run);
}
