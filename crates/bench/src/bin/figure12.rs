//! Regenerates the paper's Figure 12 (see DESIGN.md's experiment index).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::fig12::run(&cli);
}
