//! Regenerates the paper's Figure 12 (see DESIGN.md's experiment index).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::fig12::run);
}
