//! Consolidation experiment (extension): k sparse volumes share one
//! log-structured store, as production arrays do. Reports padding and WA
//! for solo-per-volume vs consolidated deployment under ADAPT and SepBIT.

use adapt_bench::eval_suite;
use adapt_bench::harness::{figure_main, replay_observed, write_report};
use adapt_lss::GcSelection;
use adapt_sim::consolidate::consolidate;
use adapt_sim::report::render_table;
use adapt_sim::runner::requests_for;
use adapt_sim::{ReplayConfig, Scheme};
use adapt_trace::SuiteKind;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    /// `(scheme, deployment, WA, padded-chunk share)`.
    cells: Vec<(String, String, f64, f64)>,
}

fn main() {
    figure_main(|cli| {
        let k = (cli.volumes() / 2).clamp(3, 10);
        let suite = eval_suite(SuiteKind::Ali, k);
        println!("Consolidation — {k} Ali volumes, solo vs shared log");
        let per_vol: u64 = suite.volumes.iter().map(requests_for).min().unwrap_or(10_000);
        let mut cells = Vec::new();
        let mut rows = Vec::new();
        for scheme in [Scheme::SepBit, Scheme::Adapt] {
            // Solo: one engine per volume.
            let mut host = 0u64;
            let mut phys = 0u64;
            let mut padded = 0u64;
            let mut chunks = 0u64;
            for v in &suite.volumes {
                let cfg = ReplayConfig::for_volume(v.unique_blocks, GcSelection::Greedy);
                let run = format!("consolidation-solo-{}-v{}", scheme.name(), v.id);
                let r = replay_observed(cli, &run, scheme, cfg, v.id, v.trace(per_vol));
                host += r.metrics.host_write_bytes;
                phys += r.metrics.physical_bytes();
                padded += r.metrics.padded_chunks;
                chunks += r.metrics.chunks_flushed;
            }
            let solo_wa = phys as f64 / host.max(1) as f64;
            let solo_pad = padded as f64 / chunks.max(1) as f64;

            // Consolidated: one engine over the merged stream.
            let merged = consolidate(&suite.volumes, per_vol);
            let cfg = ReplayConfig::for_volume(merged.total_blocks, GcSelection::Greedy);
            let run = format!("consolidation-shared-{}", scheme.name());
            let r = replay_observed(cli, &run, scheme, cfg, 0, merged.records.into_iter());
            let cons_wa = r.wa();
            let cons_pad = r.metrics.padded_chunks as f64 / r.metrics.chunks_flushed.max(1) as f64;

            for (dep, wa, pad) in [("solo", solo_wa, solo_pad), ("consolidated", cons_wa, cons_pad)]
            {
                cells.push((scheme.name().to_string(), dep.to_string(), wa, pad));
                rows.push(vec![
                    scheme.name().to_string(),
                    dep.to_string(),
                    format!("{wa:.3}"),
                    format!("{:.1}%", pad * 100.0),
                ]);
            }
        }
        println!("{}", render_table(&["scheme", "deployment", "WA", "padded chunks"], &rows));
        write_report(cli, "consolidation", &Report { cells });
    });
}
