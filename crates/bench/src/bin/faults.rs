//! Runs the fault-injection scenario (see DESIGN.md's fault model section).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::faults::run);
}
