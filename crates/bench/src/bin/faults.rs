//! Runs the fault-injection scenario (see DESIGN.md's fault model section).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::faults::run(&cli);
}
