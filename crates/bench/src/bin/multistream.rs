//! Regenerates the multi-stream / in-device WA experiment (§3.1 claim).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::multistream::run);
}
