//! Regenerates the multi-stream / in-device WA experiment (§3.1 claim).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::multistream::run(&cli);
}
