//! Runs the scrub/silent-corruption scenario (see DESIGN.md's integrity
//! section). Asserts 100% detection and single-fault healing.

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::scrub::run);
}
