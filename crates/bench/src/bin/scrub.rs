//! Runs the scrub/silent-corruption scenario (see DESIGN.md's integrity
//! section). Asserts 100% detection and single-fault healing.

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::scrub::run(&cli);
}
