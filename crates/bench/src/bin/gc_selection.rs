//! Regenerates the GC victim-selection sweep (extension experiment).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::gc_selection::run);
}
