//! Regenerates the GC victim-selection sweep (extension experiment).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::gc_selection::run(&cli);
}
