//! Regenerates the durability-latency (SLA compliance) experiment.

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::latency::run(&cli);
}
