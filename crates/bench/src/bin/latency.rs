//! Regenerates the durability-latency (SLA compliance) experiment.

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::latency::run);
}
