//! `perf` — hot-path regression harness.
//!
//! Replays fixed seeded workloads (small/medium) through ADAPT + two
//! baselines, prints ops/s and GC-selection time share, and writes
//! `BENCH_perf.json` at the repo root (or `--out <dir>`). `--quick` (or
//! `ADAPT_BENCH_QUICK=1`) runs a tiny smoke replay for CI.
//!
//! `--events` (or `ADAPT_BENCH_EVENTS=1`) re-runs the same workloads with
//! the structured event stream enabled and writes the result as
//! `BENCH_perf_events.json` instead, so the observability overhead has
//! its own trajectory file and the disabled-path regression gate stays
//! untouched.
//!
//! Gate runs additionally record a `sweep` section: a seeded multi-volume
//! suite sweep timed at `jobs = 1` vs `jobs = N` on the work-stealing
//! pool, asserting the two results are bit-identical. They also record a
//! `durability` section: the fsync-policy throughput ladder on the
//! file-backed sink + WAL vs the in-memory reference, plus cold recovery
//! timing. A `hotpath` section: SIMD-vs-scalar parity kernels,
//! zero-copy traffic, batched remaps, staged-GC tail latencies, the
//! batched op pipeline with per-stage cost attribution, and the jobs
//! ladder (see `adapt_bench::hotpath`). And a `serving` section:
//! the shard-scaling saturation sweep of the serving layer, gated on
//! critical-path throughput and cross-client determinism (see
//! `adapt_bench::saturation`).

use adapt_bench::perf::{self, QUICK, WORKLOADS};

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        let workloads: &[perf::Workload] = if cli.quick { &[QUICK] } else { &WORKLOADS };
        let mut report = perf::run_with_events(
            workloads,
            adapt_bench::perf_baseline::BASELINE,
            cli.event_config(),
            cli.geometry,
        );
        for (key, s) in &report.speedup {
            println!("perf {key:<28} speedup vs pre-change baseline: {s:.2}x");
        }
        if !report.events_enabled {
            // Parallel-scaling record: the same seeded suite sweep at
            // jobs=1 vs jobs=N, with a bit-identical result check.
            let sweep = perf::measure_sweep(cli.quick);
            println!(
                "perf sweep {suite}x{vols:<2} jobs=1 {seq:>9.1} ms  jobs={jobs} {par:>9.1} ms  \
                 speedup {speedup:.2}x  bit-identical {ident}",
                suite = sweep.suite,
                vols = sweep.volumes,
                seq = sweep.wall_ms_jobs1,
                jobs = sweep.jobs,
                par = sweep.wall_ms_jobs_n,
                speedup = sweep.speedup,
                ident = sweep.bit_identical,
            );
            assert!(sweep.bit_identical, "parallel sweep must be schedule-independent");
            report.sweep = Some(sweep);

            // Durable-backend cost record: fsync ladder on the file sink +
            // WAL vs the in-memory reference, plus cold recovery timing.
            let dur = adapt_bench::durability::run(cli.quick);
            for p in &dur.policies {
                println!(
                    "perf durability {fsync:<16} {wall:>9.1} ms  {kops:>8.1} kops/s  \
                     {ovh:.2}x memory  wal {ratio:.2} B/B  syncs {syncs}",
                    fsync = p.fsync,
                    wall = p.wall_ms,
                    kops = p.kops_per_sec,
                    ovh = p.overhead_vs_memory,
                    ratio = p.wal_bytes_per_host_byte,
                    syncs = p.wal_syncs,
                );
            }
            println!(
                "perf durability recovery {wall:>9.1} ms  checkpoint {ckpt}  \
                 records {recs}  flushes {flushes}",
                wall = dur.recovery.wall_ms,
                ckpt = dur.recovery.checkpoint_loaded,
                recs = dur.recovery.records_applied,
                flushes = dur.recovery.flushes_replayed,
            );
            report.durability = Some(dur);

            // Hot-path microbenches: the primitives the replays above are
            // built from, each attributed to its own layer.
            let hp = adapt_bench::hotpath::run(cli.quick);
            println!(
                "perf hotpath xor_into(64KiB) [{kernel}] {simd:>8.2} GiB/s  \
                 byte-serial {byte:>6.2} GiB/s ({vb:.1}x)  word-scalar {wide:>8.2} GiB/s ({vw:.2}x)",
                kernel = hp.xor_64k.kernel,
                simd = hp.xor_64k.simd_gib_s,
                byte = hp.xor_64k.scalar_byte_gib_s,
                vb = hp.xor_64k.speedup_vs_byte,
                wide = hp.xor_64k.scalar_wide_gib_s,
                vw = hp.xor_64k.speedup_vs_wide,
            );
            for k in [&hp.parity_into, &hp.index_batch] {
                println!(
                    "perf hotpath {name:<44} {fast:>8.2} vs {slow:>8.2} {unit}  \
                     speedup {speedup:.2}x",
                    name = k.name,
                    fast = k.fast,
                    slow = k.slow,
                    unit = k.unit,
                    speedup = k.speedup,
                );
            }
            println!(
                "perf hotpath copy [{w}] {copy} B copied vs {legacy} B legacy  \
                 ({red:.1}% less, {per:.3} B/host-B)",
                w = hp.copy.workload,
                copy = hp.copy.copy_bytes,
                legacy = hp.copy.legacy_equiv_copy_bytes,
                red = hp.copy.reduction_pct,
                per = hp.copy.copy_per_host_byte,
            );
            println!(
                "perf hotpath gc-overlap [{w}] sync p99.9 {sp:.1} µs max {sm:.1} µs  \
                 overlap p99.9 {op:.1} µs max {om:.1} µs  jobs {jobs}  \
                 jobs=1 identical {ident}",
                w = hp.gc_overlap.workload,
                sp = hp.gc_overlap.sync_p999_us,
                sm = hp.gc_overlap.sync_max_us,
                op = hp.gc_overlap.overlap_p999_us,
                om = hp.gc_overlap.overlap_max_us,
                jobs = hp.gc_overlap.jobs,
                ident = hp.gc_overlap.jobs1_bit_identical,
            );
            assert!(
                hp.gc_overlap.jobs1_bit_identical,
                "overlapped GC at jobs=1 must collapse to the synchronous path"
            );
            println!(
                "perf hotpath pipeline [{w}] per-op {po:>8.1} ms  batched({b}) {ba:>8.1} ms  \
                 ({s:.2}x)  batched identical {bi}  profiled identical {pi}",
                w = hp.pipeline.workload,
                po = hp.pipeline.per_op_wall_ms,
                b = hp.pipeline.batch,
                ba = hp.pipeline.batched_wall_ms,
                s = hp.pipeline.speedup,
                bi = hp.pipeline.batched_bit_identical,
                pi = hp.pipeline.profiled_bit_identical,
            );
            for (label, st) in [
                ("per-op", &hp.pipeline.per_op_stage_ns),
                ("batched", &hp.pipeline.batched_stage_ns),
            ] {
                println!(
                    "perf hotpath pipeline stages {label:<8} total {t:>7.1} ns/op  \
                     clock {c:.1}  telemetry {te:.1}  gc {g:.1}  index {i:.1}  \
                     placement {pl:.1}  policy {p:.1}  parity {pa:.1}  wal {wl:.1}",
                    t = st.total,
                    c = st.clock,
                    te = st.telemetry,
                    g = st.gc,
                    i = st.index,
                    pl = st.placement,
                    p = st.policy,
                    pa = st.parity,
                    wl = st.wal,
                );
            }
            println!(
                "perf hotpath pipeline index {packed:.2} B/block packed vs \
                 {legacy:.0} B legacy  ({red:.1}% less)",
                packed = hp.pipeline.index.packed_bytes_per_block,
                legacy = hp.pipeline.index.legacy_bytes_per_block,
                red = hp.pipeline.index.reduction_pct,
            );
            assert!(
                hp.pipeline.batched_bit_identical && hp.pipeline.profiled_bit_identical,
                "batched/profiled replays must reproduce the per-op metrics exactly"
            );
            assert!(
                hp.pipeline.index.reduction_pct >= 40.0,
                "packed index must drop >=40% bytes/block (got {:.1}%)",
                hp.pipeline.index.reduction_pct
            );
            for rung in &hp.jobs_ladder {
                println!(
                    "perf hotpath jobs={j:<2} {wall:>9.1} ms  speedup {s:.2}x",
                    j = rung.jobs,
                    wall = rung.wall_ms,
                    s = rung.speedup_vs_1,
                );
            }
            report.hotpath = Some(hp);

            // Serving-layer saturation sweep: shard scaling on the
            // sharded async submission path, with the cross-client
            // determinism check (see `adapt_bench::saturation`).
            let serving = adapt_bench::saturation::run(cli.quick);
            for p in &serving.points {
                println!(
                    "perf serving shards={s} clients={c}  {wk:>8.1} kops/s wall  \
                     {ck:>8.1} kops/s critical-path  retries {retries}",
                    s = p.shards,
                    c = p.clients,
                    wk = p.wall_kops,
                    ck = p.critical_path_kops,
                    retries = p.busy_retries,
                );
            }
            println!(
                "perf serving scaling 1->{top} shards: critical-path {cp:.2}x  wall {wall:.2}x",
                top = serving.shard_counts.last().unwrap(),
                cp = serving.scaling_critical_path,
                wall = serving.scaling_wall,
            );
            assert!(
                serving.bit_identical_across_clients,
                "serve replays must be bit-identical across client-thread counts"
            );
            if !cli.quick {
                assert!(
                    serving.scaling_critical_path >= 3.0,
                    "critical-path throughput must scale >= 3x from 1 to 4 shards \
                     (got {:.2}x)",
                    serving.scaling_critical_path
                );
            }
            report.serving = Some(serving);
        }
        // The trajectory file lives at the repo root by default (BENCH_* is
        // the per-PR perf record); --out redirects for scratch runs.
        let dir = if cli.out_dir == "results" { ".".to_string() } else { cli.out_dir.clone() };
        let name = if report.events_enabled { "BENCH_perf_events" } else { "BENCH_perf" };
        let path = adapt_sim::report::write_json(&dir, name, &report)
            .unwrap_or_else(|e| panic!("write {name}.json: {e}"));
        println!("wrote {path}");
    });
}
