//! `perf` — hot-path regression harness.
//!
//! Replays fixed seeded workloads (small/medium) through ADAPT + two
//! baselines, prints ops/s and GC-selection time share, and writes
//! `BENCH_perf.json` at the repo root (or `--out <dir>`). `--quick` (or
//! `ADAPT_BENCH_QUICK=1`) runs a tiny smoke replay for CI.

use adapt_bench::perf::{self, QUICK, WORKLOADS};

fn main() {
    let cli = adapt_bench::Cli::parse();
    let workloads: &[perf::Workload] = if cli.quick { &[QUICK] } else { &WORKLOADS };
    let report = perf::run(workloads, adapt_bench::perf_baseline::BASELINE);
    for (key, s) in &report.speedup {
        println!("perf {key:<28} speedup vs pre-change baseline: {s:.2}x");
    }
    // The trajectory file lives at the repo root by default (BENCH_* is
    // the per-PR perf record); --out redirects for scratch runs.
    let dir = if cli.out_dir == "results" { ".".to_string() } else { cli.out_dir };
    let path =
        adapt_sim::report::write_json(&dir, "BENCH_perf", &report).expect("write BENCH_perf.json");
    println!("wrote {path}");
}
