//! `perf` — hot-path regression harness.
//!
//! Replays fixed seeded workloads (small/medium) through ADAPT + two
//! baselines, prints ops/s and GC-selection time share, and writes
//! `BENCH_perf.json` at the repo root (or `--out <dir>`). `--quick` (or
//! `ADAPT_BENCH_QUICK=1`) runs a tiny smoke replay for CI.
//!
//! `--events` (or `ADAPT_BENCH_EVENTS=1`) re-runs the same workloads with
//! the structured event stream enabled and writes the result as
//! `BENCH_perf_events.json` instead, so the observability overhead has
//! its own trajectory file and the disabled-path regression gate stays
//! untouched.

use adapt_bench::perf::{self, QUICK, WORKLOADS};

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        let workloads: &[perf::Workload] = if cli.quick { &[QUICK] } else { &WORKLOADS };
        let report = perf::run_with_events(
            workloads,
            adapt_bench::perf_baseline::BASELINE,
            cli.event_config(),
        );
        for (key, s) in &report.speedup {
            println!("perf {key:<28} speedup vs pre-change baseline: {s:.2}x");
        }
        // The trajectory file lives at the repo root by default (BENCH_* is
        // the per-PR perf record); --out redirects for scratch runs.
        let dir = if cli.out_dir == "results" { ".".to_string() } else { cli.out_dir.clone() };
        let name = if report.events_enabled { "BENCH_perf_events" } else { "BENCH_perf" };
        let path = adapt_sim::report::write_json(&dir, name, &report)
            .unwrap_or_else(|e| panic!("write {name}.json: {e}"));
        println!("wrote {path}");
    });
}
