//! `perf` — hot-path regression harness.
//!
//! Replays fixed seeded workloads (small/medium) through ADAPT + two
//! baselines, prints ops/s and GC-selection time share, and writes
//! `BENCH_perf.json` at the repo root (or `--out <dir>`). `--quick` (or
//! `ADAPT_BENCH_QUICK=1`) runs a tiny smoke replay for CI.
//!
//! `--events` (or `ADAPT_BENCH_EVENTS=1`) re-runs the same workloads with
//! the structured event stream enabled and writes the result as
//! `BENCH_perf_events.json` instead, so the observability overhead has
//! its own trajectory file and the disabled-path regression gate stays
//! untouched.
//!
//! Gate runs additionally record a `sweep` section: a seeded multi-volume
//! suite sweep timed at `jobs = 1` vs `jobs = N` on the work-stealing
//! pool, asserting the two results are bit-identical. They also record a
//! `durability` section: the fsync-policy throughput ladder on the
//! file-backed sink + WAL vs the in-memory reference, plus cold recovery
//! timing.

use adapt_bench::perf::{self, QUICK, WORKLOADS};

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        let workloads: &[perf::Workload] = if cli.quick { &[QUICK] } else { &WORKLOADS };
        let mut report = perf::run_with_events(
            workloads,
            adapt_bench::perf_baseline::BASELINE,
            cli.event_config(),
        );
        for (key, s) in &report.speedup {
            println!("perf {key:<28} speedup vs pre-change baseline: {s:.2}x");
        }
        if !report.events_enabled {
            // Parallel-scaling record: the same seeded suite sweep at
            // jobs=1 vs jobs=N, with a bit-identical result check.
            let sweep = perf::measure_sweep(cli.quick);
            println!(
                "perf sweep {suite}x{vols:<2} jobs=1 {seq:>9.1} ms  jobs={jobs} {par:>9.1} ms  \
                 speedup {speedup:.2}x  bit-identical {ident}",
                suite = sweep.suite,
                vols = sweep.volumes,
                seq = sweep.wall_ms_jobs1,
                jobs = sweep.jobs,
                par = sweep.wall_ms_jobs_n,
                speedup = sweep.speedup,
                ident = sweep.bit_identical,
            );
            assert!(sweep.bit_identical, "parallel sweep must be schedule-independent");
            report.sweep = Some(sweep);

            // Durable-backend cost record: fsync ladder on the file sink +
            // WAL vs the in-memory reference, plus cold recovery timing.
            let dur = adapt_bench::durability::run(cli.quick);
            for p in &dur.policies {
                println!(
                    "perf durability {fsync:<16} {wall:>9.1} ms  {kops:>8.1} kops/s  \
                     {ovh:.2}x memory  wal {ratio:.2} B/B  syncs {syncs}",
                    fsync = p.fsync,
                    wall = p.wall_ms,
                    kops = p.kops_per_sec,
                    ovh = p.overhead_vs_memory,
                    ratio = p.wal_bytes_per_host_byte,
                    syncs = p.wal_syncs,
                );
            }
            println!(
                "perf durability recovery {wall:>9.1} ms  checkpoint {ckpt}  \
                 records {recs}  flushes {flushes}",
                wall = dur.recovery.wall_ms,
                ckpt = dur.recovery.checkpoint_loaded,
                recs = dur.recovery.records_applied,
                flushes = dur.recovery.flushes_replayed,
            );
            report.durability = Some(dur);
        }
        // The trajectory file lives at the repo root by default (BENCH_* is
        // the per-PR perf record); --out redirects for scratch runs.
        let dir = if cli.out_dir == "results" { ".".to_string() } else { cli.out_dir.clone() };
        let name = if report.events_enabled { "BENCH_perf_events" } else { "BENCH_perf" };
        let path = adapt_sim::report::write_json(&dir, name, &report)
            .unwrap_or_else(|e| panic!("write {name}.json: {e}"));
        println!("wrote {path}");
    });
}
