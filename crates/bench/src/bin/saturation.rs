//! `saturation` — shard-scaling sweep of the sharded serving layer.
//!
//! Sweeps the seeded medium multi-volume replay through servers at
//! shards {1, 2, 4} × client threads {1, 8} (`--quick`: {1, 2} × {1, 4}
//! on the smoke replay), printing wall-clock and critical-path
//! throughput per point and writing `saturation.json` under `--out`.
//!
//! Gates (a panic or nonzero exit is the verdict, so CI can run this bin
//! directly):
//!
//! * every submitted op completes successfully — no lost completions;
//! * per-shard queue accounting balances and no shard fail-stops;
//! * for each shard count, replays are byte-identical across
//!   client-thread counts (the serving determinism contract);
//! * on the gate configuration (no `--quick`), critical-path throughput
//!   scales ≥ 3x from 1 shard to 4 at 8 client threads.

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        let b = adapt_bench::saturation::run(cli.quick);
        for p in &b.points {
            println!(
                "saturation shards={s} clients={c}  wall {wall:>9.1} ms  \
                 {wk:>8.1} kops/s wall  {ck:>8.1} kops/s critical-path  \
                 busy-max {busy:>9.1} ms  retries {retries}",
                s = p.shards,
                c = p.clients,
                wall = p.wall_ms,
                wk = p.wall_kops,
                ck = p.critical_path_kops,
                busy = p.max_shard_busy_ms,
                retries = p.busy_retries,
            );
        }
        println!(
            "saturation [{w}] scaling 1->{top} shards @ {c} clients: \
             critical-path {cp:.2}x  wall {wall:.2}x  bit-identical {ident}",
            w = b.workload,
            top = b.shard_counts.last().unwrap(),
            c = b.client_counts.last().unwrap(),
            cp = b.scaling_critical_path,
            wall = b.scaling_wall,
            ident = b.bit_identical_across_clients,
        );
        adapt_bench::harness::gate(
            b.bit_identical_across_clients,
            "serve replays bit-identical across client-thread counts",
        );
        if !cli.quick {
            adapt_bench::harness::gate(
                b.scaling_critical_path >= 3.0,
                "critical-path throughput scales >= 3x from 1 to 4 shards",
            );
        }
        adapt_bench::harness::write_report(cli, "saturation", &b);
    });
}
