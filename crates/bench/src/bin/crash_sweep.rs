//! `crash_sweep` — seeded power-loss acceptance sweep.
//!
//! Runs the crash simulator end to end: a golden metered run records the
//! scenario's full byte stream, then every seeded crash offset is
//! replayed under a hard power budget, recovered, and verified against
//! the golden run's acknowledged writes. The report lands in
//! `results/crash_sweep.json` (or `--out <dir>`), and the bin exits
//! nonzero unless the sweep is clean — making it usable as a CI gate.
//!
//! `--quick` (or `ADAPT_BENCH_QUICK=1`) runs the ~30-point smoke sweep;
//! the default is the ≥300-point acceptance configuration, the same shape
//! `tests/durability_integration.rs` asserts.

use adapt_sim::crash::CrashScenario;
use adapt_sim::run_crash_sweep;

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        let mut scn = if cli.quick {
            CrashScenario::quick(0xADAF7)
        } else {
            CrashScenario::standard(0xADAF7)
        };
        scn.lss = cli.apply_geometry(scn.lss);
        let dir = std::env::temp_dir().join(format!("adapt_crash_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_crash_sweep(&scn, &dir);
        let _ = std::fs::remove_dir_all(&dir);

        println!(
            "crash_sweep {scheme}/{fsync} [{geometry}] seed {seed:#x}: {clean}/{points} clean, \
             {acked} golden acks, {bytes} golden bytes",
            scheme = report.scheme,
            fsync = report.fsync,
            geometry = report.geometry,
            seed = report.seed,
            clean = report.clean,
            points = report.points,
            acked = report.golden_acked,
            bytes = report.golden_bytes,
        );
        println!(
            "crash_sweep losses {lost}  corrupt {corrupt}  torn-tail {torn}  checkpointed {ckpt}",
            lost = report.lost_acks_total,
            corrupt = report.corrupt_points,
            torn = report.with_torn_tail,
            ckpt = report.with_checkpoint,
        );
        for (tag, n) in &report.trip_tags {
            println!("crash_sweep   cut inside {tag:<12} x{n}");
        }
        for f in report.failures.iter().take(5) {
            println!("crash_sweep FAILURE {f:?}");
        }
        adapt_bench::harness::write_report(cli, "crash_sweep", &report);
        assert!(
            report.clean_sweep(),
            "{} of {} crash points violated the durability contract",
            report.points - report.clean,
            report.points
        );
        assert_eq!(report.lost_acks_total, 0, "acknowledged writes were lost");
        assert_eq!(report.corrupt_points, 0, "recovered state failed self-checks");
    });
}
