//! Regenerates every figure in one invocation, reusing a single WA sweep
//! for Figs. 8–10.

use adapt_bench::figures;
use adapt_bench::sweep::FullSweep;

fn main() {
    adapt_bench::harness::figure_main(|cli| {
        figures::fig2::run(cli);
        figures::fig3::run(cli);
        let sweep = FullSweep::run(cli);
        figures::fig8::from_sweep(cli, &sweep);
        figures::fig9::from_sweep(cli, &sweep);
        figures::fig10::from_sweep(cli, &sweep);
        figures::fig11::run(cli);
        figures::fig12::run(cli);
        figures::ablation::run(cli);
        figures::gc_selection::run(cli);
        figures::multistream::run(cli);
        figures::latency::run(cli);
    });
}
