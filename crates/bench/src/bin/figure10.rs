//! Regenerates the paper's Figure 10 (see DESIGN.md's experiment index).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::fig10::run);
}
