//! Regenerates the paper's Figure 10 (see DESIGN.md's experiment index).

fn main() {
    let cli = adapt_bench::Cli::parse();
    adapt_bench::figures::fig10::run(&cli);
}
