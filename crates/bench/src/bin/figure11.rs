//! Regenerates the paper's Figure 11 (see DESIGN.md's experiment index).

fn main() {
    adapt_bench::harness::figure_main(adapt_bench::figures::fig11::run);
}
