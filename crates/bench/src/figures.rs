//! One module per figure of the paper's evaluation. Every `run` prints the
//! figure's series as text tables and writes a JSON report.

use crate::harness::write_report;
use crate::sweep::FullSweep;
use crate::{eval_suite, Cli, FIGURE_SEED};
use adapt_lss::GcSelection;
use adapt_sim::compare::{
    compare_volumes, overall_padding_reduction_pct, overall_wa_reduction_pct, reduction_correlation,
};
use adapt_sim::report::{cdf_points, render_table, wa_table};
use adapt_sim::runner::run_suite;
use adapt_sim::{ReplayConfig, Scheme};
use adapt_trace::stats::{Ecdf, TraceSummary};
use adapt_trace::ycsb::{AccessDistribution, TrafficIntensity, YcsbConfig};
use adapt_trace::{SuiteKind, WorkloadSuite};
use serde::Serialize;

/// Fig. 2 — workload characterization: per-volume request-rate CDF (a) and
/// write-size distribution (b) over the *full population* of each suite.
pub mod fig2 {
    use super::*;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// Per-suite rate CDF points `(req/s, F)`.
        pub rate_cdfs: Vec<(String, Vec<(f64, f64)>)>,
        /// Per-suite `(frac ≤ 8 KiB, frac > 32 KiB)` write-size marginals.
        pub size_marginals: Vec<(String, f64, f64)>,
        /// Per-suite share of volumes below 10 req/s and above 100 req/s.
        pub rate_marginals: Vec<(String, f64, f64)>,
    }

    /// Regenerate Fig. 2.
    pub fn run(cli: &Cli) -> Report {
        // The population view needs many volumes for stable quantiles.
        let population = (400.0 * cli.scale).max(100.0) as usize;
        let mut rate_cdfs = Vec::new();
        let mut size_marginals = Vec::new();
        let mut rate_marginals = Vec::new();
        let mut rows = Vec::new();
        for kind in SuiteKind::ALL {
            let suite = WorkloadSuite::generate_n(kind, FIGURE_SEED, population);
            let rates: Vec<f64> = suite.volumes.iter().map(|v| v.mean_rate_per_sec()).collect();
            let ecdf = Ecdf::new(rates.clone());
            let below10 = ecdf.cdf(10.0);
            let above100 = 1.0 - ecdf.cdf(100.0);
            // Sample one volume's trace for the write-size marginals (the
            // size mixture is shared per suite).
            let summary = TraceSummary::from_trace(suite.volumes[0].trace(20_000));
            rate_cdfs.push((kind.name().to_string(), cdf_points(&rates, 40)));
            size_marginals.push((
                kind.name().to_string(),
                summary.frac_writes_le_8k(),
                summary.frac_writes_gt_32k(),
            ));
            rate_marginals.push((kind.name().to_string(), below10, above100));
            rows.push(vec![
                kind.name().to_string(),
                format!("{below10:.1}", below10 = below10 * 100.0),
                format!("{:.1}", above100 * 100.0),
                format!("{:.1}", summary.frac_writes_le_8k() * 100.0),
                format!("{:.1}", summary.frac_writes_gt_32k() * 100.0),
            ]);
        }
        println!("Figure 2 — workload characterization ({population} volumes/suite)");
        println!(
            "{}",
            render_table(
                &["suite", "%vol<10req/s", "%vol>100req/s", "%wr≤8KiB", "%wr>32KiB"],
                &rows
            )
        );
        let report = Report { rate_cdfs, size_marginals, rate_marginals };
        write_report(cli, "figure2", &report);
        report
    }
}

/// Fig. 3 — per-group write-volume split and group sizes for the five
/// baseline strategies replaying the Ali suite.
pub mod fig3 {
    use super::*;

    /// JSON payload: per scheme, per group: (user, gc, shadow, pad) blocks
    /// and segment counts.
    #[derive(Serialize)]
    pub struct Report {
        /// Rows of `(scheme, group, user, gc, shadow, pad, segments)`.
        pub groups: Vec<(String, u8, u64, u64, u64, u64, u32)>,
    }

    /// Regenerate Fig. 3.
    pub fn run(cli: &Cli) -> Report {
        let suite = eval_suite(SuiteKind::Ali, cli.volumes());
        let mut rows = Vec::new();
        let mut table = Vec::new();
        println!("Figure 3 — group traffic split, Ali suite, Greedy GC");
        for scheme in Scheme::PAPER {
            let r = run_suite(scheme, GcSelection::Greedy, &suite, None);
            // Sum group traffic across volumes (groups align by id).
            let n_groups = scheme.group_count();
            let mut agg = vec![[0u64; 4]; n_groups];
            let mut segs = vec![0u32; n_groups];
            for v in &r.volumes {
                for (g, t) in v.groups.iter().enumerate() {
                    agg[g][0] += t.user_blocks;
                    agg[g][1] += t.gc_blocks;
                    agg[g][2] += t.shadow_blocks;
                    agg[g][3] += t.pad_blocks;
                    segs[g] += t.segments;
                }
            }
            for (g, (a, s)) in agg.iter().zip(&segs).enumerate() {
                rows.push((scheme.name().to_string(), g as u8, a[0], a[1], a[2], a[3], *s));
                let total: u64 = a.iter().sum();
                if total == 0 {
                    continue;
                }
                table.push(vec![
                    scheme.name().to_string(),
                    format!("G{g}"),
                    format!("{:.1}", a[0] as f64 / total as f64 * 100.0),
                    format!("{:.1}", a[1] as f64 / total as f64 * 100.0),
                    format!("{:.1}", a[2] as f64 / total as f64 * 100.0),
                    format!("{:.1}", a[3] as f64 / total as f64 * 100.0),
                    s.to_string(),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &["scheme", "group", "%user", "%gc", "%shadow", "%pad", "segments"],
                &table
            )
        );
        let report = Report { groups: rows };
        write_report(cli, "figure3", &report);
        report
    }
}

/// Fig. 8 — overall WA per scheme × GC policy × suite, plus per-volume
/// box statistics.
pub mod fig8 {
    use super::*;
    use adapt_trace::stats::BoxStats;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(suite, gc, scheme, overall WA, box stats)`.
        pub cells: Vec<(String, String, String, f64, BoxStats)>,
        /// ADAPT's overall WA reduction vs each baseline, per (suite, gc).
        pub adapt_reductions: Vec<(String, String, String, f64)>,
    }

    /// Summarize an existing sweep into Fig. 8.
    pub fn from_sweep(cli: &Cli, sweep: &FullSweep) -> Report {
        println!("Figure 8 — GC efficiency (overall WA and per-volume quartiles)");
        println!("{}", wa_table(&sweep.results));
        let mut cells = Vec::new();
        let mut adapt_reductions = Vec::new();
        for r in &sweep.results {
            cells.push((
                r.suite.clone(),
                r.gc.name().to_string(),
                r.scheme.name().to_string(),
                r.overall_wa(),
                r.wa_box(),
            ));
        }
        let mut rows = Vec::new();
        for kind in SuiteKind::ALL {
            for gc in [GcSelection::Greedy, GcSelection::CostBenefit] {
                let adapt = sweep.get(Scheme::Adapt, gc, kind.name()).unwrap();
                for &b in &Scheme::BASELINES {
                    let base = sweep.get(b, gc, kind.name()).unwrap();
                    let red = overall_wa_reduction_pct(adapt, base);
                    adapt_reductions.push((
                        kind.name().to_string(),
                        gc.name().to_string(),
                        b.name().to_string(),
                        red,
                    ));
                    rows.push(vec![
                        kind.name().to_string(),
                        gc.name().to_string(),
                        b.name().to_string(),
                        crate::pct(red),
                    ]);
                }
            }
        }
        println!("ADAPT overall-WA reduction vs baselines:");
        println!("{}", render_table(&["suite", "gc", "baseline", "WA reduction"], &rows));
        let report = Report { cells, adapt_reductions };
        write_report(cli, "figure8", &report);
        report
    }

    /// Regenerate Fig. 8 (runs the sweep).
    pub fn run(cli: &Cli) -> Report {
        let sweep = FullSweep::run(cli);
        from_sweep(cli, &sweep)
    }
}

/// Fig. 9 — CDFs of per-volume padding-traffic ratio.
pub mod fig9 {
    use super::*;

    /// One CDF series: `(suite, gc, scheme, points over padding ratio %)`.
    pub type CdfSeries = (String, String, String, Vec<(f64, f64)>);

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// CDF series per (suite, gc, scheme).
        pub cdfs: Vec<CdfSeries>,
        /// ADAPT padding reduction vs each baseline per (suite, gc).
        pub adapt_padding_reductions: Vec<(String, String, String, f64)>,
    }

    /// Summarize an existing sweep into Fig. 9.
    pub fn from_sweep(cli: &Cli, sweep: &FullSweep) -> Report {
        println!("Figure 9 — padding-traffic ratio CDFs");
        let mut cdfs = Vec::new();
        let mut reductions = Vec::new();
        let mut rows = Vec::new();
        for r in &sweep.results {
            let samples: Vec<f64> = r.padding_samples().iter().map(|p| p * 100.0).collect();
            let ecdf = Ecdf::new(samples.clone());
            rows.push(vec![
                r.suite.clone(),
                r.gc.name().to_string(),
                r.scheme.name().to_string(),
                format!("{:.1}", ecdf.quantile(0.5)),
                format!("{:.1}", ecdf.cdf(25.0) * 100.0),
            ]);
            cdfs.push((
                r.suite.clone(),
                r.gc.name().to_string(),
                r.scheme.name().to_string(),
                cdf_points(&samples, 40),
            ));
        }
        println!(
            "{}",
            render_table(&["suite", "gc", "scheme", "median pad%", "%vol with pad<25%"], &rows)
        );
        for kind in SuiteKind::ALL {
            for gc in [GcSelection::Greedy, GcSelection::CostBenefit] {
                let adapt = sweep.get(Scheme::Adapt, gc, kind.name()).unwrap();
                for &b in &Scheme::BASELINES {
                    let base = sweep.get(b, gc, kind.name()).unwrap();
                    reductions.push((
                        kind.name().to_string(),
                        gc.name().to_string(),
                        b.name().to_string(),
                        overall_padding_reduction_pct(adapt, base),
                    ));
                }
            }
        }
        let report = Report { cdfs, adapt_padding_reductions: reductions };
        write_report(cli, "figure9", &report);
        report
    }

    /// Regenerate Fig. 9 (runs the sweep).
    pub fn run(cli: &Cli) -> Report {
        let sweep = FullSweep::run(cli);
        from_sweep(cli, &sweep)
    }
}

/// Fig. 10 — per-volume correlation between padding reduction and WA
/// reduction (ADAPT vs MiDA, ADAPT vs SepBIT; Ali suite, Greedy).
pub mod fig10 {
    use super::*;

    /// One scatter series: `(baseline, [(pad reduction %, wa reduction %)], r)`.
    pub type ScatterSeries = (String, Vec<(f64, f64)>, f64);

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// Scatter series per baseline.
        pub scatter: Vec<ScatterSeries>,
    }

    /// Summarize an existing sweep into Fig. 10.
    pub fn from_sweep(cli: &Cli, sweep: &FullSweep) -> Report {
        println!("Figure 10 — padding reduction vs WA reduction (Ali, Greedy)");
        let adapt = sweep.get(Scheme::Adapt, GcSelection::Greedy, "AliCloud").unwrap();
        let mut scatter = Vec::new();
        let mut rows = Vec::new();
        for baseline in [Scheme::Mida, Scheme::SepBit] {
            let base = sweep.get(baseline, GcSelection::Greedy, "AliCloud").unwrap();
            let comps = compare_volumes(adapt, base);
            let r = reduction_correlation(&comps);
            let points: Vec<(f64, f64)> =
                comps.iter().map(|c| (c.padding_reduction_pct, c.wa_reduction_pct)).collect();
            rows.push(vec![
                baseline.name().to_string(),
                format!("{r:.3}"),
                format!("{:.1}", points.iter().map(|p| p.0).sum::<f64>() / points.len() as f64),
                format!("{:.1}", points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64),
            ]);
            scatter.push((baseline.name().to_string(), points, r));
        }
        println!(
            "{}",
            render_table(&["baseline", "corr(pad,WA)", "mean padΔ%", "mean WAΔ%"], &rows)
        );
        let report = Report { scatter };
        write_report(cli, "figure10", &report);
        report
    }

    /// Regenerate Fig. 10 (runs the sweep).
    pub fn run(cli: &Cli) -> Report {
        let sweep = FullSweep::run(cli);
        from_sweep(cli, &sweep)
    }
}

/// Fig. 11 — sensitivity to access density (left) and Zipfian skew
/// (right), YCSB-A with Greedy GC.
pub mod fig11 {
    use super::*;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(intensity, scheme, WA)`.
        pub density: Vec<(String, String, f64)>,
        /// `(alpha, scheme, WA)`.
        pub skew: Vec<(f64, String, f64)>,
    }

    fn ycsb_run(cli: &Cli, run: &str, scheme: Scheme, cfg: &YcsbConfig) -> f64 {
        let replay = ReplayConfig::for_volume(cfg.num_blocks, GcSelection::Greedy);
        let r = crate::harness::replay_observed(cli, run, scheme, replay, 0, cfg.generator());
        r.wa()
    }

    /// Regenerate Fig. 11.
    pub fn run(cli: &Cli) -> Report {
        // Paper: 1 M blocks filled, WA measured over 10 M writes. Scaled.
        let blocks = ((1_000_000.0 * cli.scale) as u64).max(32 * 1024);
        let updates = ((10_000_000.0 * cli.scale) as u64).max(320 * 1024);
        println!("Figure 11 — sensitivity (YCSB-A, {blocks} blocks, {updates} updates)");
        let mut density = Vec::new();
        let mut rows = Vec::new();
        for intensity in
            [TrafficIntensity::Light, TrafficIntensity::Medium, TrafficIntensity::Heavy]
        {
            for scheme in Scheme::PAPER {
                let cfg = YcsbConfig {
                    num_blocks: blocks,
                    num_updates: updates,
                    zipf_alpha: 0.99,
                    read_ratio: 0.0,
                    arrival: intensity.arrival(),
                    blocks_per_request: 1,
                    distribution: AccessDistribution::Zipfian,
                    seed: FIGURE_SEED,
                };
                let run = format!("figure11-{}-{}", intensity.name(), scheme.name());
                let wa = ycsb_run(cli, &run, scheme, &cfg);
                density.push((intensity.name().to_string(), scheme.name().to_string(), wa));
                rows.push(vec![
                    intensity.name().to_string(),
                    scheme.name().to_string(),
                    format!("{wa:.3}"),
                ]);
            }
        }
        println!("{}", render_table(&["intensity", "scheme", "WA"], &rows));

        let mut skew = Vec::new();
        let mut rows = Vec::new();
        for alpha in [0.0, 0.3, 0.6, 0.9, 0.99] {
            for scheme in Scheme::PAPER {
                let cfg = YcsbConfig {
                    num_blocks: blocks,
                    num_updates: updates,
                    zipf_alpha: alpha,
                    read_ratio: 0.0,
                    arrival: TrafficIntensity::Medium.arrival(),
                    blocks_per_request: 1,
                    distribution: AccessDistribution::Zipfian,
                    seed: FIGURE_SEED,
                };
                let run = format!("figure11-a{alpha:.2}-{}", scheme.name());
                let wa = ycsb_run(cli, &run, scheme, &cfg);
                skew.push((alpha, scheme.name().to_string(), wa));
                rows.push(vec![
                    format!("{alpha:.2}"),
                    scheme.name().to_string(),
                    format!("{wa:.3}"),
                ]);
            }
        }
        println!("{}", render_table(&["alpha", "scheme", "WA"], &rows));
        let report = Report { density, skew };
        write_report(cli, "figure11", &report);
        report
    }
}

/// Fig. 12 — prototype throughput (a) and memory overhead (b).
pub mod fig12 {
    use super::*;
    use adapt_proto::{run_throughput, ThroughputConfig};

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(clients, scheme, ops/s, WA)`.
        pub throughput: Vec<(usize, String, f64, f64)>,
        /// `(scheme, policy bytes, engine bytes)`.
        pub memory: Vec<(String, u64, u64)>,
    }

    /// Regenerate Fig. 12.
    pub fn run(cli: &Cli) -> Report {
        let blocks = ((192_000.0 * cli.scale) as u64).max(24 * 1024);
        let ops = ((48_000.0 * cli.scale) as u64).max(6_000);
        println!("Figure 12 — prototype throughput & memory ({blocks} blocks)");
        let mut throughput = Vec::new();
        let mut rows = Vec::new();
        for clients in [1usize, 4, 8] {
            for scheme in Scheme::PAPER {
                let cfg = ThroughputConfig {
                    num_blocks: blocks,
                    ops_per_client: ops,
                    clients,
                    ..Default::default()
                };
                let r = run_throughput(scheme, cfg);
                rows.push(vec![
                    clients.to_string(),
                    scheme.name().to_string(),
                    format!("{:.0}", r.ops_per_sec),
                    format!("{:.3}", r.wa),
                ]);
                throughput.push((clients, scheme.name().to_string(), r.ops_per_sec, r.wa));
            }
        }
        println!("{}", render_table(&["clients", "scheme", "ops/s", "WA"], &rows));

        // Memory comparison at 4 clients: ADAPT vs SepBIT (same group count
        // and lifespan machinery, per the paper).
        let mut memory = Vec::new();
        let mut rows = Vec::new();
        for scheme in [Scheme::SepBit, Scheme::Adapt] {
            let cfg = ThroughputConfig {
                num_blocks: blocks,
                ops_per_client: ops,
                clients: 4,
                ..Default::default()
            };
            let r = run_throughput(scheme, cfg);
            memory.push((scheme.name().to_string(), r.policy_memory_bytes, r.engine_memory_bytes));
            rows.push(vec![
                scheme.name().to_string(),
                format!("{:.1}", r.policy_memory_bytes as f64 / 1024.0),
                format!("{:.1}", r.engine_memory_bytes as f64 / 1024.0),
            ]);
        }
        println!("{}", render_table(&["scheme", "policy KiB", "engine KiB"], &rows));
        if let [(_, sepbit, _), (_, adapt, _)] = memory[..] {
            let overhead = (adapt as f64 / sepbit as f64 - 1.0) * 100.0;
            println!("ADAPT policy-memory overhead vs SepBIT: {overhead:+.1}%");
        }
        let report = Report { throughput, memory };
        write_report(cli, "figure12", &report);
        report
    }
}

/// GC victim-selection sweep: every scheme × the extended victim-policy
/// family (supports the §4.2 "universality" discussion).
pub mod gc_selection {
    use super::*;
    use adapt_sim::gc_sweep::{sweep_grid_geometries, victim_family};
    use adapt_sim::runner::requests_for;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(geometry, victim policy, scheme, overall WA)`.
        pub cells: Vec<(String, String, String, f64)>,
    }

    /// Run the sweep over a few Ali volumes on two array geometries: the
    /// invocation's (default 3+1) and a double-parity one. The whole
    /// `(geometry × victim × scheme × volume)` grid fans out on the pool
    /// at once.
    pub fn run(cli: &Cli) -> Report {
        let volumes = (cli.volumes() / 2).max(3);
        let suite = eval_suite(SuiteKind::Ali, volumes);
        println!("GC-selection sweep — Ali suite, {volumes} volumes");
        let schemes = [Scheme::SepGc, Scheme::SepBit, Scheme::Adapt];
        let victims = victim_family(FIGURE_SEED);
        let mut geometries = vec![cli.geometry.unwrap_or((0, 0))];
        if geometries[0] != (6, 2) {
            geometries.push((6, 2));
        }
        let grid =
            sweep_grid_geometries(&schemes, &victims, &suite.volumes, &geometries, requests_for);
        // Aggregate the flattened geometry-major grid back into
        // per-(geometry, victim, scheme) overall-WA cells, volumes
        // innermost.
        let mut cells = Vec::new();
        let mut rows = Vec::new();
        for (i, chunk) in grid.chunks(suite.volumes.len()).enumerate() {
            let per_geometry = victims.len() * schemes.len();
            let victim = victims[(i % per_geometry) / schemes.len()].name();
            let scheme = schemes[i % schemes.len()].name();
            let geometry = chunk[0].geometry.clone();
            let host: u64 = chunk.iter().map(|c| c.metrics.host_write_bytes).sum();
            let phys: u64 = chunk.iter().map(|c| c.metrics.physical_bytes()).sum();
            let wa = phys as f64 / host.max(1) as f64;
            rows.push(vec![
                geometry.clone(),
                victim.to_string(),
                scheme.to_string(),
                format!("{wa:.3}"),
            ]);
            cells.push((geometry, victim.to_string(), scheme.to_string(), wa));
        }
        println!("{}", render_table(&["geometry", "victim policy", "scheme", "overall WA"], &rows));
        let report = Report { cells };
        write_report(cli, "gc_selection", &report);
        report
    }
}

/// Multi-stream experiment: in-device WA with groups mapped to SSD
/// streams vs a single stream (§3.1's claim).
pub mod multistream {
    use super::*;
    use adapt_sim::multistream::replay_multistream;
    use adapt_sim::runner::requests_for;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(scheme, multi_stream, array WA, in-device WA)`.
        pub cells: Vec<(String, bool, f64, f64)>,
    }

    /// Run the experiment over a few Ali volumes.
    pub fn run(cli: &Cli) -> Report {
        let volumes = (cli.volumes() / 3).max(2);
        let suite = eval_suite(SuiteKind::Ali, volumes);
        println!("Multi-stream sweep — Ali suite, {volumes} volumes, FTL-modeled SSDs");
        let mut cells = Vec::new();
        let mut rows = Vec::new();
        for scheme in [Scheme::SepGc, Scheme::SepBit, Scheme::Adapt] {
            for multi in [false, true] {
                let mut host = 0.0;
                let mut dev = 0.0;
                let mut arr = 0.0;
                for vol in &suite.volumes {
                    let cfg = ReplayConfig::for_volume(vol.unique_blocks, GcSelection::Greedy);
                    let r = replay_multistream(scheme, cfg, multi, vol.trace(requests_for(vol)));
                    host += 1.0;
                    dev += r.in_device_wa;
                    arr += r.array_wa;
                }
                let dev_wa = dev / host;
                let arr_wa = arr / host;
                cells.push((scheme.name().to_string(), multi, arr_wa, dev_wa));
                rows.push(vec![
                    scheme.name().to_string(),
                    if multi { "per-group".into() } else { "single".to_string() },
                    format!("{arr_wa:.3}"),
                    format!("{dev_wa:.3}"),
                ]);
            }
        }
        println!("{}", render_table(&["scheme", "streams", "array WA", "in-device WA"], &rows));
        let report = Report { cells };
        write_report(cli, "multistream", &report);
        report
    }
}

/// Durability-latency experiment: time-to-persistence distribution per
/// scheme (the SLA-compliance view of the coalescing design).
pub mod latency {
    use super::*;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(scheme, mean µs, p99-upper µs, fraction within 128 µs)`.
        pub cells: Vec<(String, f64, u64, f64)>,
    }

    /// Run over the Ali evaluation selection.
    pub fn run(cli: &Cli) -> Report {
        let suite = eval_suite(SuiteKind::Ali, cli.volumes());
        println!("Durability latency — Ali suite, Greedy GC");
        let mut cells = Vec::new();
        let mut rows = Vec::new();
        for scheme in Scheme::PAPER {
            let r = run_suite(scheme, GcSelection::Greedy, &suite, None);
            let mut merged = adapt_lss::LatencyHistogram::default();
            for v in &r.volumes {
                merged.merge(&v.metrics.durability_latency);
            }
            let within = merged.fraction_within(128);
            cells.push((
                scheme.name().to_string(),
                merged.mean_us(),
                merged.quantile_upper_us(0.99),
                within,
            ));
            rows.push(vec![
                scheme.name().to_string(),
                format!("{:.1}", merged.mean_us()),
                format!("{}", merged.quantile_upper_us(0.99)),
                format!("{:.1}%", within * 100.0),
            ]);
        }
        println!("{}", render_table(&["scheme", "mean µs", "p99≤ µs", "within 128 µs"], &rows));
        let report = Report { cells };
        write_report(cli, "latency", &report);
        report
    }
}

/// Ablation study: ADAPT with each mechanism disabled, Ali suite.
pub mod ablation {
    use super::*;

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// `(variant, overall WA, padding ratio)`.
        pub variants: Vec<(String, f64, f64)>,
    }

    /// Run the ablation sweep.
    pub fn run(cli: &Cli) -> Report {
        let suite = eval_suite(SuiteKind::Ali, cli.volumes());
        println!("Ablation — ADAPT mechanisms, Ali suite, Greedy GC");
        let mut variants = Vec::new();
        let mut rows = Vec::new();
        for scheme in Scheme::ABLATIONS {
            let r = run_suite(scheme, GcSelection::Greedy, &suite, None);
            variants.push((scheme.name().to_string(), r.overall_wa(), r.overall_padding_ratio()));
            rows.push(vec![
                scheme.name().to_string(),
                format!("{:.3}", r.overall_wa()),
                format!("{:.1}%", r.overall_padding_ratio() * 100.0),
            ]);
        }
        println!("{}", render_table(&["variant", "overall WA", "pad ratio"], &rows));
        let report = Report { variants };
        write_report(cli, "ablation", &report);
        report
    }
}

/// Fault scenario — mid-trace device failure, degraded service via parity
/// reconstruction, incremental rebuild onto a spare. Reports WA, padding,
/// and durability-latency deltas between the healthy, degraded,
/// rebuilding, and restored phases.
pub mod faults {
    use super::*;
    use crate::harness::gate;
    use adapt_sim::faults::{run_fault_scenario, FaultScenario};
    use adapt_sim::runner::requests_for;

    /// Per-phase metrics for one scheme × fault leg.
    #[derive(Serialize)]
    pub struct PhaseRow {
        /// Scheme name.
        pub scheme: String,
        /// Array geometry the leg ran on (`k+m`).
        pub geometry: String,
        /// Fault leg: `single` or `double`.
        pub leg: String,
        /// Phase name (healthy/degraded/rebuilding/restored).
        pub phase: String,
        /// Records replayed in the phase.
        pub records: u64,
        /// Write amplification over the phase.
        pub wa: f64,
        /// Padding ratio over the phase.
        pub padding_ratio: f64,
        /// Mean request latency (µs).
        pub mean_latency_us: f64,
        /// Reads served by parity/RS reconstruction.
        pub degraded_reads: u64,
        /// Bytes materialized through decode paths.
        pub reconstructed_bytes: u64,
    }

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// Per-phase metrics for each scheme × fault leg.
        pub phases: Vec<PhaseRow>,
        /// `(scheme, geometry, leg, readable, reconstructed, buffered
        /// tail, lost)` from the degraded-phase live-LBA sweep.
        pub verify: Vec<(String, String, String, u64, u64, u64, u64)>,
        /// `(scheme, geometry, leg, rebuild bytes, rebuild host ops)`.
        pub rebuild: Vec<(String, String, String, u64, u64)>,
    }

    /// Run both fault legs for SepGC and ADAPT on one Ali volume:
    /// a single device failure on the invocation's geometry, and a
    /// correlated double failure on a double-parity geometry (the
    /// `--geometry` override when it carries `m >= 2`, else 4+2).
    /// Each leg is gated: any lost live LBA or a rebuild that never
    /// restores the array exits nonzero.
    pub fn run(cli: &Cli) -> Report {
        let suite = eval_suite(SuiteKind::Ali, cli.volumes());
        let vol = &suite.volumes[0];
        let requests = requests_for(vol);
        let double_geometry = match cli.geometry {
            Some((n, m)) if m >= 2 => (n, m),
            _ => (6, 2),
        };
        println!(
            "Fault scenarios — volume {} ({} blocks, {} requests), failures at 50%",
            vol.id, vol.unique_blocks, requests
        );
        let mut phases = Vec::new();
        let mut verify = Vec::new();
        let mut rebuild = Vec::new();
        let mut rows = Vec::new();
        for scheme in [Scheme::SepGc, Scheme::Adapt] {
            let single = {
                let mut cfg = ReplayConfig::for_volume(vol.unique_blocks, GcSelection::Greedy);
                cfg.lss = cli.apply_geometry(cfg.lss);
                FaultScenario::midpoint_failure(cfg, 0)
            };
            let double = {
                let mut cfg = ReplayConfig::for_volume(vol.unique_blocks, GcSelection::Greedy);
                cfg.lss = cfg.lss.with_geometry(double_geometry.0, double_geometry.1);
                FaultScenario::double_fault(cfg, 0, 2)
            };
            for (leg, scenario) in [("single", single), ("double", double)] {
                let r = run_fault_scenario(scheme, scenario, vol.trace(requests));
                for p in &r.phases {
                    phases.push(PhaseRow {
                        scheme: scheme.name().to_string(),
                        geometry: r.geometry.clone(),
                        leg: leg.to_string(),
                        phase: p.phase.clone(),
                        records: p.records,
                        wa: p.wa(),
                        padding_ratio: p.padding_ratio(),
                        mean_latency_us: p.mean_latency_us(),
                        degraded_reads: p.metrics.degraded_reads,
                        reconstructed_bytes: p.metrics.reconstructed_bytes,
                    });
                    rows.push(vec![
                        scheme.name().to_string(),
                        r.geometry.clone(),
                        leg.to_string(),
                        p.phase.clone(),
                        format!("{}", p.records),
                        format!("{:.3}", p.wa()),
                        format!("{:.1}%", p.padding_ratio() * 100.0),
                        format!("{:.1}", p.mean_latency_us()),
                        format!("{}", p.metrics.degraded_reads),
                        format!("{:.1}", p.metrics.reconstructed_bytes as f64 / (1 << 20) as f64),
                    ]);
                }
                verify.push((
                    scheme.name().to_string(),
                    r.geometry.clone(),
                    leg.to_string(),
                    r.verify.readable,
                    r.verify.reconstructed,
                    r.verify.buffered_tail,
                    r.verify.lost,
                ));
                rebuild.push((
                    scheme.name().to_string(),
                    r.geometry.clone(),
                    leg.to_string(),
                    r.rebuild_bytes,
                    r.rebuild_ops,
                ));
                let tag = format!("{}/{}/{}", scheme.name(), r.geometry, leg);
                gate(
                    r.verify.lost == 0,
                    &format!("{tag}: no acknowledged live LBA lost ({:?})", r.verify),
                );
                gate(
                    r.phase("restored").is_some(),
                    &format!("{tag}: rebuild completed and the array was restored"),
                );
                gate(
                    r.verify.reconstructed > 0,
                    &format!("{tag}: degraded reads were actually served via decode"),
                );
            }
        }
        println!(
            "{}",
            render_table(
                &[
                    "scheme",
                    "geometry",
                    "leg",
                    "phase",
                    "records",
                    "WA",
                    "pad",
                    "lat µs",
                    "degr rd",
                    "recon MiB"
                ],
                &rows
            )
        );
        let mut vrows = Vec::new();
        for (s, g, leg, readable, recon, tail, lost) in &verify {
            vrows.push(vec![
                s.clone(),
                g.clone(),
                leg.clone(),
                format!("{readable}"),
                format!("{recon}"),
                format!("{tail}"),
                format!("{lost}"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "scheme",
                    "geometry",
                    "leg",
                    "readable",
                    "reconstructed",
                    "buffered tail",
                    "lost"
                ],
                &vrows
            )
        );
        let report = Report { phases, verify, rebuild };
        write_report(cli, "faults", &report);
        report
    }
}

/// Scrub scenario — silent-corruption bursts injected mid-trace, caught by
/// verify-on-read and the paced background scrub, healed in place from
/// stripe survivors. Reports detection coverage (must be 100%), heal
/// counts, detection latency, and the post-mortem live-LBA sweep.
pub mod scrub {
    use super::*;
    use crate::harness::gate;
    use adapt_sim::runner::requests_for;
    use adapt_sim::scrub::{run_scrub_scenario, ScrubScenario};

    /// One scheme's scrub outcome.
    #[derive(Serialize)]
    pub struct SchemeRow {
        /// Scheme name.
        pub scheme: String,
        /// Array geometry the run used (`k+m`).
        pub geometry: String,
        /// Corruptions injected.
        pub injected: u64,
        /// Corruptions detected (must equal `injected`).
        pub detected: u64,
        /// Corruptions healed in place.
        pub healed: u64,
        /// Corruptions beyond repair (second fault in stripe).
        pub unrecoverable: u64,
        /// Corruptions never noticed (must be zero).
        pub undetected: u64,
        /// Mean array ops from injection to detection.
        pub mean_detection_latency_ops: f64,
        /// Chunks the paced scrub verified during the replay.
        pub chunks_scrubbed: u64,
        /// Live LBAs the post-mortem sweep could not serve (must be zero).
        pub live_lost: u64,
    }

    /// JSON payload.
    #[derive(Serialize)]
    pub struct Report {
        /// Per-scheme scrub outcomes.
        pub schemes: Vec<SchemeRow>,
    }

    /// Run the scrub scenario for SepGC and ADAPT on one Ali volume,
    /// on the invocation's geometry and again on a double-parity one
    /// (the `--geometry` override when it carries `m >= 2`, else 4+2).
    /// Detection coverage and in-place healing are gated: an undetected
    /// or unhealed corruption exits nonzero.
    pub fn run(cli: &Cli) -> Report {
        let suite = eval_suite(SuiteKind::Ali, cli.volumes());
        let vol = &suite.volumes[0];
        let requests = requests_for(vol);
        let double_geometry = match cli.geometry {
            Some((n, m)) if m >= 2 => (n, m),
            _ => (6, 2),
        };
        println!(
            "Scrub scenario — volume {} ({} blocks, {} requests), corruption bursts + paced scrub",
            vol.id, vol.unique_blocks, requests
        );
        let mut schemes = Vec::new();
        let mut rows = Vec::new();
        for scheme in [Scheme::SepGc, Scheme::Adapt] {
            for double_parity in [false, true] {
                let mut cfg = ReplayConfig::for_volume(vol.unique_blocks, GcSelection::Greedy);
                cfg.lss = if double_parity {
                    cfg.lss.with_geometry(double_geometry.0, double_geometry.1)
                } else {
                    cli.apply_geometry(cfg.lss)
                };
                let scenario = ScrubScenario::bursts_with_scrub(cfg);
                let r = run_scrub_scenario(scheme, scenario, vol.trace(requests));
                let tag = format!("{}/{}", scheme.name(), r.geometry);
                gate(r.injected > 0, &format!("{tag}: scenario injected corruption"));
                gate(
                    r.is_clean(),
                    &format!(
                        "{tag}: every corruption detected and healed, no live LBA lost \
                         (detected {}/{} healed {} unrecoverable {} undetected {} lost {} \
                         drift {:?})",
                        r.detected,
                        r.injected,
                        r.healed,
                        r.unrecoverable,
                        r.undetected,
                        r.live_lost,
                        r.recovery_drift
                    ),
                );
                rows.push(vec![
                    scheme.name().to_string(),
                    r.geometry.clone(),
                    format!("{}", r.injected),
                    format!("{}", r.detected),
                    format!("{}", r.healed),
                    format!("{}", r.unrecoverable),
                    format!("{}", r.undetected),
                    format!("{:.0}", r.mean_detection_latency_ops),
                    format!("{}", r.metrics.chunks_scrubbed),
                    format!("{}", r.live_lost),
                ]);
                schemes.push(SchemeRow {
                    scheme: scheme.name().to_string(),
                    geometry: r.geometry.clone(),
                    injected: r.injected,
                    detected: r.detected,
                    healed: r.healed,
                    unrecoverable: r.unrecoverable,
                    undetected: r.undetected,
                    mean_detection_latency_ops: r.mean_detection_latency_ops,
                    chunks_scrubbed: r.metrics.chunks_scrubbed,
                    live_lost: r.live_lost,
                });
            }
        }
        println!(
            "{}",
            render_table(
                &[
                    "scheme",
                    "geometry",
                    "injected",
                    "detected",
                    "healed",
                    "unrecov",
                    "undetected",
                    "latency ops",
                    "scrubbed",
                    "lost"
                ],
                &rows
            )
        );
        let report = Report { schemes };
        write_report(cli, "scrub", &report);
        report
    }
}
