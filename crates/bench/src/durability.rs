//! Durability bench: what the on-disk backend costs, and how fast it
//! comes back.
//!
//! Three measurements feed the `durability` section of `BENCH_perf.json`:
//!
//! 1. An in-memory reference replay (`CountingArray`, no WAL) of the same
//!    seeded workload the fsync ladder uses — the denominator for the
//!    overhead ratios.
//! 2. The fsync ladder: the workload replayed on a real [`FileArraySink`]
//!    with the write-ahead log at each [`FsyncPolicy`], recording
//!    throughput, overhead vs the in-memory reference, and WAL volume per
//!    host byte.
//! 3. Recovery timing: the group-commit run's durable state (WAL +
//!    checkpoints + segment files) re-opened with
//!    [`EngineBuilder::recover`], timed cold, with the replayed record
//!    count from the [`RecoveryReport`].
//! 4. The borrowed-slice sweep: real chunk payloads driven through the
//!    zero-copy [`ArraySink::write_chunk_payload`] path of the file sink
//!    (the engine itself forwards accounting only), synced, then
//!    reopened as after a crash and reconciled — proving crash
//!    consistency is copy-discipline-independent: no payload byte is
//!    ever copied sink-side, and every framed record survives.
//!
//! Engine metrics (WA, GC passes) are deliberately *not* re-recorded
//! here: the durable backend is metrically invisible (asserted by
//! `tests/durability_integration.rs`), so those numbers would duplicate
//! the gate entries.

use crate::perf::{trace_of, Workload, QUICK, WORKLOADS};
use adapt_array::{
    ArrayConfig, ArraySink, ChunkFlush, CountingArray, FileArraySink, FileSinkOptions,
};
use adapt_lss::{
    DurabilityConfig, FsyncPolicy, GcSelection, Lss, LssConfig, PlacementPolicy, WalStats,
};
use adapt_sim::scheme::{with_policy, PolicyVisitor};
use adapt_sim::{ReplayConfig, Scheme};
use adapt_trace::TraceRecord;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One rung of the fsync ladder.
#[derive(Debug, Clone, Serialize)]
pub struct FsyncPoint {
    /// Policy label (`never`, `group_commit_8`, `every_commit`).
    pub fsync: String,
    /// Wall time of the replay (ms).
    pub wall_ms: f64,
    /// Throughput in thousand block-writes per second.
    pub kops_per_sec: f64,
    /// Wall-time ratio vs the in-memory reference replay (1.0 = free).
    pub overhead_vs_memory: f64,
    /// WAL bytes appended per host byte written.
    pub wal_bytes_per_host_byte: f64,
    /// WAL sync operations completed.
    pub wal_syncs: u64,
    /// Checkpoints taken during the run.
    pub checkpoints: u64,
}

/// Cold recovery of the group-commit run's durable state.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryTiming {
    /// Wall time of `EngineBuilder::recover` (ms).
    pub wall_ms: f64,
    /// Whether a checkpoint bounded the replay.
    pub checkpoint_loaded: bool,
    /// WAL records replayed after the checkpoint.
    pub records_applied: u64,
    /// Chunk flushes redone during replay.
    pub flushes_replayed: u64,
    /// Replay rate (thousand records per second; 0 when nothing to
    /// replay).
    pub krecords_per_sec: f64,
}

/// Borrowed-slice (zero-copy) sweep of the durable sink: chunk payloads
/// written through [`ArraySink::write_chunk_payload`] from one reused
/// caller-owned buffer, synced, then reopened as after power loss and
/// reconciled against a log that proves every flush durable.
#[derive(Debug, Clone, Serialize)]
pub struct PayloadPathPoint {
    /// Payload chunks written.
    pub chunks: u64,
    /// Wall time of the write + sync phase (ms).
    pub wall_ms: f64,
    /// Payload throughput (MiB/s).
    pub mib_per_sec: f64,
    /// Sink-side payload copies ([`adapt_array::ArrayStats::copy_bytes`]).
    /// Must be 0: the file sink CRCs the borrowed slice in place and
    /// frames metadata only.
    pub copy_bytes: u64,
    /// CRC-valid records found on reopen (data + parity).
    pub records_scanned: u64,
    /// Records confirmed and kept by reconciliation.
    pub records_reused: u64,
    /// Whether the simulated crash lost nothing: every scanned record
    /// reused, none restored from WAL digests or discarded, and zero
    /// sink-side payload copies.
    pub crash_consistent: bool,
}

/// Write `chunks` payloads through the borrowed-slice path, sync, then
/// reopen + reconcile as a crash would.
pub fn measure_payload_path(quick: bool) -> PayloadPathPoint {
    let cfg = ArrayConfig::default();
    let chunk = cfg.chunk_bytes as usize;
    let chunks: u64 = if quick { 96 } else { 1_024 };
    let dir = std::env::temp_dir().join(format!("adapt_payload_path_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sink = FileArraySink::create(cfg, &dir, sink_options()).expect("create payload sink");
    let mut buf = vec![0u8; chunk];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(167).wrapping_add(13);
    }
    let t0 = Instant::now();
    for i in 0..chunks {
        // Unique leading bytes per chunk so every frame CRC differs.
        buf[..8].copy_from_slice(&i.to_le_bytes());
        let flush = ChunkFlush {
            user_bytes: cfg.chunk_bytes,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group: 0,
            seg: (i / 64) as u32,
            chunk_in_seg: (i % 64) as u32,
        };
        sink.write_chunk_payload(flush, &buf);
    }
    sink.sync_all().expect("sync payload sink");
    let wall = t0.elapsed();
    let copy_bytes = sink.stats().copy_bytes;
    drop(sink);

    // Simulated restart: reopen and reconcile against a log that proves
    // all `chunks` flushes durable (they were synced above, so the tail
    // digest list is empty — everything must be found on disk).
    let mut sink =
        FileArraySink::open_recovery(cfg, &dir, sink_options()).expect("reopen payload sink");
    let rec = sink.recover_reconcile(chunks, &[]).expect("reconcile payload sink");
    let _ = std::fs::remove_dir_all(&dir);
    let wall_ms = wall.as_secs_f64() * 1e3;
    PayloadPathPoint {
        chunks,
        wall_ms,
        mib_per_sec: (chunks * cfg.chunk_bytes) as f64 / (1 << 20) as f64 / wall.as_secs_f64(),
        copy_bytes,
        records_scanned: rec.records_scanned,
        records_reused: rec.records_reused,
        crash_consistent: copy_bytes == 0
            && rec.records_scanned > 0
            && rec.records_reused == rec.records_scanned
            && rec.records_restored == 0
            && rec.records_discarded == 0,
    }
}

/// The `durability` section of `BENCH_perf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct DurabilityBench {
    /// Workload name the ladder ran on.
    pub workload: String,
    /// Host write blocks replayed per rung.
    pub blocks: u64,
    /// In-memory reference wall time (ms).
    pub in_memory_wall_ms: f64,
    /// In-memory reference throughput (kops/s).
    pub in_memory_kops_per_sec: f64,
    /// The fsync ladder.
    pub policies: Vec<FsyncPoint>,
    /// Cold-recovery timing of the group-commit rung's state.
    pub recovery: RecoveryTiming,
    /// Borrowed-slice (zero-copy) write path + crash-consistency sweep.
    pub payload_path: PayloadPathPoint,
}

fn durability_config(fsync: FsyncPolicy) -> DurabilityConfig {
    DurabilityConfig {
        fsync,
        rotate_bytes: 1 << 20,
        checkpoint_every_flushes: 256,
        fsync_data: false,
        budget: None,
    }
}

fn sink_options() -> FileSinkOptions {
    FileSinkOptions { fsync: false, stripes_per_file: 256, budget: None }
}

struct MemoryRun<'a> {
    cfg: LssConfig,
    trace: &'a [TraceRecord],
}

impl PolicyVisitor<f64> for MemoryRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> f64 {
        let mut engine = Lss::builder(policy, CountingArray::new(self.cfg.array_config()))
            .config(self.cfg)
            .gc_select(GcSelection::Greedy)
            .build();
        let t0 = Instant::now();
        for rec in self.trace {
            engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
        }
        engine.flush_all();
        t0.elapsed().as_secs_f64() * 1e3
    }
}

struct DurableRun<'a> {
    cfg: LssConfig,
    trace: &'a [TraceRecord],
    dir: &'a Path,
    fsync: FsyncPolicy,
}

impl PolicyVisitor<(f64, WalStats, u64)> for DurableRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> (f64, WalStats, u64) {
        let sink =
            FileArraySink::create(self.cfg.array_config(), self.dir.join("array"), sink_options())
                .expect("create durable sink");
        let mut engine = Lss::builder(policy, sink)
            .config(self.cfg)
            .gc_select(GcSelection::Greedy)
            .durability(self.dir.join("wal"), durability_config(self.fsync))
            .build();
        let t0 = Instant::now();
        for rec in self.trace {
            engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
        }
        engine.flush_all();
        engine.sync_wal().expect("final WAL sync");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = engine.wal_stats().expect("wal stats");
        (wall_ms, stats, engine.metrics().host_write_bytes)
    }
}

struct RecoverRun<'a> {
    cfg: LssConfig,
    dir: &'a Path,
}

impl PolicyVisitor<RecoveryTiming> for RecoverRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> RecoveryTiming {
        let t0 = Instant::now();
        let sink = FileArraySink::open_recovery(
            self.cfg.array_config(),
            self.dir.join("array"),
            sink_options(),
        )
        .expect("open durable sink for recovery");
        let (engine, report) = Lss::builder(policy, sink)
            .config(self.cfg)
            .gc_select(GcSelection::Greedy)
            .durability(self.dir.join("wal"), durability_config(FsyncPolicy::GroupCommit(8)))
            .recover()
            .expect("recover engine");
        let wall = t0.elapsed();
        engine.check_invariants();
        let wall_ms = wall.as_secs_f64() * 1e3;
        RecoveryTiming {
            wall_ms,
            checkpoint_loaded: report.checkpoint_loaded,
            records_applied: report.records_applied,
            flushes_replayed: report.flushes_replayed,
            krecords_per_sec: if report.records_applied > 0 {
                report.records_applied as f64 / wall.as_secs_f64() / 1e3
            } else {
                0.0
            },
        }
    }
}

/// The fsync policies the ladder measures, cheapest first.
pub const LADDER: [FsyncPolicy; 3] =
    [FsyncPolicy::Never, FsyncPolicy::GroupCommit(8), FsyncPolicy::EveryCommit];

/// Run the durability bench. `quick` uses the CI smoke workload; full
/// runs use the `small` gate workload (the `medium` gate would multiply
/// file traffic for no extra signal — overhead ratios stabilize well
/// below it).
pub fn run(quick: bool) -> DurabilityBench {
    let w: &Workload = if quick { &QUICK } else { &WORKLOADS[0] };
    run_workload(w)
}

/// Run the ladder + recovery timing on one workload.
pub fn run_workload(w: &Workload) -> DurabilityBench {
    let scheme = Scheme::SepGc;
    let cfg = ReplayConfig::for_volume(w.user_blocks, GcSelection::Greedy).lss;
    let trace = trace_of(w);
    let blocks: u64 = trace.iter().map(|r| r.num_blocks as u64).sum();
    let base = std::env::temp_dir().join(format!("adapt_durbench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let in_memory_wall_ms = with_policy(scheme, &cfg, MemoryRun { cfg, trace: &trace });
    let mut policies = Vec::new();
    let mut recovery_dir: Option<PathBuf> = None;
    for fsync in LADDER {
        let dir = base.join(fsync.label());
        std::fs::create_dir_all(&dir).expect("create bench dir");
        let (wall_ms, wal, host_bytes) =
            with_policy(scheme, &cfg, DurableRun { cfg, trace: &trace, dir: &dir, fsync });
        policies.push(FsyncPoint {
            fsync: fsync.label(),
            wall_ms,
            kops_per_sec: blocks as f64 / (wall_ms / 1e3) / 1e3,
            overhead_vs_memory: wall_ms / in_memory_wall_ms,
            wal_bytes_per_host_byte: wal.bytes_appended as f64 / host_bytes.max(1) as f64,
            wal_syncs: wal.syncs,
            checkpoints: wal.checkpoints,
        });
        if matches!(fsync, FsyncPolicy::GroupCommit(_)) {
            recovery_dir = Some(dir.clone());
        }
    }
    let recovery = with_policy(
        scheme,
        &cfg,
        RecoverRun { cfg, dir: recovery_dir.as_deref().expect("group-commit rung ran") },
    );
    let _ = std::fs::remove_dir_all(&base);
    let payload_path = measure_payload_path(w.name == QUICK.name);
    DurabilityBench {
        workload: w.name.to_string(),
        blocks,
        in_memory_wall_ms,
        in_memory_kops_per_sec: blocks as f64 / (in_memory_wall_ms / 1e3) / 1e3,
        policies,
        recovery,
        payload_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_full_ladder_and_recovery() {
        let b = run(true);
        assert_eq!(b.policies.len(), LADDER.len());
        assert!(b.in_memory_wall_ms > 0.0);
        for p in &b.policies {
            assert!(p.wall_ms > 0.0, "{}", p.fsync);
            assert!(p.wal_bytes_per_host_byte > 0.0, "{}", p.fsync);
        }
        // Group commit must actually sync; never-sync must not (beyond
        // rotations/checkpoints, which this workload's WAL volume forces
        // rarely enough to distinguish).
        let never = &b.policies[0];
        let group = &b.policies[1];
        let every = &b.policies[2];
        assert!(group.wal_syncs > never.wal_syncs);
        assert!(every.wal_syncs > group.wal_syncs);
        assert!(b.recovery.records_applied > 0 || b.recovery.checkpoint_loaded);
        assert!(b.recovery.wall_ms > 0.0);
        assert!(b.payload_path.crash_consistent);
    }

    #[test]
    fn payload_path_is_zero_copy_and_crash_consistent() {
        let p = measure_payload_path(true);
        assert_eq!(p.copy_bytes, 0, "file sink must not copy payload bytes");
        assert_eq!(p.records_reused, p.records_scanned);
        // 96 data records + one parity record per completed 3-column
        // stripe on the default 4-device geometry.
        assert_eq!(p.records_scanned, 96 + 96 / 3);
        assert!(p.crash_consistent);
        assert!(p.mib_per_sec > 0.0);
    }
}
