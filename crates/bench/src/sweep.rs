//! The shared WA sweep behind Figs. 8, 9, and 10: every paper scheme ×
//! both GC policies × all three suites.

use crate::{eval_suite, Cli};
use adapt_lss::GcSelection;
use adapt_sim::runner::{run_suite, SuiteResult};
use adapt_sim::Scheme;
use adapt_trace::SuiteKind;
use rayon::prelude::*;

/// Results of the full sweep, indexable by (scheme, gc, suite).
#[derive(Debug, Clone, Default)]
pub struct FullSweep {
    /// All results, in deterministic order.
    pub results: Vec<SuiteResult>,
}

impl FullSweep {
    /// Run the sweep at the CLI's scale. This is the expensive call every
    /// WA figure shares; progress is printed per (scheme, gc, suite) cell.
    ///
    /// The whole `(suite × gc × scheme)` grid fans out on the pool (the
    /// per-volume fan-out inside [`run_suite`] then runs sequentially on
    /// its worker — the outermost parallel call owns the machine). Cell
    /// results come back in the fixed suite-major grid order; only the
    /// progress lines interleave by completion.
    pub fn run(cli: &Cli) -> Self {
        let volumes = cli.volumes();
        let suites: Vec<_> = SuiteKind::ALL.iter().map(|&k| eval_suite(k, volumes)).collect();
        let cells: Vec<(usize, GcSelection, Scheme)> = (0..suites.len())
            .flat_map(|si| {
                [GcSelection::Greedy, GcSelection::CostBenefit]
                    .into_iter()
                    .flat_map(move |gc| Scheme::PAPER.into_iter().map(move |s| (si, gc, s)))
            })
            .collect();
        let results: Vec<SuiteResult> = cells
            .into_par_iter()
            .map(|(si, gc, scheme)| {
                let t0 = std::time::Instant::now();
                let r = run_suite(scheme, gc, &suites[si], None);
                eprintln!(
                    "[sweep] {:<12} {:<12} {:<8} wa={:.3} pad={:.1}% ({:.1}s)",
                    suites[si].kind.name(),
                    gc.name(),
                    scheme.name(),
                    r.overall_wa(),
                    r.overall_padding_ratio() * 100.0,
                    t0.elapsed().as_secs_f64()
                );
                r
            })
            .collect();
        Self { results }
    }

    /// Find the result cell for a combination.
    pub fn get(&self, scheme: Scheme, gc: GcSelection, suite: &str) -> Option<&SuiteResult> {
        self.results.iter().find(|r| r.scheme == scheme && r.gc == gc && r.suite == suite)
    }

    /// All results for one (gc, suite) combination, in paper scheme order.
    pub fn row(&self, gc: GcSelection, suite: &str) -> Vec<&SuiteResult> {
        Scheme::PAPER.iter().filter_map(|&s| self.get(s, gc, suite)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_complete_and_indexable() {
        let cli = Cli {
            scale: 0.08,
            out_dir: "/tmp/adapt-test".into(),
            quick: false,
            events: false,
            jobs: None,
            geometry: None,
        };
        let sweep = FullSweep::run(&cli);
        assert_eq!(sweep.results.len(), 3 * 2 * 6);
        let cell = sweep.get(Scheme::Adapt, GcSelection::Greedy, "AliCloud").expect("cell exists");
        assert!(cell.overall_wa() >= 1.0);
        assert_eq!(sweep.row(GcSelection::CostBenefit, "MSRC").len(), 6);
    }
}
