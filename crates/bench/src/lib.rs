//! Shared plumbing for the figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). They share a common
//! command-line convention:
//!
//! * `--scale <f>` — scale workload sizes (volume count, request counts)
//!   by `f`; default 0.25 for minutes-scale runs, `--scale 1` reproduces
//!   the paper-sized configuration.
//! * `--out <dir>` — where JSON reports land (default `results/`).
//! * `--jobs <n>` — worker threads for the parallel sweep engine (also
//!   the `ADAPT_JOBS` environment variable; default: all cores). Results
//!   are bit-identical at any job count — the knob only changes
//!   wall-clock.
//!
//! Figures print their series as aligned text tables *and* write JSON so
//! EXPERIMENTS.md can be assembled mechanically.

pub mod durability;
pub mod figures;
pub mod harness;
pub mod hotpath;
pub mod perf;
pub mod perf_baseline;
pub mod saturation;
pub mod sweep;

use adapt_lss::EventConfig;
use adapt_sim::Scheme;
use adapt_trace::{SuiteKind, WorkloadSuite};

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale factor (1.0 = paper-sized).
    pub scale: f64,
    /// Output directory for JSON reports.
    pub out_dir: String,
    /// CI smoke mode: shrink workloads to seconds-scale. Set by `--quick`
    /// or the `ADAPT_BENCH_QUICK` environment variable (any non-empty
    /// value other than `0`).
    pub quick: bool,
    /// Capture the structured event stream and write per-run telemetry
    /// reports next to the figure JSON. Set by `--events` or the
    /// `ADAPT_BENCH_EVENTS` environment variable.
    pub events: bool,
    /// Explicit worker-thread count for the parallel sweep engine
    /// (`--jobs N`; `None` = `ADAPT_JOBS` or all cores). Already installed
    /// into the pool by [`Cli::parse`]; kept here for display.
    pub jobs: Option<usize>,
    /// Array-geometry override as `(devices, parity)`, from `--geometry
    /// k+m` or the `ADAPT_BENCH_GEOMETRY` env var (`k+m` matches the
    /// report labels, e.g. `4+2` = 6 devices with double parity). `None`
    /// keeps each experiment's default (the historical 4-disk RAID-5).
    pub geometry: Option<(usize, usize)>,
}

impl Cli {
    /// Parse `--scale`, `--out`, `--quick`, `--events`, and `--jobs` from
    /// `std::env::args` (plus the `ADAPT_BENCH_QUICK` / `ADAPT_BENCH_EVENTS`
    /// env vars; `ADAPT_JOBS` is resolved inside the pool itself).
    pub fn parse() -> Self {
        let mut scale = 0.25;
        let mut out_dir = "results".to_string();
        let mut quick = quick_from_env();
        let mut events = events_from_env();
        let mut jobs = None;
        let mut geometry = geometry_from_env();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale =
                        args.get(i).and_then(|s| s.parse().ok()).expect("--scale needs a number");
                }
                "--out" => {
                    i += 1;
                    out_dir = args.get(i).expect("--out needs a path").clone();
                }
                "--jobs" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .expect("--jobs needs a positive integer");
                    jobs = Some(n);
                }
                "--quick" => quick = true,
                "--events" => events = true,
                "--geometry" => {
                    i += 1;
                    let s = args.get(i).expect("--geometry needs k+m (e.g. 4+2)");
                    geometry = Some(parse_geometry(s));
                }
                other => {
                    panic!(
                        "unknown argument {other} \
                         (expected --scale/--out/--quick/--events/--jobs/--geometry)"
                    )
                }
            }
            i += 1;
        }
        assert!(scale > 0.0, "--scale must be positive");
        if quick {
            // One shared interpretation for every figure bin: the smallest
            // scale the volume clamp admits. Bins with bespoke workloads
            // (e.g. `perf`) additionally consult `quick` directly.
            scale = f64::min(scale, 0.02);
        }
        if let Some(n) = jobs {
            rayon::set_jobs(n);
        }
        Self { scale, out_dir, quick, events, jobs, geometry }
    }

    /// Apply the geometry override (if any) to an engine config.
    pub fn apply_geometry(&self, cfg: adapt_lss::LssConfig) -> adapt_lss::LssConfig {
        match self.geometry {
            Some((n, m)) => cfg.with_geometry(n, m),
            None => cfg,
        }
    }

    /// Label of the geometry this invocation runs experiments on
    /// (`"k+m"`; the default geometry when no override is set).
    pub fn geometry_label(&self) -> String {
        self.apply_geometry(adapt_lss::LssConfig::default()).array_config().geometry().label()
    }

    /// Volumes per suite at this scale (paper: 50).
    pub fn volumes(&self) -> usize {
        ((50.0 * self.scale).round() as usize).clamp(4, 50)
    }

    /// The engine event configuration this invocation selects.
    pub fn event_config(&self) -> EventConfig {
        if self.events {
            EventConfig::enabled()
        } else {
            EventConfig::default()
        }
    }
}

/// Whether `ADAPT_BENCH_QUICK` requests smoke-sized runs.
pub fn quick_from_env() -> bool {
    std::env::var("ADAPT_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Whether `ADAPT_BENCH_EVENTS` requests event-stream capture.
pub fn events_from_env() -> bool {
    std::env::var("ADAPT_BENCH_EVENTS").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Geometry override from `ADAPT_BENCH_GEOMETRY` (`k+m`), if set.
pub fn geometry_from_env() -> Option<(usize, usize)> {
    std::env::var("ADAPT_BENCH_GEOMETRY").ok().filter(|v| !v.is_empty()).map(|v| parse_geometry(&v))
}

/// Parse a `k+m` geometry label (data columns + parity chunks) into the
/// `(devices, parity)` pair [`adapt_lss::LssConfig::with_geometry`]
/// takes. Panics on malformed or out-of-range input — a bad geometry
/// should stop a bench run, not silently fall back.
pub fn parse_geometry(s: &str) -> (usize, usize) {
    let (k, m) = s
        .split_once('+')
        .and_then(|(k, m)| Some((k.trim().parse::<usize>().ok()?, m.trim().parse::<usize>().ok()?)))
        .unwrap_or_else(|| panic!("geometry must be k+m (e.g. 4+2), got {s:?}"));
    assert!(k >= 2, "geometry {s}: need at least two data columns");
    assert!(m >= 1, "geometry {s}: need at least one parity chunk");
    assert!(k + m <= 255, "geometry {s}: GF(256) supports at most 255 devices");
    (k + m, m)
}

/// Seed shared by every figure so suites are consistent across binaries.
pub const FIGURE_SEED: u64 = 0x20_26;

/// Minimum mean request rate (req/s) for the evaluation selection used by
/// the WA experiments (see `WorkloadSuite::evaluation_selection`).
pub const EVAL_MIN_RATE: f64 = 20.0;

/// The evaluation selection of a suite at the given scale.
pub fn eval_suite(kind: SuiteKind, volumes: usize) -> WorkloadSuite {
    WorkloadSuite::evaluation_selection(kind, FIGURE_SEED, volumes, EVAL_MIN_RATE)
}

/// Pretty percent formatting for reduction tables.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// The scheme order used in every figure.
pub fn paper_schemes() -> [Scheme; 6] {
    Scheme::PAPER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_scale_and_clamp() {
        let mk = |scale| Cli {
            scale,
            out_dir: String::new(),
            quick: false,
            events: false,
            jobs: None,
            geometry: None,
        };
        assert_eq!(mk(1.0).volumes(), 50);
        assert_eq!(mk(0.25).volumes(), 13);
        assert_eq!(mk(0.01).volumes(), 4);
        assert_eq!(mk(5.0).volumes(), 50);
    }

    #[test]
    fn eval_suite_respects_rate_floor() {
        let s = eval_suite(SuiteKind::Ali, 5);
        assert_eq!(s.volumes.len(), 5);
        assert!(s.volumes.iter().all(|v| v.mean_rate_per_sec() >= EVAL_MIN_RATE));
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(12.34), "+12.3%");
        assert_eq!(pct(-3.0), "-3.0%");
    }

    #[test]
    fn geometry_parses_and_labels() {
        assert_eq!(parse_geometry("4+2"), (6, 2));
        assert_eq!(parse_geometry("3+1"), (4, 1));
        assert_eq!(parse_geometry(" 10 + 4 "), (14, 4));
        let cli = Cli {
            scale: 1.0,
            out_dir: String::new(),
            quick: false,
            events: false,
            jobs: None,
            geometry: Some((6, 2)),
        };
        assert_eq!(cli.geometry_label(), "4+2");
        assert_eq!(cli.apply_geometry(adapt_lss::LssConfig::default()).array_parity, 2);
        let plain = Cli { geometry: None, ..cli };
        assert_eq!(plain.geometry_label(), "3+1");
    }

    #[test]
    #[should_panic]
    fn malformed_geometry_is_rejected() {
        parse_geometry("42");
    }
}
