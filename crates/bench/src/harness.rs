//! Shared entry point and report plumbing for the figure binaries.
//!
//! Every binary in `src/bin/` used to repeat the same skeleton: parse the
//! common CLI, run the experiment, serialize the payload with
//! `write_json`, print the canonical `wrote <path>` line. This module
//! centralizes that skeleton:
//!
//! * [`figure_main`] — the whole `fn main` of a figure binary.
//! * [`write_report`] — the serialize-and-announce tail every figure
//!   module shares.
//! * [`replay_observed`] — a replay that honours the CLI's `--events`
//!   switch and, when capture is on, drops a per-run telemetry report
//!   (`<out>/<run>.report.json`) next to the figure JSON.

use crate::Cli;
use adapt_sim::report::{write_json, write_run_report, RunReport};
use adapt_sim::{replay_volume, ReplayConfig, Scheme, VolumeResult};
use adapt_trace::TraceRecord;
use serde::Serialize;

/// The entire `main` of a figure binary: parse the shared CLI and hand it
/// to the figure's `run`.
pub fn figure_main<R>(run: impl FnOnce(&Cli) -> R) {
    let cli = Cli::parse();
    run(&cli);
}

/// A robustness acceptance gate: when `ok` is false, print what failed
/// and exit nonzero immediately. The fault/scrub scenario bins use this
/// so CI cannot mistake a run that lost acknowledged data or missed
/// injected corruption for a pass — the process result *is* the verdict.
pub fn gate(ok: bool, what: &str) {
    if !ok {
        eprintln!("GATE FAILED: {what}");
        std::process::exit(2);
    }
    println!("gate ok: {what}");
}

/// Serialize a figure payload under the CLI's output directory and print
/// the canonical `wrote <path>` line; returns the path.
pub fn write_report<T: Serialize>(cli: &Cli, name: &str, report: &T) -> String {
    let path = write_json(&cli.out_dir, name, report).expect("write report");
    println!("wrote {path}\n");
    path
}

/// Replay one volume with the CLI's event configuration. When `--events`
/// is set the engine records the structured event stream and the full
/// telemetry snapshot is written as `<out>/<run>.report.json`.
pub fn replay_observed<I>(
    cli: &Cli,
    run: &str,
    scheme: Scheme,
    cfg: ReplayConfig,
    volume_id: u32,
    trace: I,
) -> VolumeResult
where
    I: Iterator<Item = TraceRecord>,
{
    let result = replay_volume(scheme, cfg.with_events(cli.event_config()), volume_id, trace);
    if let Some(report) = RunReport::from_volume(run, &result) {
        let path = write_run_report(&cli.out_dir, &report).expect("write run report");
        println!("telemetry {path}");
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_lss::GcSelection;
    use adapt_trace::arrival::ArrivalModel;
    use adapt_trace::ycsb::{AccessDistribution, YcsbConfig};

    fn cli(events: bool, out_dir: &std::path::Path) -> Cli {
        Cli {
            scale: 0.1,
            out_dir: out_dir.to_str().unwrap().to_string(),
            quick: true,
            events,
            jobs: None,
            geometry: None,
        }
    }

    fn trace() -> impl Iterator<Item = TraceRecord> {
        YcsbConfig {
            num_blocks: 4096,
            num_updates: 20_000,
            zipf_alpha: 0.9,
            read_ratio: 0.0,
            arrival: ArrivalModel::Fixed { gap_us: 5 },
            blocks_per_request: 1,
            distribution: AccessDistribution::Zipfian,
            seed: 3,
        }
        .generator()
    }

    #[test]
    fn observed_replay_writes_telemetry_only_when_asked() {
        let dir = std::env::temp_dir().join("adapt-harness-test");
        let cfg = ReplayConfig::for_volume(4096, GcSelection::Greedy);

        let quiet = replay_observed(&cli(false, &dir), "h-off", Scheme::SepGc, cfg, 0, trace());
        assert!(quiet.telemetry.is_none());
        assert!(!dir.join("h-off.report.json").exists());

        let loud = replay_observed(&cli(true, &dir), "h-on", Scheme::SepGc, cfg, 0, trace());
        let snap = loud.telemetry.as_ref().expect("snapshot captured");
        assert!(snap.events.emitted > 0);
        // Same trace, same config: the measured metrics must not shift
        // when observation is switched on.
        assert_eq!(quiet.metrics, loud.metrics);
        let path = dir.join("h-on.report.json");
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_report_lands_in_out_dir() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        let dir = std::env::temp_dir().join("adapt-harness-test");
        let path = write_report(&cli(false, &dir), "unit", &T { x: 1 });
        assert!(path.ends_with("unit.json"));
        assert!(std::path::Path::new(&path).exists());
        let _ = std::fs::remove_file(&path);
    }
}
