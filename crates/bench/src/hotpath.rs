//! Hot-path microbenches: the `hotpath` section of `BENCH_perf.json`.
//!
//! Where the perf gate measures whole replays, this module measures the
//! byte-moving primitives the replays are built from, so a regression in
//! one layer is attributable without profiling:
//!
//! * the SIMD XOR kernel vs the scalar reference on a 64 KiB chunk,
//! * stripe parity into a reused buffer vs the allocating variant,
//! * batched FTL remaps ([`BlockIndex::apply_batch`]) vs per-block `set`,
//! * sink-side payload copies per host byte on the byte-faithful array,
//!   against the computed pre-zero-copy equivalent,
//! * staged (overlapped) GC vs synchronous GC on the same replay, with
//!   per-op tail latencies and the `jobs = 1` bit-identical check,
//! * the batched op pipeline ([`Lss::apply_ops`] fusion) vs per-op
//!   submission, with per-stage cost attribution from the op-clocked
//!   profiler and the packed-index footprint against the legacy
//!   enum-per-entry layout,
//! * the suite-sweep jobs ladder at 1 / 2 / all cores.
//!
//! Everything here is seeded and allocation-disciplined; `quick` shrinks
//! iteration counts and workloads to CI-smoke size without changing what
//! is measured.

use crate::perf::{trace_of, Workload, QUICK, WORKLOADS};
use adapt_array::cpu_features;
use adapt_array::parity;
use adapt_array::{ArraySink, CountingArray};
use adapt_lss::index::{BlockEntry, BlockIndex};
use adapt_lss::{GcSelection, HostOp, Lss, LssConfig, LssMetrics, PlacementPolicy, StageCosts};
use adapt_sim::runner::run_suite;
use adapt_sim::scheme::{with_policy, PolicyVisitor};
use adapt_sim::{ReplayConfig, Scheme};
use adapt_trace::{SuiteKind, TraceRecord, WorkloadSuite};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The XOR kernel ladder on one 64 KiB chunk. Two references because
/// they answer different questions: the byte-serial rung is the
/// pre-vectorization baseline (the kernel-level speedup headline), while
/// the word-scalar rung autovectorizes in release builds and shows where
/// the memory bus, not the kernel, becomes the wall.
#[derive(Debug, Clone, Serialize)]
pub struct XorPoint {
    /// Dispatched kernel (CPU feature summary).
    pub kernel: String,
    /// Dispatched [`parity::xor_into`] throughput (GiB/s).
    pub simd_gib_s: f64,
    /// [`parity::xor_into_scalar`] (u64 words; autovectorized) (GiB/s).
    pub scalar_wide_gib_s: f64,
    /// [`parity::xor_into_bytewise`] (strict byte-serial) (GiB/s).
    pub scalar_byte_gib_s: f64,
    /// `simd / byte-serial` — the kernel-level speedup.
    pub speedup_vs_byte: f64,
    /// `simd / word-scalar` — ~1.0 once memory-bound, by design.
    pub speedup_vs_wide: f64,
}

/// One fast-vs-reference kernel comparison. `unit` names what `fast` and
/// `slow` measure (higher is better for both).
#[derive(Debug, Clone, Serialize)]
pub struct KernelPoint {
    /// What was compared, e.g. `xor_into(64KiB) simd vs scalar`.
    pub name: String,
    /// Throughput of the optimized path.
    pub fast: f64,
    /// Throughput of the reference path.
    pub slow: f64,
    /// Unit of both throughputs (`GiB/s`, `Mops/s`).
    pub unit: String,
    /// `fast / slow`.
    pub speedup: f64,
}

/// Sink-side payload-copy traffic of a byte-faithful replay, against the
/// computed pre-zero-copy equivalent of the same flush sequence.
#[derive(Debug, Clone, Serialize)]
pub struct CopyTraffic {
    /// Workload replayed.
    pub workload: String,
    /// Host bytes written by the replay.
    pub host_write_bytes: u64,
    /// RAM-to-RAM payload copies the sink performed
    /// ([`adapt_array::ArrayStats::copy_bytes`]): with the streaming
    /// parity accumulator this is one seed copy per stripe.
    pub copy_bytes: u64,
    /// What the same flush sequence cost before the zero-copy paths: the
    /// measured copies plus one zero-filled chunk materialization per
    /// data/pad chunk write (the old accounting path allocated and
    /// memset a chunk-sized `Vec` per flush; parity seeding cost the
    /// same then as now).
    pub legacy_equiv_copy_bytes: u64,
    /// Copied bytes per host byte, measured.
    pub copy_per_host_byte: f64,
    /// Copied bytes per host byte, legacy equivalent.
    pub legacy_copy_per_host_byte: f64,
    /// `1 - copy_bytes / legacy_equiv_copy_bytes`, as a percentage.
    pub reduction_pct: f64,
}

/// Staged (overlapped) GC vs the synchronous path on the same replay.
///
/// The staged path slices victim migration across foreground writes, so
/// the signal is in the per-op tail, not the mean; write amplification
/// may differ between the modes (migration observes fresher liveness),
/// which is why the `jobs = 1` collapse to the exact synchronous path is
/// recorded as its own bit-identical check.
#[derive(Debug, Clone, Serialize)]
pub struct GcOverlapPoint {
    /// Workload replayed.
    pub workload: String,
    /// Job count the overlapped run was measured at.
    pub jobs: usize,
    /// Synchronous-GC wall time (ms).
    pub sync_wall_ms: f64,
    /// Overlapped-GC wall time (ms).
    pub overlap_wall_ms: f64,
    /// Synchronous per-op p99 / p99.9 / max latency (µs).
    pub sync_p99_us: f64,
    /// See `sync_p99_us`.
    pub sync_p999_us: f64,
    /// See `sync_p99_us`.
    pub sync_max_us: f64,
    /// Overlapped per-op p99 / p99.9 / max latency (µs).
    pub overlap_p99_us: f64,
    /// See `overlap_p99_us`.
    pub overlap_p999_us: f64,
    /// See `overlap_p99_us`.
    pub overlap_max_us: f64,
    /// Write amplification, synchronous mode.
    pub sync_wa: f64,
    /// Write amplification, overlapped mode (may legitimately differ).
    pub overlap_wa: f64,
    /// Whether the overlapped configuration at `jobs = 1` reproduced the
    /// synchronous run's metrics exactly (the determinism contract; must
    /// always be true).
    pub jobs1_bit_identical: bool,
}

/// Per-stage write-path cost of one profiled replay, in nanoseconds per
/// host op (each field is the matching [`StageCosts`] counter divided by
/// the ops attributed). The stage set mirrors the engine's apply loop:
/// clock advance → telemetry → GC pump → index retire → placement
/// snapshot → policy decision → sink/parity → WAL.
#[derive(Debug, Clone, Serialize)]
pub struct StageNsPerOp {
    /// Simulated-clock advance (SLA scan + expiries).
    pub clock: f64,
    /// Per-op telemetry (gauges, health, scrub pacing).
    pub telemetry: f64,
    /// Overlapped-GC migration slices.
    pub gc: f64,
    /// FTL index version retirement.
    pub index: f64,
    /// Policy-context snapshot refresh.
    pub placement: f64,
    /// Placement policy decision.
    pub policy: f64,
    /// Sink append/flush including parity.
    pub parity: f64,
    /// WAL group commit + checkpointing.
    pub wal: f64,
    /// Sum of all stages.
    pub total: f64,
}

impl StageNsPerOp {
    fn of(c: &StageCosts) -> Self {
        let ops = c.ops.max(1) as f64;
        StageNsPerOp {
            clock: c.clock_ns as f64 / ops,
            telemetry: c.telemetry_ns as f64 / ops,
            gc: c.gc_ns as f64 / ops,
            index: c.index_ns as f64 / ops,
            placement: c.placement_ns as f64 / ops,
            policy: c.policy_ns as f64 / ops,
            parity: c.parity_ns as f64 / ops,
            wal: c.wal_ns as f64 / ops,
            total: c.total_ns() as f64 / ops,
        }
    }
}

/// Resident FTL index footprint of the packed tagged-word layout against
/// the legacy one-enum-per-entry table it replaced.
#[derive(Debug, Clone, Serialize)]
pub struct IndexFootprint {
    /// Blocks mapped by the measured index.
    pub blocks: u64,
    /// Measured [`BlockIndex::memory_bytes`] per mapped block (packed
    /// 8-byte words plus the shadow side table, amortized).
    pub packed_bytes_per_block: f64,
    /// What the same table cost per entry before packing: one
    /// [`BlockEntry`] enum per LBA (`size_of::<BlockEntry>()`), not
    /// counting the retired `FxHashMap` version map's overhead — so this
    /// baseline is conservative.
    pub legacy_bytes_per_block: f64,
    /// `1 - packed / legacy`, as a percentage.
    pub reduction_pct: f64,
}

/// The batched op pipeline vs per-op submission on the same replay, with
/// per-stage cost attribution and the packed-index footprint.
///
/// Wall-time speedup here is informational on CI-class machines (the
/// replays are engine-bound, and unoptimized builds invert the batching
/// win); the load-bearing fields are the two bit-identical contracts and
/// the stage/footprint attributions, which hold in any build.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBench {
    /// Workload replayed.
    pub workload: String,
    /// Ops per [`Lss::apply_ops`] batch in the batched runs.
    pub batch: usize,
    /// Wall time submitting one op at a time (ms), unprofiled.
    pub per_op_wall_ms: f64,
    /// Wall time submitting `batch`-op slices (ms), unprofiled.
    pub batched_wall_ms: f64,
    /// `per_op_wall_ms / batched_wall_ms`.
    pub speedup: f64,
    /// Per-stage ns/op of the profiled one-op-at-a-time replay.
    pub per_op_stage_ns: StageNsPerOp,
    /// Per-stage ns/op of the profiled batched replay.
    pub batched_stage_ns: StageNsPerOp,
    /// Whether the batched replay reproduced the per-op replay's metrics
    /// and memory footprint exactly (the batching determinism contract;
    /// must always be true).
    pub batched_bit_identical: bool,
    /// Whether both profiled replays reproduced the unprofiled per-op
    /// metrics exactly (the profiler's zero-perturbation contract; must
    /// always be true).
    pub profiled_bit_identical: bool,
    /// Packed-index footprint vs the legacy enum-per-entry layout.
    pub index: IndexFootprint,
}

/// One rung of the suite-sweep jobs ladder.
#[derive(Debug, Clone, Serialize)]
pub struct JobsPoint {
    /// Worker threads.
    pub jobs: usize,
    /// Sweep wall time (ms).
    pub wall_ms: f64,
    /// Speedup vs the `jobs = 1` rung.
    pub speedup_vs_1: f64,
}

/// The `hotpath` section of `BENCH_perf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathBench {
    /// CPU feature summary the kernels dispatched on (e.g.
    /// `avx2+sse42`, `scalar (forced)` under `ADAPT_NO_SIMD`).
    pub cpu: String,
    /// The XOR kernel ladder on one 64 KiB chunk.
    pub xor_64k: XorPoint,
    /// Stripe parity into a reused buffer vs the allocating variant.
    pub parity_into: KernelPoint,
    /// Batched FTL remaps vs per-block `set` calls.
    pub index_batch: KernelPoint,
    /// Sink payload-copy traffic vs the pre-zero-copy equivalent.
    pub copy: CopyTraffic,
    /// Staged vs synchronous GC on the same replay.
    pub gc_overlap: GcOverlapPoint,
    /// Batched op pipeline vs per-op submission, with per-stage cost
    /// attribution and the packed-index footprint.
    pub pipeline: PipelineBench,
    /// Suite-sweep scaling at 1 / 2 / all cores.
    pub jobs_ladder: Vec<JobsPoint>,
}

const CHUNK: usize = 64 * 1024;

/// Time `f` over `iters` iterations (after a quarter-length warmup) and
/// return seconds per iteration.
fn secs_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 4 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Deterministic byte pattern so the kernels never see all-zero input.
fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
}

/// The XOR kernel ladder over one chunk; GiB/s of source bytes
/// processed per rung.
pub fn bench_xor(quick: bool) -> XorPoint {
    let iters = if quick { 1_024 } else { 8_192 };
    let src = patterned(CHUNK, 7);
    let mut acc = patterned(CHUNK, 91);
    let simd_spi = secs_per_iter(iters, || {
        parity::xor_into(black_box(&mut acc), black_box(&src));
    });
    let wide_spi = secs_per_iter(iters, || {
        parity::xor_into_scalar(black_box(&mut acc), black_box(&src));
    });
    // The byte-serial rung is ~2 orders slower; fewer iterations keep
    // the ladder seconds-scale without losing signal.
    let byte_spi = secs_per_iter(iters / 16, || {
        parity::xor_into_bytewise(black_box(&mut acc), black_box(&src));
    });
    black_box(&acc);
    let gib = CHUNK as f64 / (1u64 << 30) as f64;
    XorPoint {
        kernel: cpu_features::get().summary(),
        simd_gib_s: gib / simd_spi,
        scalar_wide_gib_s: gib / wide_spi,
        scalar_byte_gib_s: gib / byte_spi,
        speedup_vs_byte: byte_spi / simd_spi,
        speedup_vs_wide: wide_spi / simd_spi,
    }
}

/// Parity of a 3-data-column stripe into a reused buffer vs the
/// allocating variant; GiB/s of stripe input processed.
pub fn bench_parity_into(quick: bool) -> KernelPoint {
    let iters = if quick { 512 } else { 4_096 };
    let cols: Vec<Vec<u8>> = (0..3u8).map(|c| patterned(CHUNK, c.wrapping_mul(53))).collect();
    let refs: Vec<&[u8]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut out = Vec::with_capacity(CHUNK);
    let fast_spi = secs_per_iter(iters, || {
        parity::try_compute_parity_into(black_box(&mut out), black_box(&refs)).unwrap();
    });
    let slow_spi = secs_per_iter(iters, || {
        black_box(parity::compute_parity(black_box(&refs)));
    });
    black_box(&out);
    let gib = (3 * CHUNK) as f64 / (1u64 << 30) as f64;
    KernelPoint {
        name: "compute_parity 3x64KiB reused-out vs alloc".to_string(),
        fast: gib / fast_spi,
        slow: gib / slow_spi,
        unit: "GiB/s".to_string(),
        speedup: slow_spi / fast_spi,
    }
}

/// Batched remap application vs per-block `set` calls on a pre-grown
/// index, using flush-sized batches; Mops/s of remaps applied.
pub fn bench_index_batch(quick: bool) -> KernelPoint {
    const TABLE: u64 = 1 << 18;
    const BATCH: usize = 32;
    let rounds = if quick { 2_048 } else { 16_384 };
    // Deterministic LCG over the table, pre-materialized so the measured
    // loop is the index alone.
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let batches: Vec<Vec<(u64, BlockEntry)>> = (0..rounds)
        .map(|r| {
            (0..BATCH)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let lba = x % TABLE;
                    (lba, BlockEntry::Durable { seg: r, off: i as u32 })
                })
                .collect()
        })
        .collect();
    let mut grown = BlockIndex::default();
    grown.set(TABLE - 1, BlockEntry::Absent);
    let mut idx = 0usize;
    let fast_spi = secs_per_iter(rounds, || {
        grown.apply_batch(black_box(&batches[idx % batches.len()]));
        idx += 1;
    });
    idx = 0;
    let slow_spi = secs_per_iter(rounds, || {
        for &(lba, e) in &batches[idx % batches.len()] {
            grown.set(black_box(lba), e);
        }
        idx += 1;
    });
    black_box(grown.len());
    let mops = BATCH as f64 / 1e6;
    KernelPoint {
        name: format!("BlockIndex {BATCH}-remap batch vs per-block set"),
        fast: mops / fast_spi,
        slow: mops / slow_spi,
        unit: "Mops/s".to_string(),
        speedup: slow_spi / fast_spi,
    }
}

struct CopyRun<'a> {
    cfg: LssConfig,
    trace: &'a [TraceRecord],
}

impl PolicyVisitor<(LssMetrics, adapt_array::ArrayStats)> for CopyRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(
        self,
        policy: P,
    ) -> (LssMetrics, adapt_array::ArrayStats) {
        let mut engine =
            Lss::builder(policy, adapt_array::InMemoryArray::new(self.cfg.array_config()))
                .config(self.cfg)
                .gc_select(GcSelection::Greedy)
                .build();
        for rec in self.trace {
            engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
        }
        engine.flush_all();
        (engine.metrics().clone(), engine.sink().stats().clone())
    }
}

/// Replay a workload on the byte-faithful array and report the sink's
/// payload-copy traffic against the pre-zero-copy equivalent.
pub fn measure_copy(quick: bool) -> CopyTraffic {
    let w: &Workload = if quick { &QUICK } else { &WORKLOADS[0] };
    let cfg = ReplayConfig::for_volume(w.user_blocks, GcSelection::Greedy).lss;
    let trace = trace_of(w);
    let (metrics, stats) = with_policy(Scheme::Adapt, &cfg, CopyRun { cfg, trace: &trace });
    let chunk_bytes = cfg.chunk_bytes();
    let chunk_writes: u64 = stats.devices.iter().map(|d| d.chunk_writes).sum();
    // Every non-parity chunk write used to materialize a zero-filled
    // chunk-sized Vec; parity writes are generated, not zeroed.
    let data_chunk_writes = chunk_writes - stats.stripes_completed;
    let legacy = stats.copy_bytes + data_chunk_writes * chunk_bytes;
    let host = metrics.host_write_bytes;
    CopyTraffic {
        workload: w.name.to_string(),
        host_write_bytes: host,
        copy_bytes: stats.copy_bytes,
        legacy_equiv_copy_bytes: legacy,
        copy_per_host_byte: stats.copy_bytes as f64 / host.max(1) as f64,
        legacy_copy_per_host_byte: legacy as f64 / host.max(1) as f64,
        reduction_pct: 100.0 * (1.0 - stats.copy_bytes as f64 / legacy.max(1) as f64),
    }
}

struct OverlapRun<'a> {
    cfg: LssConfig,
    trace: &'a [TraceRecord],
    overlap: bool,
    /// Record per-op latencies (skipped for the bit-identical re-run).
    record_latency: bool,
}

struct OverlapOut {
    wall_ms: f64,
    metrics: LssMetrics,
    /// Per-op latencies in nanoseconds, unsorted; empty unless recorded.
    lat_ns: Vec<u64>,
}

impl PolicyVisitor<OverlapOut> for OverlapRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> OverlapOut {
        let mut engine = Lss::builder(policy, CountingArray::new(self.cfg.array_config()))
            .config(self.cfg)
            .gc_select(GcSelection::Greedy)
            .gc_overlap(self.overlap)
            .build();
        let mut lat_ns = Vec::with_capacity(if self.record_latency { self.trace.len() } else { 0 });
        let t0 = Instant::now();
        if self.record_latency {
            for rec in self.trace {
                let op0 = Instant::now();
                engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
                lat_ns.push(op0.elapsed().as_nanos() as u64);
            }
        } else {
            for rec in self.trace {
                engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
            }
        }
        engine.flush_all();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        OverlapOut { wall_ms, metrics: engine.metrics().clone(), lat_ns }
    }
}

/// `q`-quantile (0..=1) of unsorted per-op nanoseconds, in microseconds.
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e3
}

/// Staged vs synchronous GC on one replay, plus the `jobs = 1`
/// bit-identical collapse check.
pub fn measure_gc_overlap(quick: bool) -> GcOverlapPoint {
    let w: &Workload = if quick { &QUICK } else { &WORKLOADS[0] };
    let cfg = ReplayConfig::for_volume(w.user_blocks, GcSelection::Greedy).lss;
    let trace = trace_of(w);
    let jobs = rayon::current_num_threads().max(2);
    let run = |overlap: bool, jobs: usize, record_latency: bool| {
        rayon::with_jobs(jobs, || {
            with_policy(
                Scheme::Adapt,
                &cfg,
                OverlapRun { cfg, trace: &trace, overlap, record_latency },
            )
        })
    };
    let sync = run(false, 1, true);
    let over = run(true, jobs, true);
    // Determinism contract: the overlapped configuration at jobs = 1
    // must reproduce the synchronous metrics bit for bit.
    let over_j1 = run(true, 1, false);
    let mut sync_ns = sync.lat_ns;
    let mut over_ns = over.lat_ns;
    sync_ns.sort_unstable();
    over_ns.sort_unstable();
    GcOverlapPoint {
        workload: w.name.to_string(),
        jobs,
        sync_wall_ms: sync.wall_ms,
        overlap_wall_ms: over.wall_ms,
        sync_p99_us: quantile_us(&sync_ns, 0.99),
        sync_p999_us: quantile_us(&sync_ns, 0.999),
        sync_max_us: sync_ns.last().map_or(0.0, |&n| n as f64 / 1e3),
        overlap_p99_us: quantile_us(&over_ns, 0.99),
        overlap_p999_us: quantile_us(&over_ns, 0.999),
        overlap_max_us: over_ns.last().map_or(0.0, |&n| n as f64 / 1e3),
        sync_wa: sync.metrics.wa(),
        overlap_wa: over.metrics.wa(),
        jobs1_bit_identical: over_j1.metrics == sync.metrics,
    }
}

struct PipelineRun<'a> {
    cfg: LssConfig,
    trace: &'a [TraceRecord],
    /// `Some(n)` replays through `n`-op [`Lss::apply_ops`] slices;
    /// `None` submits one op at a time via `write_request`.
    batch: Option<usize>,
    /// Enable the op-clocked per-stage cost profiler.
    profile: bool,
}

struct PipelineOut {
    wall_ms: f64,
    metrics: LssMetrics,
    memory_bytes: u64,
    stages: Option<StageCosts>,
}

impl PolicyVisitor<PipelineOut> for PipelineRun<'_> {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> PipelineOut {
        let cfg = self.cfg.with_stage_costs(self.profile);
        let mut engine = Lss::builder(policy, CountingArray::new(cfg.array_config()))
            .config(cfg)
            .gc_select(GcSelection::Greedy)
            .build();
        let t0 = Instant::now();
        match self.batch {
            None => {
                for rec in self.trace {
                    engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
                }
            }
            Some(n) => {
                let mut buf: Vec<HostOp> = Vec::with_capacity(n);
                for rec in self.trace {
                    buf.push(HostOp::write(rec.ts_us, rec.lba, rec.num_blocks));
                    if buf.len() == n {
                        engine.apply_ops(&buf);
                        buf.clear();
                    }
                }
                engine.apply_ops(&buf);
            }
        }
        engine.flush_all();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        PipelineOut {
            wall_ms,
            metrics: engine.metrics().clone(),
            memory_bytes: engine.memory_bytes() as u64,
            stages: engine.stage_costs().copied(),
        }
    }
}

/// Fill a [`BlockIndex`] densely and compare its measured bytes per
/// mapped block against the legacy enum-per-entry cost.
fn index_footprint() -> IndexFootprint {
    const BLOCKS: u64 = 1 << 16;
    let mut idx = BlockIndex::default();
    for lba in 0..BLOCKS {
        idx.set(lba, BlockEntry::Durable { seg: (lba / 512) as u32, off: (lba % 512) as u32 });
    }
    let packed = idx.memory_bytes() as f64 / idx.len().max(1) as f64;
    let legacy = std::mem::size_of::<BlockEntry>() as f64;
    IndexFootprint {
        blocks: BLOCKS,
        packed_bytes_per_block: packed,
        legacy_bytes_per_block: legacy,
        reduction_pct: 100.0 * (1.0 - packed / legacy),
    }
}

/// The batched pipeline point: four replays of one workload — per-op and
/// batched, each unprofiled (timed) and profiled (stage-attributed) —
/// plus the packed-index footprint.
pub fn measure_pipeline(quick: bool) -> PipelineBench {
    const BATCH: usize = 256;
    let w: &Workload = if quick { &QUICK } else { &WORKLOADS[0] };
    let cfg = ReplayConfig::for_volume(w.user_blocks, GcSelection::Greedy).lss;
    let trace = trace_of(w);
    let run = |batch: Option<usize>, profile: bool| {
        with_policy(Scheme::Adapt, &cfg, PipelineRun { cfg, trace: &trace, batch, profile })
    };
    let per_op = run(None, false);
    let batched = run(Some(BATCH), false);
    let per_op_prof = run(None, true);
    let batched_prof = run(Some(BATCH), true);
    let per_op_stages = per_op_prof.stages.as_ref().expect("profiled run records stage costs");
    let batched_stages = batched_prof.stages.as_ref().expect("profiled run records stage costs");
    PipelineBench {
        workload: w.name.to_string(),
        batch: BATCH,
        per_op_wall_ms: per_op.wall_ms,
        batched_wall_ms: batched.wall_ms,
        speedup: per_op.wall_ms / batched.wall_ms,
        per_op_stage_ns: StageNsPerOp::of(per_op_stages),
        batched_stage_ns: StageNsPerOp::of(batched_stages),
        batched_bit_identical: batched.metrics == per_op.metrics
            && batched.memory_bytes == per_op.memory_bytes,
        profiled_bit_identical: per_op_prof.metrics == per_op.metrics
            && batched_prof.metrics == per_op.metrics,
        index: index_footprint(),
    }
}

/// Suite-sweep wall time at `jobs = 1`, `2`, and all cores (deduplicated
/// when the machine has fewer), each rung bit-identical by the pool's
/// determinism contract (asserted by `perf::measure_sweep`).
pub fn measure_jobs_ladder(quick: bool) -> Vec<JobsPoint> {
    let (volumes, requests) = if quick { (3, 4_000) } else { (8, 20_000) };
    let suite = WorkloadSuite::generate_n(SuiteKind::Ali, 0xADA7, volumes);
    let all = rayon::current_num_threads().max(2);
    let mut rungs = vec![1usize, 2, all];
    rungs.dedup();
    let mut wall1 = 0.0f64;
    rungs
        .into_iter()
        .map(|jobs| {
            let t0 = Instant::now();
            let r = rayon::with_jobs(jobs, || {
                run_suite(Scheme::Adapt, GcSelection::Greedy, &suite, Some(requests))
            });
            black_box(&r);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if jobs == 1 {
                wall1 = wall_ms;
            }
            JobsPoint { jobs, wall_ms, speedup_vs_1: wall1 / wall_ms }
        })
        .collect()
}

/// Run every hotpath microbench. `quick` is CI-smoke sizing.
pub fn run(quick: bool) -> HotpathBench {
    HotpathBench {
        cpu: cpu_features::get().summary(),
        xor_64k: bench_xor(quick),
        parity_into: bench_parity_into(quick),
        index_batch: bench_index_batch(quick),
        copy: measure_copy(quick),
        gc_overlap: measure_gc_overlap(quick),
        pipeline: measure_pipeline(quick),
        jobs_ladder: measure_jobs_ladder(quick),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_ladder_orders_as_expected() {
        let p = bench_xor(true);
        assert!(p.simd_gib_s > 0.0 && p.scalar_wide_gib_s > 0.0 && p.scalar_byte_gib_s > 0.0);
        // The dispatched kernel must clearly beat the byte-serial
        // reference even in unoptimized/jittery CI builds; the ≥4×
        // headline is read off release gate runs.
        assert!(p.speedup_vs_byte > 2.0, "simd {}x byte-serial", p.speedup_vs_byte);
        // And it must not lose to the autovectorized word-scalar by more
        // than noise (both ride the memory bus at chunk size).
        assert!(p.speedup_vs_wide > 0.6, "simd {}x word-scalar", p.speedup_vs_wide);
    }

    #[test]
    fn copy_traffic_is_reduced_vs_legacy() {
        let c = measure_copy(true);
        assert!(c.copy_bytes > 0, "parity seeding still copies");
        assert!(c.copy_bytes < c.legacy_equiv_copy_bytes);
        assert!(c.reduction_pct > 50.0, "reduction {}%", c.reduction_pct);
    }

    #[test]
    fn gc_overlap_point_holds_contract() {
        let g = measure_gc_overlap(true);
        assert!(g.jobs1_bit_identical, "jobs=1 must collapse to sync GC");
        assert!(g.sync_wall_ms > 0.0 && g.overlap_wall_ms > 0.0);
        assert!(g.sync_wa >= 1.0 && g.overlap_wa >= 1.0);
        assert!(g.sync_p999_us >= g.sync_p99_us);
    }

    #[test]
    fn jobs_ladder_covers_one_two_all() {
        let l = measure_jobs_ladder(true);
        assert!(l.len() >= 2);
        assert_eq!(l[0].jobs, 1);
        assert_eq!(l[1].jobs, 2);
        assert!(l.iter().all(|p| p.wall_ms > 0.0 && p.speedup_vs_1 > 0.0));
    }

    #[test]
    fn pipeline_point_holds_contract() {
        // No wall-clock ratio assertion: like the index-batch point, the
        // batching win is only meaningful on release gate runs; the
        // contracts below hold in any build.
        let p = measure_pipeline(true);
        assert!(p.batched_bit_identical, "apply_ops must reproduce the per-op replay exactly");
        assert!(p.profiled_bit_identical, "the stage profiler must not perturb results");
        assert!(p.per_op_stage_ns.total > 0.0 && p.batched_stage_ns.total > 0.0);
        assert!(p.per_op_wall_ms > 0.0 && p.batched_wall_ms > 0.0);
        assert!(
            p.index.reduction_pct >= 40.0,
            "packed index must drop >=40% bytes/block (got {:.1}%: {:.2} vs {:.2})",
            p.index.reduction_pct,
            p.index.packed_bytes_per_block,
            p.index.legacy_bytes_per_block,
        );
    }

    #[test]
    fn index_batch_point_is_sane() {
        // No ratio assertion: unoptimized test builds invert the two
        // paths' relative cost (the batch's max-scan pass is not inlined
        // away), so the ratio is only meaningful on release gate runs.
        let p = bench_index_batch(true);
        assert!(p.fast > 0.0 && p.slow > 0.0);
        assert!(p.speedup > 0.0);
    }
}
