//! The `saturation` bench: shard-scaling sweep of the serving layer.
//!
//! Drives the seeded medium multi-volume replay (256 Ki blocks, 1 Mi
//! ops, zipf 0.9 — the serving twin of the perf harness's `medium`
//! workload) through sharded servers at every (shard count × client
//! threads) point and records two throughput numbers per point:
//!
//! * **wall kops/s** — ops over wall-clock time. On a multi-core host
//!   this is the number a deployment sees; on a core-starved CI box it
//!   measures the scheduler, not the engine.
//! * **critical-path kops/s** — ops over the *maximum* per-shard busy
//!   time (the wall time each shard thread spends applying, committing,
//!   and collecting, excluding blocking waits). This is the array's
//!   throughput with one core per shard, independent of how many cores
//!   the measuring host actually has, so the shard-scaling gate compares
//!   it rather than wall clock.
//!
//! The sweep also re-checks the serving determinism contract at bench
//! scale: for each shard count, replays submitted by different
//! client-thread counts must produce byte-identical telemetry (see
//! `adapt_sim::serve`). A lost completion, an unbalanced queue, or a
//! fail-stopped shard aborts the run — the process result is the gate.

use adapt_sim::{run_serve_replay, Scheme, ServeReplayConfig, ServeReplayResult};
use serde::Serialize;

/// One measured (shards × client threads) sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SaturationPoint {
    /// Shard count of the server.
    pub shards: u32,
    /// Client submission threads.
    pub clients: usize,
    /// Ops submitted (all completed — losses abort the run).
    pub ops: u64,
    /// Wall-clock time of the replay (ms).
    pub wall_ms: f64,
    /// Wall-clock throughput (kops/s).
    pub wall_kops: f64,
    /// Critical-path throughput (kops/s): ops over max shard busy time.
    pub critical_path_kops: f64,
    /// Busy time of the busiest shard (ms).
    pub max_shard_busy_ms: f64,
    /// Busy rejections the submitters retried (backpressure pressure).
    pub busy_retries: u64,
    /// Queue accounting balanced on every shard (always true in a
    /// recorded report — imbalance aborts).
    pub balanced: bool,
    /// FNV-1a hash of the deterministic result slice (telemetry,
    /// per-volume metrics, applied-op counts), hex. Equal across client
    /// counts at the same shard count.
    pub determinism_fnv: String,
}

/// The `serving` section of `BENCH_perf.json` (schema 4): the full sweep
/// plus the two derived scaling ratios the acceptance gate reads.
#[derive(Debug, Clone, Serialize)]
pub struct SaturationBench {
    /// Workload replayed ("medium" or the `--quick` smoke size).
    pub workload: String,
    /// Placement scheme every shard ran.
    pub scheme: String,
    /// Shard counts swept.
    pub shard_counts: Vec<u32>,
    /// Client-thread counts swept.
    pub client_counts: Vec<usize>,
    /// Every sweep point, in (shards, clients) order.
    pub points: Vec<SaturationPoint>,
    /// Whether, for every shard count, all client-thread counts produced
    /// byte-identical deterministic results. Must always be true.
    pub bit_identical_across_clients: bool,
    /// Critical-path throughput ratio, max shards vs 1 shard, at the
    /// highest client count (the machine-independent scaling number).
    pub scaling_critical_path: f64,
    /// Wall-clock throughput ratio over the same pair (host-dependent;
    /// collapses toward 1 on a single-core runner).
    pub scaling_wall: f64,
}

/// FNV-1a over the deterministic result slice, rendered as hex. The full
/// serialized key is megabytes at medium scale; the report stores the
/// fingerprint, the equality check runs on the fingerprints.
fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn point_of(r: &ServeReplayResult) -> SaturationPoint {
    let max_busy = r.shard_busy_ns.iter().copied().max().unwrap_or(0);
    SaturationPoint {
        shards: r.shards,
        clients: r.clients,
        ops: r.ops,
        wall_ms: r.elapsed_secs * 1e3,
        wall_kops: r.wall_kops(),
        critical_path_kops: r.critical_path_kops(),
        max_shard_busy_ms: max_busy as f64 / 1e6,
        busy_retries: r.busy_retries,
        balanced: r.balanced,
        determinism_fnv: fnv1a(r.determinism_key().as_bytes()),
    }
}

/// Run the sweep. `quick` shrinks it to the CI smoke size (shards
/// {1, 2} × clients {1, 4} on the small replay); the gate configuration
/// sweeps shards {1, 2, 4} × clients {1, 8} on the medium replay.
///
/// Panics on any lost completion, completion error, queue-accounting
/// imbalance, fail-stopped shard, or determinism divergence — CI runs
/// the bin directly, so a panic *is* the gate tripping.
pub fn run(quick: bool) -> SaturationBench {
    let (shard_counts, client_counts): (Vec<u32>, Vec<usize>) =
        if quick { (vec![1, 2], vec![1, 4]) } else { (vec![1, 2, 4], vec![1, 8]) };
    let scheme = Scheme::Adapt;
    let max_clients = *client_counts.last().expect("client counts");
    let max_shards = *shard_counts.last().expect("shard counts");

    let mut points = Vec::new();
    let mut bit_identical = true;
    for &shards in &shard_counts {
        let mut group_fnv: Option<String> = None;
        for &clients in &client_counts {
            let cfg = if quick {
                ServeReplayConfig::quick(scheme, shards, clients)
            } else {
                ServeReplayConfig::medium(scheme, shards, clients)
            };
            let r = run_serve_replay(&cfg);
            assert_eq!(
                r.completed_ok, cfg.ops,
                "saturation {shards}x{clients}: lost or errored completions \
                 (ok {}, err {})",
                r.completed_ok, r.completed_err
            );
            assert!(r.balanced, "saturation {shards}x{clients}: queue accounting imbalance");
            assert!(!r.any_failed, "saturation {shards}x{clients}: a shard fail-stopped");
            let p = point_of(&r);
            match &group_fnv {
                None => group_fnv = Some(p.determinism_fnv.clone()),
                Some(expect) => {
                    if *expect != p.determinism_fnv {
                        bit_identical = false;
                    }
                }
            }
            points.push(p);
        }
    }
    assert!(
        bit_identical,
        "saturation: replays diverged across client-thread counts at a fixed shard count"
    );

    let cp_at = |shards: u32| {
        points.iter().find(|p| p.shards == shards && p.clients == max_clients).expect("sweep point")
    };
    let (base, top) = (cp_at(1), cp_at(max_shards));
    let scaling_critical_path = top.critical_path_kops / base.critical_path_kops;
    let scaling_wall = top.wall_kops / base.wall_kops;
    SaturationBench {
        workload: if quick { "quick".into() } else { "medium".into() },
        scheme: scheme.name().to_string(),
        shard_counts,
        client_counts,
        points,
        bit_identical_across_clients: bit_identical,
        scaling_critical_path,
        scaling_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_hex() {
        assert_eq!(fnv1a(b""), "cbf29ce484222325");
        assert_eq!(fnv1a(b"a").len(), 16);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn quick_sweep_is_deterministic_and_positive() {
        let b = run(true);
        assert_eq!(b.points.len(), b.shard_counts.len() * b.client_counts.len());
        assert!(b.bit_identical_across_clients);
        assert!(b.points.iter().all(|p| p.critical_path_kops > 0.0 && p.wall_kops > 0.0));
        assert!(b.scaling_critical_path > 0.0);
        // The ≥3x shard-scaling gate applies to the medium release run
        // (the `saturation` bin without --quick); the smoke sweep only
        // proves the accounting and determinism contracts.
    }
}
