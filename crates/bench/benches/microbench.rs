//! Criterion micro-benchmarks over the hot paths:
//!
//! * per-policy placement decision (the per-block critical path),
//! * the RA identifier lookup (the paper's "overhead of nanoseconds"
//!   claim in §3.4),
//! * reuse-distance tree updates and ghost-set steps (§3.2 machinery),
//! * GC victim selection: the bucketed index vs the naive full scan,
//! * FxHash vs SipHash map lookups on LBA keys,
//! * RAID-5 parity over a full stripe,
//! * CRC32C over a 64 KiB chunk: SSE4.2 hardware vs slicing-by-8 software,
//! * the work-stealing pool at jobs=1 vs all cores on a synthetic sweep,
//! * an end-to-end engine block write.

use adapt_array::{parity, CountingArray};
use adapt_core::demotion::RaIdentifier;
use adapt_core::distance::DistanceTree;
use adapt_core::ghost::GhostSet;
use adapt_core::Adapt;
use adapt_lss::segment::Segment;
use adapt_lss::types::Slot;
use adapt_lss::{
    FxHashMap, GcSelection, Lss, LssConfig, PlacementPolicy, PolicyCtx, SegmentBuckets,
};
use adapt_placement::{Dac, Mida, SepBit, SepGc, Warcip};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn cfg() -> LssConfig {
    LssConfig { user_blocks: 16 * 1024, op_ratio: 0.4, ..Default::default() }
}

fn ctx() -> PolicyCtx {
    PolicyCtx {
        user_bytes: 1 << 30,
        now_us: 1_000_000,
        groups: vec![Default::default(); 8],
        segment_blocks: 128,
        block_bytes: 4096,
        events_enabled: false,
    }
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_user");
    let context = ctx();
    macro_rules! bench_policy {
        ($name:literal, $policy:expr) => {
            group.bench_function($name, |b| {
                let mut p = $policy;
                // Warm the per-LBA state.
                for lba in 0..16_384u64 {
                    p.place_user(&context, lba);
                }
                let mut lba = 0u64;
                b.iter(|| {
                    lba = (lba + 7919) % 16_384;
                    black_box(p.place_user(&context, black_box(lba)))
                });
            });
        };
    }
    bench_policy!("SepGC", SepGc::new());
    bench_policy!("DAC", Dac::new());
    bench_policy!("WARCIP", Warcip::new());
    bench_policy!("MiDA", Mida::new());
    bench_policy!("SepBIT", SepBit::new());
    bench_policy!("ADAPT", Adapt::new(&cfg()));
    group.finish();
}

fn bench_ra_identifier(c: &mut Criterion) {
    let mut ra = RaIdentifier::new(vec![4, 5], 4, 4096, 2);
    for lba in 0..20_000u64 {
        ra.observe_migration(lba % 4096, 4, 4);
    }
    c.bench_function("ra_identifier_lookup", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 97) % 8192;
            black_box(ra.check(black_box(lba)))
        });
    });
}

fn bench_distance_tree(c: &mut Criterion) {
    c.bench_function("distance_tree_access", |b| {
        let mut tree = DistanceTree::new();
        for lba in 0..4096u64 {
            tree.access(lba);
        }
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 613) % 4096;
            black_box(tree.access(black_box(lba)))
        });
    });
}

fn bench_ghost_set(c: &mut Criterion) {
    c.bench_function("ghost_set_write", |b| {
        let mut ghost = GhostSet::new(1 << 21, 8, 4, 800, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ghost.write(black_box(i % 512), Some((i * 4096) % (1 << 22)), i * 100);
        });
    });
}

/// A sealed-segment table with a spread of utilizations, as GC would see.
fn sealed_table(n: u32, cap: u32) -> Vec<Segment> {
    (0..n)
        .map(|id| {
            let mut s = Segment::new(id, cap);
            s.open(0, id as u64 * 17, 0);
            for i in 0..cap {
                s.append_slot(Slot::Block(i as u64));
            }
            s.seal();
            s.valid_blocks = (id * 31 + 7) % (cap + 1);
            s
        })
        .collect()
}

fn bench_gc_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_select");
    let segments = sealed_table(4096, 128);
    for policy in [GcSelection::Greedy, GcSelection::CostBenefit] {
        group.bench_function(&format!("naive_scan_4096/{}", policy.name()), |b| {
            b.iter(|| black_box(policy.select(black_box(&segments), 1 << 30)));
        });
        group.bench_function(&format!("bucketed_4096/{}", policy.name()), |b| {
            let mut buckets = SegmentBuckets::new(128, segments.len());
            for s in &segments {
                buckets.insert(s.id, s.valid_blocks, s.created_user_bytes);
            }
            b.iter(|| black_box(buckets.select(black_box(policy), 1 << 30)));
        });
    }
    // The maintenance side of the bargain: one invalidate + membership churn.
    group.bench_function("bucketed_churn_4096", |b| {
        let mut buckets = SegmentBuckets::new(128, segments.len());
        for s in &segments {
            buckets.insert(s.id, s.valid_blocks, s.created_user_bytes);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4096;
            if buckets.tracked_valid(i).unwrap_or(0) > 0 {
                buckets.note_invalidate(i);
            } else {
                buckets.remove(i);
                buckets.insert(i, (i * 31 + 7) % 129, i as u64 * 17);
            }
        });
    });
    group.finish();
}

fn bench_fxhash(c: &mut Criterion) {
    let mut group = c.benchmark_group("lba_map_lookup");
    let mut sip: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
    for lba in 0..65_536u64 {
        sip.insert(lba * 7, lba as u32);
        fx.insert(lba * 7, lba as u32);
    }
    group.bench_function("siphash", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 7919) % 65_536;
            black_box(sip.get(&(lba * 7)))
        });
    });
    group.bench_function("fxhash", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 7919) % 65_536;
            black_box(fx.get(&(lba * 7)))
        });
    });
    group.finish();
}

fn bench_parity(c: &mut Criterion) {
    let chunks: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 64 * 1024]).collect();
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    c.bench_function("raid5_parity_64k_stripe", |b| {
        b.iter(|| black_box(parity::compute_parity(black_box(&refs))));
    });
}

fn bench_crc32c(c: &mut Criterion) {
    use adapt_array::crc;
    let mut group = c.benchmark_group("crc32c_64k_chunk");
    let data = {
        let mut v = vec![0u8; 64 * 1024];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i * 31 + 7) as u8;
        }
        v
    };
    let label = if crc::hw_available() { "hardware_sse42" } else { "hardware_unavailable" };
    group.bench_function(label, |b| b.iter(|| black_box(crc::crc32c(black_box(&data)))));
    group.bench_function("software_slicing8", |b| {
        b.iter(|| black_box(crc::crc32c_soft(black_box(&data))))
    });
    group.finish();
}

fn bench_par_sweep(c: &mut Criterion) {
    // Scaling of the pool itself on an embarrassingly parallel kernel:
    // 64 seeded pseudo-replay cells at jobs=1 vs all cores.
    use rayon::prelude::*;
    let kernel = |seed: u64| {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    };
    let mut group = c.benchmark_group("par_sweep_64_cells");
    group.bench_function("jobs_1", |b| {
        b.iter(|| rayon::with_jobs(1, || (0u64..64).into_par_iter().map(kernel).sum::<u64>()))
    });
    group.bench_function("jobs_all", |b| {
        b.iter(|| (0u64..64).into_par_iter().map(kernel).sum::<u64>())
    });
    group.finish();
}

fn bench_engine_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_block_write");
    group.bench_function("adapt_dense", |b| {
        b.iter_batched(
            || {
                let cfg = cfg();
                let mut e = Lss::builder(Adapt::new(&cfg), CountingArray::new(cfg.array_config()))
                    .config(cfg)
                    .gc_select(GcSelection::Greedy)
                    .build();
                for lba in 0..16_384u64 {
                    e.write(lba, lba);
                }
                e
            },
            |mut e| {
                let mut ts = 20_000u64;
                for i in 0..4096u64 {
                    ts += 2;
                    e.write(ts, (i * 7919) % 16_384);
                }
                e
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_placement,
    bench_ra_identifier,
    bench_distance_tree,
    bench_ghost_set,
    bench_gc_select,
    bench_fxhash,
    bench_parity,
    bench_crc32c,
    bench_par_sweep,
    bench_engine_write
);
criterion_main!(benches);
