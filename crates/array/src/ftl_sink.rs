//! Array sink backed by per-device FTL models — the measurement rig for
//! §3.1's multi-stream claim.
//!
//! Each engine chunk flush carries its *physical* address (segment ×
//! chunk-in-segment), so the member SSDs observe real overwrites when
//! segments are reused after GC. Chunks tagged with different groups are
//! issued on different device streams (group `g` → stream `g + 1`; stream
//! 0 is the device's internal GC stream), or all on one stream when
//! multi-stream is disabled — the difference in the devices' internal WA
//! is exactly the benefit the paper attributes to one-to-one group/stream
//! mapping.
//!
//! Parity modeling note: the stripe's parity chunk is rewritten when the
//! stripe's last data column is written. Stripes that straddle a segment
//! boundary are approximated the same way (log-structured arrays align
//! segments to stripes in deployment; our default geometry does not, and
//! the approximation only affects parity-page churn).

use crate::config::ArrayConfig;
use crate::counters::ArrayStats;
use crate::ftl::{FtlConfig, FtlDevice, FtlStats};
use crate::layout::{ChunkLocation, Raid5Layout};
use crate::sink::{ArraySink, ChunkFlush};

/// RAID-5 array whose members are FTL-modeled SSDs.
#[derive(Debug, Clone)]
pub struct FtlArray {
    layout: Raid5Layout,
    stats: ArrayStats,
    devices: Vec<FtlDevice>,
    /// Pages per chunk.
    pages_per_chunk: u32,
    /// Chunks per segment (to decode physical addresses).
    chunks_per_segment: u32,
    /// Data columns per stripe.
    data_columns: u64,
    /// Whether groups map to device streams (true) or all writes share one
    /// stream (false).
    multi_stream: bool,
}

impl FtlArray {
    /// Create an FTL-backed array.
    ///
    /// * `total_segments` — the engine's physical segment count (bounds the
    ///   address space each device must map).
    /// * `chunks_per_segment` — the engine's segment geometry.
    /// * `streams` — device stream count (≥ 2 to separate device-GC from
    ///   host writes; 1 disables separation entirely).
    pub fn new(
        cfg: ArrayConfig,
        total_segments: u32,
        chunks_per_segment: u32,
        ftl_page_bytes: u64,
        streams: usize,
        multi_stream: bool,
    ) -> Self {
        cfg.validate();
        assert_eq!(cfg.chunk_bytes % ftl_page_bytes, 0, "chunk must be whole pages");
        let pages_per_chunk = (cfg.chunk_bytes / ftl_page_bytes) as u32;
        let data_columns = cfg.data_columns() as u64;
        let total_chunks = total_segments as u64 * chunks_per_segment as u64;
        // Each device holds one chunk (data or parity) per stripe.
        let stripes = total_chunks.div_ceil(data_columns) + 1;
        let logical_pages = stripes * pages_per_chunk as u64;
        // Scale NAND geometry to the (possibly tiny, simulation-sized)
        // device: enough erase blocks for GC dynamics, and enough
        // over-provisioning to cover the per-stream open blocks plus the
        // GC watermark.
        let pages_per_block = (logical_pages / 192).clamp(8, 64) as u32;
        let gc_low_water = 4;
        let min_spare_blocks = (gc_low_water + streams as u32 + 4) as u64;
        let min_op = min_spare_blocks as f64 * pages_per_block as f64 / logical_pages as f64;
        let ftl_cfg = FtlConfig {
            page_bytes: ftl_page_bytes,
            pages_per_block,
            logical_pages,
            op_ratio: (0.12f64).max(min_op * 1.1),
            streams,
            gc_low_water,
        };
        Self {
            layout: Raid5Layout::new(cfg),
            stats: ArrayStats::new(cfg.num_devices),
            devices: (0..cfg.num_devices).map(|i| FtlDevice::with_id(ftl_cfg, i)).collect(),
            pages_per_chunk,
            chunks_per_segment,
            data_columns,
            multi_stream,
        }
    }

    /// Per-device FTL statistics.
    pub fn ftl_stats(&self) -> Vec<FtlStats> {
        self.devices.iter().map(|d| *d.stats()).collect()
    }

    /// Aggregate in-device WA across members.
    pub fn in_device_wa(&self) -> f64 {
        let host: u64 = self.devices.iter().map(|d| d.stats().host_pages).sum();
        let migrated: u64 = self.devices.iter().map(|d| d.stats().migrated_pages).sum();
        if host == 0 {
            return 1.0;
        }
        1.0 + migrated as f64 / host as f64
    }

    fn stream_for(&self, group: u8) -> usize {
        if self.multi_stream {
            group as usize + 1 // stream 0 is the device-GC stream
        } else {
            1
        }
    }
}

impl ArraySink for FtlArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        let cfg = *self.layout.config();
        debug_assert_eq!(flush.total_bytes(), cfg.chunk_bytes);
        let addr = flush.physical_chunk_addr(self.chunks_per_segment);
        let stripe = addr / self.data_columns;
        let column = (addr % self.data_columns) as usize;
        let parity_dev = self.layout.parity_device(stripe);
        let device = (parity_dev + 1 + column) % cfg.num_devices;
        let loc = ChunkLocation { stripe, device, column };

        let stream = self.stream_for(flush.group);
        let lpn = stripe * self.pages_per_chunk as u64;
        self.devices[device].write_pages(lpn, self.pages_per_chunk, stream);

        let dev = &mut self.stats.devices[device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }

        // Parity rewrite when the stripe's last data column lands.
        if column as u64 == self.data_columns - 1 {
            self.devices[parity_dev].write_pages(lpn, self.pages_per_chunk, stream);
            let p = &mut self.stats.devices[parity_dev];
            p.parity_bytes += cfg.chunk_bytes;
            p.chunk_writes += 1;
            self.stats.stripes_completed += 1;
        }
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.layout.config()
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(multi_stream: bool) -> FtlArray {
        FtlArray::new(ArrayConfig::default(), 64, 8, 16 * 1024, 8, multi_stream)
    }

    fn flush(group: u8, seg: u32, idx: u32) -> ChunkFlush {
        ChunkFlush {
            user_bytes: 64 * 1024,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group,
            seg,
            chunk_in_seg: idx,
        }
    }

    #[test]
    fn physical_addresses_map_deterministically() {
        let mut a = array(true);
        let l1 = a.write_chunk(flush(0, 0, 0));
        let mut b = array(true);
        let l2 = b.write_chunk(flush(0, 0, 0));
        assert_eq!(l1, l2);
    }

    #[test]
    fn rewriting_a_segment_overwrites_device_pages() {
        let mut a = array(true);
        // Write segment 0 twice (simulating reuse after GC).
        for round in 0..2 {
            for idx in 0..8 {
                a.write_chunk(flush(0, 0, idx));
            }
            let _ = round;
        }
        // Host pages doubled but the devices' logical footprint did not.
        let host: u64 = a.ftl_stats().iter().map(|s| s.host_pages).sum();
        // 8 data chunks × 4 pages × 2 rounds, plus 2 completed stripes'
        // parity (4 pages each) per round; the straddling third stripe
        // never completes within one segment.
        assert_eq!(host, 2 * 8 * 4 + 2 * 2 * 4);
    }

    #[test]
    fn in_device_wa_starts_at_one() {
        let mut a = array(true);
        for seg in 0..4u32 {
            for idx in 0..8 {
                a.write_chunk(flush(0, seg, idx));
            }
        }
        assert!((a.in_device_wa() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn groups_land_on_distinct_streams() {
        let mut multi = array(true);
        let mut single = array(false);
        assert_eq!(multi.stream_for(3), 4);
        assert_eq!(single.stream_for(3), 1);
        // Both accept identical flush sequences.
        for seg in 0..8u32 {
            for idx in 0..8 {
                multi.write_chunk(flush((seg % 4) as u8, seg, idx));
                single.write_chunk(flush((seg % 4) as u8, seg, idx));
            }
        }
        assert_eq!(multi.stats().data_bytes(), single.stats().data_bytes());
    }

    #[test]
    #[should_panic]
    fn rejects_non_page_aligned_chunk_size() {
        FtlArray::new(ArrayConfig::new(4, 65536), 16, 8, 10_000, 8, true);
    }
}
