//! RAID-5 chunk-to-device mapping (left-symmetric rotation).
//!
//! In mdraid's default `left-symmetric` RAID-5 layout, the parity chunk of
//! stripe `s` lives on device `(n - 1 - s) mod n`, and data chunks fill the
//! remaining devices starting *after* the parity device, wrapping around.
//! This spreads both parity and data evenly, so sequential appends load all
//! spindles uniformly — the property the counters tests assert.

use crate::config::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Physical location of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Stripe index (row).
    pub stripe: u64,
    /// Device index the chunk lands on.
    pub device: usize,
    /// Column within the stripe's data area (0..data_columns), i.e. the
    /// logical position of this chunk among the stripe's data chunks.
    pub column: usize,
}

/// Left-symmetric RAID-5 address mapping.
#[derive(Debug, Clone, Copy)]
pub struct Raid5Layout {
    cfg: ArrayConfig,
}

impl Raid5Layout {
    /// Build a layout over the given geometry.
    pub fn new(cfg: ArrayConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The geometry.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Device holding the parity chunk of `stripe`.
    pub fn parity_device(&self, stripe: u64) -> usize {
        let n = self.cfg.num_devices as u64;
        ((n - 1) - (stripe % n)) as usize
    }

    /// Map a logical chunk sequence number (0, 1, 2, … as the log appends)
    /// to its physical location.
    pub fn locate(&self, chunk_seq: u64) -> ChunkLocation {
        let k = self.cfg.data_columns() as u64;
        let stripe = chunk_seq / k;
        let column = (chunk_seq % k) as usize;
        let parity = self.parity_device(stripe);
        // Left-symmetric: data columns start on the device after parity.
        let device = (parity + 1 + column) % self.cfg.num_devices;
        ChunkLocation { stripe, device, column }
    }

    /// Logical chunk sequence number range `[start, end)` belonging to
    /// `stripe`.
    pub fn stripe_chunks(&self, stripe: u64) -> std::ops::Range<u64> {
        let k = self.cfg.data_columns() as u64;
        stripe * k..(stripe + 1) * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Raid5Layout {
        Raid5Layout::new(ArrayConfig::new(4, 65536))
    }

    #[test]
    fn parity_rotates_over_all_devices() {
        let l = layout();
        let devices: Vec<usize> = (0..4).map(|s| l.parity_device(s)).collect();
        assert_eq!(devices, vec![3, 2, 1, 0]);
        assert_eq!(l.parity_device(4), 3); // wraps
    }

    #[test]
    fn data_never_lands_on_parity_device() {
        let l = layout();
        for seq in 0..1000 {
            let loc = l.locate(seq);
            assert_ne!(loc.device, l.parity_device(loc.stripe), "chunk {seq}");
        }
    }

    #[test]
    fn three_data_chunks_per_stripe() {
        let l = layout();
        assert_eq!(l.locate(0).stripe, 0);
        assert_eq!(l.locate(2).stripe, 0);
        assert_eq!(l.locate(3).stripe, 1);
        assert_eq!(l.stripe_chunks(2), 6..9);
    }

    #[test]
    fn columns_within_stripe_are_distinct_devices() {
        let l = layout();
        for stripe in 0..100u64 {
            let mut devices: Vec<usize> =
                l.stripe_chunks(stripe).map(|seq| l.locate(seq).device).collect();
            devices.push(l.parity_device(stripe));
            devices.sort_unstable();
            assert_eq!(devices, vec![0, 1, 2, 3], "stripe {stripe}");
        }
    }

    #[test]
    fn sequential_appends_balance_devices() {
        // Over many whole stripes every device receives the same number of
        // chunks (data + parity combined).
        let l = layout();
        let mut per_device = [0u64; 4];
        for stripe in 0..400u64 {
            for seq in l.stripe_chunks(stripe) {
                per_device[l.locate(seq).device] += 1;
            }
            per_device[l.parity_device(stripe)] += 1;
        }
        assert!(per_device.iter().all(|&c| c == per_device[0]), "{per_device:?}");
    }

    #[test]
    fn five_device_layout_consistent() {
        let l = Raid5Layout::new(ArrayConfig::new(5, 65536));
        for seq in 0..500 {
            let loc = l.locate(seq);
            assert!(loc.device < 5);
            assert!(loc.column < 4);
            assert_ne!(loc.device, l.parity_device(loc.stripe));
        }
    }
}
