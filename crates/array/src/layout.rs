//! Chunk-to-device mapping (left-symmetric rotation, generalized k + m).
//!
//! In mdraid's default `left-symmetric` RAID-5 layout, the parity chunk of
//! stripe `s` lives on device `(n - 1 - s) mod n`, and data chunks fill the
//! remaining devices starting *after* the parity device, wrapping around.
//! This spreads both parity and data evenly, so sequential appends load all
//! spindles uniformly — the property the counters tests assert.
//!
//! With `m` parity chunks per stripe ([`crate::ArrayConfig::parity_devices`])
//! the same rotation generalizes: parity chunk `j` of stripe `s` lives on
//! device `(n - 1 - (s mod n) + j) mod n`, and the `k = n - m` data columns
//! follow after the last parity device. `m = 1` reproduces the original
//! RAID-5 mapping exactly, so every address computed before this layer
//! generalized is unchanged.

use crate::config::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Physical location of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Stripe index (row).
    pub stripe: u64,
    /// Device index the chunk lands on.
    pub device: usize,
    /// Column within the stripe's data area (0..data_columns), i.e. the
    /// logical position of this chunk among the stripe's data chunks.
    pub column: usize,
}

/// What role a device plays within one stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripeRole {
    /// Data column `c` (shard index `c`).
    Data(usize),
    /// Parity chunk `j` (shard index `k + j`).
    Parity(usize),
}

/// Left-symmetric address mapping for a `k + m` array.
#[derive(Debug, Clone, Copy)]
pub struct StripeLayout {
    cfg: ArrayConfig,
}

/// The historical name of [`StripeLayout`]; `m = 1` behaves identically
/// to the original RAID-5-only implementation.
pub type Raid5Layout = StripeLayout;

impl StripeLayout {
    /// Build a layout over the given geometry.
    pub fn new(cfg: ArrayConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The geometry.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Device holding parity chunk 0 of `stripe` (the XOR/P chunk; the
    /// only parity device when `m = 1`).
    pub fn parity_device(&self, stripe: u64) -> usize {
        self.parity_device_j(stripe, 0)
    }

    /// Device holding parity chunk `j` of `stripe` (`j < m`).
    pub fn parity_device_j(&self, stripe: u64, j: usize) -> usize {
        debug_assert!(j < self.cfg.parity_devices);
        let n = self.cfg.num_devices as u64;
        (((n - 1) - (stripe % n)) as usize + j) % self.cfg.num_devices
    }

    /// The devices holding the `m` parity chunks of `stripe`, in parity
    /// row order.
    pub fn parity_devices(&self, stripe: u64) -> impl Iterator<Item = usize> + '_ {
        (0..self.cfg.parity_devices).map(move |j| self.parity_device_j(stripe, j))
    }

    /// Map a logical chunk sequence number (0, 1, 2, … as the log appends)
    /// to its physical location.
    pub fn locate(&self, chunk_seq: u64) -> ChunkLocation {
        let k = self.cfg.data_columns() as u64;
        self.locate_at(chunk_seq / k, (chunk_seq % k) as usize)
    }

    /// Physical location of data column `column` within `stripe`. Elastic
    /// stores address stripes directly through this (their chunk sequence
    /// numbers are offset by earlier geometry epochs).
    pub fn locate_at(&self, stripe: u64, column: usize) -> ChunkLocation {
        debug_assert!(column < self.cfg.data_columns());
        let base = self.parity_device_j(stripe, 0);
        // Left-symmetric: data columns start on the device after the last
        // parity device.
        let device = (base + self.cfg.parity_devices + column) % self.cfg.num_devices;
        ChunkLocation { stripe, device, column }
    }

    /// What `device` holds within `stripe`: a data column or a parity
    /// chunk.
    pub fn role_of(&self, stripe: u64, device: usize) -> StripeRole {
        let n = self.cfg.num_devices;
        let base = self.parity_device_j(stripe, 0);
        let offset = (device + n - base) % n;
        if offset < self.cfg.parity_devices {
            StripeRole::Parity(offset)
        } else {
            StripeRole::Data(offset - self.cfg.parity_devices)
        }
    }

    /// The Reed-Solomon shard index of `device` within `stripe`: data
    /// columns map to `0..k`, parity chunk `j` to `k + j`.
    pub fn shard_of(&self, stripe: u64, device: usize) -> usize {
        match self.role_of(stripe, device) {
            StripeRole::Data(c) => c,
            StripeRole::Parity(j) => self.cfg.data_columns() + j,
        }
    }

    /// Logical chunk sequence number range `[start, end)` belonging to
    /// `stripe`.
    pub fn stripe_chunks(&self, stripe: u64) -> std::ops::Range<u64> {
        let k = self.cfg.data_columns() as u64;
        stripe * k..(stripe + 1) * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StripeLayout {
        StripeLayout::new(ArrayConfig::new(4, 65536))
    }

    #[test]
    fn parity_rotates_over_all_devices() {
        let l = layout();
        let devices: Vec<usize> = (0..4).map(|s| l.parity_device(s)).collect();
        assert_eq!(devices, vec![3, 2, 1, 0]);
        assert_eq!(l.parity_device(4), 3); // wraps
    }

    #[test]
    fn data_never_lands_on_parity_device() {
        let l = layout();
        for seq in 0..1000 {
            let loc = l.locate(seq);
            assert_ne!(loc.device, l.parity_device(loc.stripe), "chunk {seq}");
        }
    }

    #[test]
    fn three_data_chunks_per_stripe() {
        let l = layout();
        assert_eq!(l.locate(0).stripe, 0);
        assert_eq!(l.locate(2).stripe, 0);
        assert_eq!(l.locate(3).stripe, 1);
        assert_eq!(l.stripe_chunks(2), 6..9);
    }

    #[test]
    fn columns_within_stripe_are_distinct_devices() {
        let l = layout();
        for stripe in 0..100u64 {
            let mut devices: Vec<usize> =
                l.stripe_chunks(stripe).map(|seq| l.locate(seq).device).collect();
            devices.push(l.parity_device(stripe));
            devices.sort_unstable();
            assert_eq!(devices, vec![0, 1, 2, 3], "stripe {stripe}");
        }
    }

    #[test]
    fn sequential_appends_balance_devices() {
        // Over many whole stripes every device receives the same number of
        // chunks (data + parity combined).
        let l = layout();
        let mut per_device = [0u64; 4];
        for stripe in 0..400u64 {
            for seq in l.stripe_chunks(stripe) {
                per_device[l.locate(seq).device] += 1;
            }
            per_device[l.parity_device(stripe)] += 1;
        }
        assert!(per_device.iter().all(|&c| c == per_device[0]), "{per_device:?}");
    }

    #[test]
    fn five_device_layout_consistent() {
        let l = StripeLayout::new(ArrayConfig::new(5, 65536));
        for seq in 0..500 {
            let loc = l.locate(seq);
            assert!(loc.device < 5);
            assert!(loc.column < 4);
            assert_ne!(loc.device, l.parity_device(loc.stripe));
        }
    }

    #[test]
    fn raid6_stripe_covers_every_device_once() {
        // 6+2: each stripe's 6 data + 2 parity chunks land on 8 distinct
        // devices.
        let l = StripeLayout::new(ArrayConfig::with_parity(8, 2, 65536));
        for stripe in 0..64u64 {
            let mut devices: Vec<usize> =
                l.stripe_chunks(stripe).map(|seq| l.locate(seq).device).collect();
            devices.extend(l.parity_devices(stripe));
            devices.sort_unstable();
            assert_eq!(devices, (0..8).collect::<Vec<_>>(), "stripe {stripe}");
        }
    }

    #[test]
    fn multi_parity_appends_balance_devices() {
        let l = StripeLayout::new(ArrayConfig::with_parity(7, 3, 65536));
        let mut per_device = [0u64; 7];
        for stripe in 0..700u64 {
            for seq in l.stripe_chunks(stripe) {
                per_device[l.locate(seq).device] += 1;
            }
            for p in l.parity_devices(stripe) {
                per_device[p] += 1;
            }
        }
        assert!(per_device.iter().all(|&c| c == per_device[0]), "{per_device:?}");
    }

    #[test]
    fn roles_and_shards_are_consistent() {
        for cfg in [ArrayConfig::new(4, 65536), ArrayConfig::with_parity(8, 2, 65536)] {
            let l = StripeLayout::new(cfg);
            let k = cfg.data_columns();
            for stripe in 0..50u64 {
                for seq in l.stripe_chunks(stripe) {
                    let loc = l.locate(seq);
                    assert_eq!(l.role_of(stripe, loc.device), StripeRole::Data(loc.column));
                    assert_eq!(l.shard_of(stripe, loc.device), loc.column);
                }
                for (j, p) in l.parity_devices(stripe).enumerate() {
                    assert_eq!(l.role_of(stripe, p), StripeRole::Parity(j));
                    assert_eq!(l.shard_of(stripe, p), k + j);
                }
            }
        }
    }

    #[test]
    fn m1_layout_is_byte_identical_to_historical_raid5() {
        // The pre-generalization mapping: parity at (n-1) - (s % n), data
        // starting one past it. Every address must be unchanged.
        let l = layout();
        for seq in 0..2000u64 {
            let loc = l.locate(seq);
            let stripe = seq / 3;
            let parity = (4 - 1 - (stripe % 4) as usize) % 4;
            assert_eq!(l.parity_device(stripe), parity);
            assert_eq!(loc.device, (parity + 1 + (seq % 3) as usize) % 4);
        }
    }
}
