//! CRC32C (Castagnoli), hardware-accelerated with a software fallback.
//!
//! The integrity subsystem stores one CRC per chunk (data and parity
//! alike) and re-verifies it on every read and on every scrub pass. The
//! Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one
//! used by iSCSI, ext4, and btrfs — better error-detection properties than
//! CRC32 (IEEE) for storage payloads.
//!
//! Two implementations behind one entry point, still with no external
//! crates:
//!
//! * **Hardware** — SSE4.2 `crc32` instructions (`_mm_crc32_u64`, 8 bytes
//!   per cycle-ish), selected at runtime through the shared
//!   [`crate::cpu_features`] probe (one cached `OnceLock` probe serves CRC
//!   and the parity XOR kernels alike, and honors `ADAPT_NO_SIMD`).
//! * **Software** — slicing-by-8 over tables built at compile time by a
//!   `const fn`; the fallback on non-x86 targets and pre-Nehalem CPUs.
//!
//! Both paths implement the same function: a proptest asserts they are
//! bit-identical on arbitrary buffers, and the Criterion microbench
//! (`cargo bench -p adapt-bench`) compares their throughput.

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 8 × 256 lookup tables for slicing-by-8, built at compile time.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    // Table 0: the classic byte-at-a-time table.
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // Tables 1..8: each extends the previous by one zero byte.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC32C of `data` (standard init/final XOR of `!0`). Dispatches to the
/// SSE4.2 hardware path when the CPU has it.
pub fn crc32c(data: &[u8]) -> u32 {
    update(!0, data) ^ !0
}

/// CRC32C of `data` forced through the software slicing-by-8 path.
/// Exists so the hardware path can be differentially tested and benched;
/// prefer [`crc32c`].
pub fn crc32c_soft(data: &[u8]) -> u32 {
    update_soft(!0, data) ^ !0
}

/// Whether the runtime CPU offers the SSE4.2 `crc32` instructions (and
/// `ADAPT_NO_SIMD` hasn't forced the software path). Delegates to the
/// shared [`crate::cpu_features`] probe.
pub fn hw_available() -> bool {
    crate::cpu_features::get().sse42
}

/// Feed `data` into a running (pre-inverted) CRC state. Compose as
/// `update(!0, a)` then `update(state, b)` then `state ^ !0`.
pub fn update(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw_available() {
        // SAFETY: SSE4.2 presence was verified at runtime just above.
        return unsafe { update_hw(crc, data) };
    }
    update_soft(crc, data)
}

/// The SSE4.2 path: 8 bytes per `crc32q`, byte-at-a-time tail. Consumes
/// and produces the same pre-inverted state as [`update_soft`] — the
/// `crc32` instruction implements exactly this reflected-Castagnoli step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut state = crc as u64;
    let mut chunks = data.chunks_exact(8);
    for w in chunks.by_ref() {
        let word = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        state = _mm_crc32_u64(state, word);
    }
    let mut state = state as u32;
    for &b in chunks.remainder() {
        state = _mm_crc32_u8(state, b);
    }
    state
}

/// The software path: slicing-by-8 over compile-time tables.
pub fn update_soft(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for w in chunks.by_ref() {
        let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ crc;
        let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation.
    fn reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        crc ^ !0
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) appendix test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn matches_reference_on_odd_lengths() {
        for len in [1usize, 3, 7, 8, 9, 15, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            assert_eq!(crc32c(&data), reference(&data), "len {len}");
        }
    }

    #[test]
    fn incremental_update_composes() {
        let data: Vec<u8> = (0..777).map(|i| (i * 13) as u8).collect();
        for split in [0usize, 1, 8, 100, 776, 777] {
            let (a, b) = data.split_at(split);
            let composed = update(update(!0, a), b) ^ !0;
            assert_eq!(composed, crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn hardware_and_software_agree_on_fixed_vectors() {
        // Exercises the dispatching entry point against the forced
        // software path. On SSE4.2 machines this differentially tests the
        // intrinsics; elsewhere it degenerates to soft == soft.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 511, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(crc32c(&data), crc32c_soft(&data), "len {len}");
        }
    }

    #[test]
    fn hardware_update_composes_like_software() {
        let data: Vec<u8> = (0..1024).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0usize, 1, 5, 8, 511, 1024] {
            let (a, b) = data.split_at(split);
            let dispatched = update(update(!0, a), b) ^ !0;
            let soft = update_soft(update_soft(!0, a), b) ^ !0;
            assert_eq!(dispatched, soft, "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let clean = crc32c(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32c(&bad), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
