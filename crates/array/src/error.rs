//! Typed errors for the array layer.
//!
//! The read/write paths of [`crate::store`], [`crate::ftl`], and the
//! [`crate::sink::ArraySink`] trait return these instead of panicking, so
//! the log-structured layer above can degrade gracefully (serve the read
//! via parity reconstruction, retry a transient error, or surface data
//! loss to the caller) rather than crash the process.

use crate::layout::ChunkLocation;
use std::fmt;

/// Error raised by array read/write paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayError {
    /// The chunk's home device has failed and the stripe cannot be
    /// reconstructed (incomplete stripe: parity was never generated).
    Unreconstructable { loc: ChunkLocation },
    /// Two or more devices are failed: RAID-5 cannot recover.
    DoubleFault { loc: ChunkLocation },
    /// The location was never written.
    MissingChunk { loc: ChunkLocation },
    /// A transient device error: the same read is expected to succeed if
    /// retried after a backoff.
    TransientRead { loc: ChunkLocation },
    /// A latent sector error: the chunk's media is unreadable on its home
    /// device until rewritten, but survivors can reconstruct it.
    LatentSector { loc: ChunkLocation },
    /// The chunk failed its checksum and the stripe survivors could not
    /// produce a copy that verifies (a second fault hides the truth).
    ChecksumMismatch { loc: ChunkLocation },
    /// A device's FTL ran out of free erase blocks.
    OutOfSpace { device: usize },
    /// A logical page number beyond the device's capacity.
    LpnOutOfRange { lpn: u64, capacity: u64 },
    /// A rebuild was requested while no device is failed, or targeting a
    /// healthy device.
    NotDegraded,
    /// The durable backend failed outside RAID semantics (power loss,
    /// filesystem error, or an unrepairable record during recovery).
    Storage { failure: StorageFailure },
}

/// Why a durable backend operation failed. A small `Copy` classification:
/// rich context (paths, offsets) lives in the backend's own error type
/// (`file_sink::FileSinkError`); this is what crosses the sink trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFailure {
    /// Simulated power loss: the write budget ran out.
    PowerLoss,
    /// A real filesystem error.
    Io,
    /// A record or superblock failed CRC/shape validation.
    BadRecord,
    /// Recovery needed a record that neither disk nor WAL can supply.
    MissingRecord,
    /// The sink does not support this durability operation.
    Unsupported,
}

impl fmt::Display for StorageFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageFailure::PowerLoss => write!(f, "simulated power loss"),
            StorageFailure::Io => write!(f, "filesystem I/O error"),
            StorageFailure::BadRecord => write!(f, "corrupt on-disk record"),
            StorageFailure::MissingRecord => write!(f, "unrecoverable missing record"),
            StorageFailure::Unsupported => write!(f, "operation unsupported by this sink"),
        }
    }
}

/// Uniform retryability classification across the whole error lattice
/// (`MediaError` → `FileSinkError` → `ArrayError` → `EngineError`).
///
/// One question, answered once per type: *can retrying the exact same
/// operation, after a backoff and with no state change, succeed?* Layers
/// that wrap a lower error delegate to it instead of re-matching the
/// wrapped variants, so a new transient fault added at the bottom is
/// classified correctly everywhere above without touching the wrappers.
pub trait Retryable {
    /// Whether retrying the same operation (after a backoff) can succeed
    /// without any state change.
    fn is_retryable(&self) -> bool;
}

impl Retryable for ArrayError {
    fn is_retryable(&self) -> bool {
        matches!(self, ArrayError::TransientRead { .. })
    }
}

impl Retryable for ParityError {
    /// Parity-math errors are malformed inputs, never transient.
    fn is_retryable(&self) -> bool {
        false
    }
}

impl ArrayError {
    /// Whether retrying the same operation (after a backoff) can succeed
    /// without any state change. Alias for [`Retryable::is_retryable`],
    /// kept for call sites predating the trait.
    pub fn is_transient(&self) -> bool {
        self.is_retryable()
    }
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::Unreconstructable { loc } => write!(
                f,
                "chunk (stripe {}, device {}) on failed device and stripe incomplete",
                loc.stripe, loc.device
            ),
            ArrayError::DoubleFault { loc } => write!(
                f,
                "chunk (stripe {}, device {}) unrecoverable: multiple devices failed",
                loc.stripe, loc.device
            ),
            ArrayError::MissingChunk { loc } => {
                write!(f, "chunk (stripe {}, device {}) was never written", loc.stripe, loc.device)
            }
            ArrayError::TransientRead { loc } => {
                write!(f, "transient read error at (stripe {}, device {})", loc.stripe, loc.device)
            }
            ArrayError::LatentSector { loc } => {
                write!(f, "latent sector error at (stripe {}, device {})", loc.stripe, loc.device)
            }
            ArrayError::ChecksumMismatch { loc } => write!(
                f,
                "checksum mismatch at (stripe {}, device {}) and survivors cannot repair it",
                loc.stripe, loc.device
            ),
            ArrayError::OutOfSpace { device } => {
                write!(f, "device {device}: FTL free pool exhausted")
            }
            ArrayError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "LPN {lpn} beyond device capacity {capacity}")
            }
            ArrayError::NotDegraded => write!(f, "rebuild requested but no device is failed"),
            ArrayError::Storage { failure } => write!(f, "durable backend failure: {failure}"),
        }
    }
}

impl std::error::Error for ArrayError {}

/// Error raised by the parity/erasure-coding math on malformed stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityError {
    /// A stripe with zero chunks has no parity.
    EmptyStripe,
    /// Chunks within one stripe must have equal lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A Reed-Solomon decode was asked to run with fewer surviving
    /// chunks than the code's `k` — more than `m` losses.
    NotEnoughShards { have: usize, need: usize },
    /// The survivor submatrix was singular. The shipped matrix
    /// constructions (Vandermonde for m ≤ 2, Cauchy beyond) make this
    /// unreachable; it exists so the decoder degrades typed instead of
    /// panicking if a future construction regresses.
    SingularMatrix,
}

impl fmt::Display for ParityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParityError::EmptyStripe => write!(f, "stripe must have at least one data chunk"),
            ParityError::LengthMismatch { expected, got } => {
                write!(f, "parity operands must be equal length ({expected} vs {got})")
            }
            ParityError::NotEnoughShards { have, need } => {
                write!(f, "erasure decode needs {need} surviving chunks, have {have}")
            }
            ParityError::SingularMatrix => {
                write!(f, "erasure-decode matrix is singular (invalid code construction)")
            }
        }
    }
}

impl std::error::Error for ParityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let loc = ChunkLocation { stripe: 7, device: 2, column: 1 };
        assert!(ArrayError::DoubleFault { loc }.to_string().contains("stripe 7"));
        assert!(ArrayError::OutOfSpace { device: 3 }.to_string().contains("device 3"));
        assert!(ParityError::LengthMismatch { expected: 8, got: 9 }.to_string().contains("8"));
    }

    #[test]
    fn transient_classification() {
        let loc = ChunkLocation { stripe: 0, device: 0, column: 0 };
        assert!(ArrayError::TransientRead { loc }.is_transient());
        assert!(!ArrayError::DoubleFault { loc }.is_transient());
        assert!(
            !ArrayError::ChecksumMismatch { loc }.is_transient(),
            "retrying re-reads the same corrupted media"
        );
    }

    #[test]
    fn checksum_mismatch_display_names_location() {
        let loc = ChunkLocation { stripe: 9, device: 1, column: 0 };
        let msg = ArrayError::ChecksumMismatch { loc }.to_string();
        assert!(msg.contains("checksum"), "{msg}");
        assert!(msg.contains("stripe 9"), "{msg}");
    }
}
