//! In-device FTL model: NAND pages, blocks, multi-stream allocation, and
//! device-internal garbage collection.
//!
//! The paper notes (§3.1) that ADAPT "can also leverage SSDs' multi-stream
//! capability to reduce in-device WA by mapping groups to streams
//! one-to-one". This module makes that claim measurable: it models the
//! flash translation layer of one SSD receiving the engine's chunk writes
//! at their *physical* addresses (segments are reused after GC, so the
//! device sees overwrites). Chunks tagged with different streams go to
//! different open NAND blocks; when free blocks run low, a greedy
//! device-GC migrates the valid pages of the dirtiest block and erases it
//! — every migrated page is in-device write amplification.

use crate::error::ArrayError;
use serde::{Deserialize, Serialize};

/// NAND geometry and stream configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Flash page size in bytes (the programming unit).
    pub page_bytes: u64,
    /// Pages per NAND erase block.
    pub pages_per_block: u32,
    /// Logical capacity exposed to the host, in pages.
    pub logical_pages: u64,
    /// Device over-provisioning fraction.
    pub op_ratio: f64,
    /// Number of write streams the device accepts (1 = no multi-stream).
    pub streams: usize,
    /// Device GC triggers when free erase blocks drop to this count.
    pub gc_low_water: u32,
}

impl Default for FtlConfig {
    fn default() -> Self {
        Self {
            page_bytes: 16 * 1024,
            pages_per_block: 64, // 1 MiB erase blocks
            logical_pages: 16 * 1024,
            op_ratio: 0.12,
            streams: 8,
            gc_low_water: 4,
        }
    }
}

impl FtlConfig {
    /// Total physical erase blocks.
    pub fn total_blocks(&self) -> u32 {
        let phys_pages = (self.logical_pages as f64 * (1.0 + self.op_ratio)).ceil() as u64;
        phys_pages.div_ceil(self.pages_per_block as u64) as u32
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.page_bytes > 0 && self.pages_per_block > 0);
        assert!(self.streams >= 1 && self.streams <= 64);
        assert!(self.op_ratio > 0.0);
        let spare = self.total_blocks() as i64
            - (self.logical_pages.div_ceil(self.pages_per_block as u64)) as i64;
        assert!(
            spare > self.gc_low_water as i64 + self.streams as i64,
            "FTL over-provisioning too small for streams + GC watermark"
        );
    }
}

/// One NAND erase block.
#[derive(Debug, Clone, Default)]
struct NandBlock {
    /// Logical page number per slot; u64::MAX = invalid/erased slot.
    slots: Vec<u64>,
    /// Written slots.
    written: u32,
    /// Slots whose logical page still maps here.
    valid: u32,
    /// Erase cycles endured.
    erases: u32,
    /// Sealed (fully written).
    sealed: bool,
    /// In the free pool.
    free: bool,
}

/// Device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Pages written by the host.
    pub host_pages: u64,
    /// Pages copied by device GC.
    pub migrated_pages: u64,
    /// Erase operations.
    pub erases: u64,
    /// Device GC invocations.
    pub gc_passes: u64,
}

impl FtlStats {
    /// In-device write amplification.
    pub fn in_device_wa(&self) -> f64 {
        if self.host_pages == 0 {
            return 1.0;
        }
        1.0 + self.migrated_pages as f64 / self.host_pages as f64
    }
}

/// The FTL of one simulated SSD.
#[derive(Debug, Clone)]
pub struct FtlDevice {
    cfg: FtlConfig,
    blocks: Vec<NandBlock>,
    free: Vec<u32>,
    /// Open (partially written) block per stream.
    open: Vec<Option<u32>>,
    /// Logical page → (block, slot); u32::MAX = unmapped.
    map: Vec<(u32, u32)>,
    stats: FtlStats,
    /// Re-entrancy guard: GC migrations must not start a nested GC.
    in_gc: bool,
    /// Device index within the array (for error attribution).
    id: usize,
}

const UNMAPPED: (u32, u32) = (u32::MAX, u32::MAX);

impl FtlDevice {
    /// Create a device (array position 0).
    pub fn new(cfg: FtlConfig) -> Self {
        Self::with_id(cfg, 0)
    }

    /// Create a device that reports errors as array member `id`.
    pub fn with_id(cfg: FtlConfig, id: usize) -> Self {
        cfg.validate();
        let total = cfg.total_blocks();
        let blocks = (0..total)
            .map(|_| NandBlock {
                slots: vec![u64::MAX; cfg.pages_per_block as usize],
                free: true,
                ..Default::default()
            })
            .collect();
        Self {
            cfg,
            blocks,
            free: (0..total).rev().collect(),
            open: vec![None; cfg.streams],
            map: vec![UNMAPPED; cfg.logical_pages as usize],
            stats: FtlStats::default(),
            in_gc: false,
            id,
        }
    }

    /// Device statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// The geometry.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Write one logical page on the given stream (host write), returning
    /// a typed error for out-of-range LPNs or free-pool exhaustion.
    pub fn try_write_page(&mut self, lpn: u64, stream: usize) -> Result<(), ArrayError> {
        if lpn as usize >= self.map.len() {
            return Err(ArrayError::LpnOutOfRange { lpn, capacity: self.map.len() as u64 });
        }
        let stream = stream.min(self.cfg.streams - 1);
        self.stats.host_pages += 1;
        self.program(lpn, stream)
    }

    /// Write a run of consecutive logical pages on one stream, returning
    /// a typed error on the first failing page.
    pub fn try_write_pages(
        &mut self,
        lpn: u64,
        count: u32,
        stream: usize,
    ) -> Result<(), ArrayError> {
        for i in 0..count as u64 {
            self.try_write_page(lpn + i, stream)?;
        }
        Ok(())
    }

    /// Write one logical page on the given stream (host write).
    ///
    /// # Panics
    /// Panics on an out-of-range LPN or free-pool exhaustion; use
    /// [`Self::try_write_page`] to handle those as errors.
    pub fn write_page(&mut self, lpn: u64, stream: usize) {
        self.try_write_page(lpn, stream).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Write a run of consecutive logical pages on one stream.
    ///
    /// # Panics
    /// Same contract as [`Self::write_page`].
    pub fn write_pages(&mut self, lpn: u64, count: u32, stream: usize) {
        self.try_write_pages(lpn, count, stream).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Invalidate the current mapping (host TRIM).
    pub fn trim_page(&mut self, lpn: u64) {
        if let Some(entry) = self.map.get_mut(lpn as usize) {
            if *entry != UNMAPPED {
                let (b, s) = *entry;
                *entry = UNMAPPED;
                let blk = &mut self.blocks[b as usize];
                blk.valid -= 1;
                blk.slots[s as usize] = u64::MAX;
            }
        }
    }

    /// Program one page (shared by host writes and GC migration).
    fn program(&mut self, lpn: u64, stream: usize) -> Result<(), ArrayError> {
        // Invalidate the previous copy.
        let prev = self.map[lpn as usize];
        if prev != UNMAPPED {
            let blk = &mut self.blocks[prev.0 as usize];
            blk.valid -= 1;
            blk.slots[prev.1 as usize] = u64::MAX;
        }
        let block_id = self.open_block(stream)?;
        let blk = &mut self.blocks[block_id as usize];
        let slot = blk.written;
        blk.slots[slot as usize] = lpn;
        blk.written += 1;
        blk.valid += 1;
        self.map[lpn as usize] = (block_id, slot);
        if blk.written == self.cfg.pages_per_block {
            blk.sealed = true;
            self.open[stream] = None;
        }
        Ok(())
    }

    fn open_block(&mut self, stream: usize) -> Result<u32, ArrayError> {
        if let Some(b) = self.open[stream] {
            return Ok(b);
        }
        if !self.in_gc && self.free.len() <= self.cfg.gc_low_water as usize {
            self.device_gc()?;
            // GC migrates into stream 0; if that is the stream we are
            // opening, the block it allocated must be reused — allocating
            // another would orphan it.
            if let Some(b) = self.open[stream] {
                return Ok(b);
            }
        }
        let id = self.free.pop().ok_or(ArrayError::OutOfSpace { device: self.id })?;
        let blk = &mut self.blocks[id as usize];
        blk.free = false;
        blk.sealed = false;
        blk.written = 0;
        blk.valid = 0;
        blk.slots.fill(u64::MAX);
        self.open[stream] = Some(id);
        Ok(id)
    }

    /// Greedy device GC: migrate the dirtiest sealed block's valid pages
    /// (into stream 0's open block — real devices use a dedicated GC
    /// stream, which is what a separate stream id models) and erase it.
    fn device_gc(&mut self) -> Result<(), ArrayError> {
        self.in_gc = true;
        let result = self.device_gc_inner();
        self.in_gc = false;
        result
    }

    fn device_gc_inner(&mut self) -> Result<(), ArrayError> {
        self.stats.gc_passes += 1;
        while self.free.len() <= self.cfg.gc_low_water as usize + 1 {
            let victim = self
                .blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| b.sealed && !b.free)
                .max_by_key(|(_, b)| b.written - b.valid)
                .map(|(i, _)| i as u32);
            let Some(victim) = victim else {
                return Ok(());
            };
            if self.blocks[victim as usize].written == self.blocks[victim as usize].valid {
                // Only fully-valid blocks remain: migrating frees nothing.
                return Ok(());
            }
            // Collect still-valid pages, then migrate.
            let lpns: Vec<u64> = self.blocks[victim as usize]
                .slots
                .iter()
                .copied()
                .filter(|&l| l != u64::MAX)
                .collect();
            for lpn in lpns {
                // Re-check liveness: the map must still point here.
                let (b, _) = self.map[lpn as usize];
                if b == victim {
                    self.stats.migrated_pages += 1;
                    // GC stream = stream 0 (mixed with its host traffic when
                    // streams are scarce; dedicated when plentiful).
                    self.program(lpn, 0)?;
                }
            }
            let blk = &mut self.blocks[victim as usize];
            debug_assert_eq!(blk.valid, 0);
            blk.free = true;
            blk.sealed = false;
            blk.erases += 1;
            self.stats.erases += 1;
            self.free.push(victim);
        }
        Ok(())
    }

    /// Erase-count spread across blocks: (min, max, mean) — the wear-
    /// leveling view.
    pub fn wear(&self) -> (u32, u32, f64) {
        let counts: Vec<u32> = self.blocks.iter().map(|b| b.erases).collect();
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len().max(1) as f64;
        (min, max, mean)
    }

    /// Consistency check (tests): map ↔ block slots agree and valid counts
    /// are exact.
    pub fn check_invariants(&self) {
        let mut valid = vec![0u32; self.blocks.len()];
        for (lpn, &(b, s)) in self.map.iter().enumerate() {
            if (b, s) == UNMAPPED {
                continue;
            }
            assert_eq!(self.blocks[b as usize].slots[s as usize], lpn as u64);
            valid[b as usize] += 1;
        }
        for (i, blk) in self.blocks.iter().enumerate() {
            assert_eq!(blk.valid, valid[i], "block {i} valid drift");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FtlConfig {
        FtlConfig {
            logical_pages: 512,
            pages_per_block: 16,
            op_ratio: 0.5,
            streams: 4,
            gc_low_water: 3,
            ..Default::default()
        }
    }

    #[test]
    fn fill_once_no_migration() {
        let mut d = FtlDevice::new(small());
        for lpn in 0..512u64 {
            d.write_page(lpn, 0);
        }
        assert_eq!(d.stats().host_pages, 512);
        assert_eq!(d.stats().migrated_pages, 0);
        d.check_invariants();
    }

    #[test]
    fn overwrites_trigger_device_gc() {
        let mut d = FtlDevice::new(small());
        for round in 0..6u64 {
            for lpn in 0..512u64 {
                d.write_page((lpn * 7 + round) % 512, 0);
            }
        }
        assert!(d.stats().gc_passes > 0);
        assert!(d.stats().in_device_wa() >= 1.0);
        d.check_invariants();
    }

    #[test]
    fn streams_separate_hot_and_cold() {
        // Interleaved hot churn (stream 1) and a slow cold scan (stream
        // 2): with one stream the cold pages land inside churning blocks
        // and must be migrated over and over; separated, cold blocks stay
        // fully valid and GC touches only fully-garbage hot blocks.
        let run = |streams_on: bool| {
            let mut d = FtlDevice::new(small());
            for lpn in 0..512u64 {
                d.write_page(lpn, if streams_on { 2 } else { 0 });
            }
            for i in 0..40_000u64 {
                if i % 10 == 9 {
                    // Cold scan: rewrite the cold range slowly, in order.
                    let cold = 64 + (i / 10) % 448;
                    d.write_page(cold, if streams_on { 2 } else { 0 });
                } else {
                    let hot = i % 64;
                    d.write_page(hot, if streams_on { 1 } else { 0 });
                }
            }
            d.check_invariants();
            d.stats().in_device_wa()
        };
        let multi = run(true);
        let single = run(false);
        assert!(multi < single, "multi-stream {multi:.3} should beat single-stream {single:.3}");
    }

    #[test]
    fn trim_makes_pages_garbage() {
        let mut d = FtlDevice::new(small());
        for lpn in 0..512u64 {
            d.write_page(lpn, 0);
        }
        for lpn in 0..256u64 {
            d.trim_page(lpn);
        }
        d.check_invariants();
        // Rewriting the trimmed half causes little migration: the
        // invalidated pages are pure garbage.
        for lpn in 0..256u64 {
            d.write_page(lpn, 0);
        }
        d.check_invariants();
    }

    #[test]
    fn wear_tracks_erases() {
        let mut d = FtlDevice::new(small());
        for i in 0..30_000u64 {
            d.write_page(i % 512, 0);
        }
        let (_, max, mean) = d.wear();
        assert!(max > 0);
        assert!(mean > 0.0);
        assert_eq!(d.stats().erases, d.blocks.iter().map(|b| b.erases as u64).sum::<u64>());
    }

    #[test]
    fn stream_ids_beyond_config_clamp() {
        let mut d = FtlDevice::new(small());
        d.write_page(0, 999); // clamps to last stream
        d.check_invariants();
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_lpn() {
        let mut d = FtlDevice::new(small());
        d.write_page(512, 0);
    }

    #[test]
    fn try_write_reports_typed_errors() {
        let mut d = FtlDevice::with_id(small(), 3);
        assert_eq!(
            d.try_write_page(512, 0),
            Err(ArrayError::LpnOutOfRange { lpn: 512, capacity: 512 })
        );
        assert!(d.try_write_page(0, 0).is_ok());
        assert!(d.try_write_pages(1, 8, 0).is_ok());
        d.check_invariants();
    }
}
