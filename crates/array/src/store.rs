//! Byte-faithful in-memory erasure-coded store.
//!
//! Used by the prototype (§4.4) and the fault-injection integration tests.
//! Keeps real chunk contents per device, generates the `m` parity chunks
//! when a stripe's last data column arrives, and serves reads through
//! Reed-Solomon decode while up to `m` members of a stripe are erased
//! (failed devices or latent sectors). `m = 1` reproduces the original
//! XOR RAID-5 store byte-for-byte, including every counter.
//!
//! The store is also *elastic*: [`InMemoryArray::add_device`] widens the
//! array online. Widening takes effect at the next stripe boundary and
//! opens a new **geometry epoch** — stripes written earlier keep their
//! original `k + m` shape and decode with their original code, so no data
//! is restriped on the spot. (In the full system the log-structured GC
//! naturally migrates old segments into the new geometry as it rewrites
//! them; the epoch table is exactly the metadata that makes those old
//! stripes readable until then.)

use crate::config::ArrayConfig;
use crate::counters::{ArrayStats, DeviceCounters};
use crate::crc;
use crate::error::ArrayError;
use crate::fault::{
    ArrayHealth, DiskState, FaultPlan, ReadMode, ReadOutcome, RebuildProgress, ScrubProgress,
    ScrubStep,
};
use crate::layout::{ChunkLocation, StripeLayout};
use crate::rs::ReedSolomon;
use crate::sink::{ArraySink, ChunkFlush};
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One geometry epoch: every stripe in `first_stripe..` (until the next
/// epoch) was written with this layout and code.
#[derive(Debug, Clone)]
struct Epoch {
    /// First chunk sequence number written under this geometry.
    first_seq: u64,
    /// First stripe index written under this geometry.
    first_stripe: u64,
    layout: StripeLayout,
    code: ReedSolomon,
}

/// A byte-level erasure-coded array held in memory.
#[derive(Debug)]
pub struct InMemoryArray {
    /// Geometry epochs, oldest first. The last entry is the geometry new
    /// writes use; [`Self::cfg`] mirrors its config.
    epochs: Vec<Epoch>,
    cfg: ArrayConfig,
    /// Devices added mid-stripe; the epoch rolls when the stripe closes.
    pending_devices: usize,
    stats: ArrayStats,
    next_chunk_seq: u64,
    /// Device id → (stripe → chunk contents). Sparse: only written stripes
    /// are present.
    devices: Vec<HashMap<u64, Bytes>>,
    /// Streaming parity accumulators (one per parity row) for the stripe
    /// currently being filled. Each arriving column is folded in via the
    /// code's generator coefficients, so parity work is spread across the
    /// arriving columns and nothing buffers the whole stripe.
    parity_acc: Vec<Vec<u8>>,
    /// Data columns accepted into the open stripe so far.
    open_columns: usize,
    /// Shared zero-filled chunk body for the accounting-only write path;
    /// cloning `Bytes` is a refcount bump, not a 64 KiB memset.
    zero_chunk: Bytes,
    /// Devices marked failed; reads to them decode from survivors.
    failed: Vec<bool>,
    /// Deterministic fault schedule (empty by default).
    plan: FaultPlan,
    /// In-progress rebuild: target device and the stripe worklist,
    /// most-exposed stripes first.
    rebuild_target: Option<usize>,
    rebuild_stripes: Vec<u64>,
    rebuild_cursor: usize,
    /// In-progress proactive drain (planned removal) and its worklist.
    draining: Option<usize>,
    drain_worklist: Vec<u64>,
    drain_cursor: usize,
    /// Device id → (stripe → CRC32C recorded when the chunk was written).
    /// Survives device failure and rebuild: it defines what the chunk's
    /// contents *should* be, independent of the media holding them.
    checksums: Vec<HashMap<u64, u32>>,
    /// (device, stripe) → op counter at injection, for detection latency.
    corruption_injected_at: HashMap<(usize, u64), u64>,
    /// Chunks already reported unrecoverable (so a scrub pass does not
    /// re-count them every revisit).
    known_bad: BTreeSet<(usize, u64)>,
    /// Sorted stripe worklist of the current scrub pass.
    scrub_worklist: Vec<u64>,
    scrub_cursor: usize,
}

impl InMemoryArray {
    /// Create an empty array.
    pub fn new(cfg: ArrayConfig) -> Self {
        Self::with_fault_plan(cfg, FaultPlan::default())
    }

    /// Create an empty array driven by a fault schedule.
    pub fn with_fault_plan(cfg: ArrayConfig, plan: FaultPlan) -> Self {
        cfg.validate();
        Self {
            epochs: vec![Epoch {
                first_seq: 0,
                first_stripe: 0,
                layout: StripeLayout::new(cfg),
                code: ReedSolomon::new(cfg.data_columns(), cfg.parity_devices),
            }],
            cfg,
            pending_devices: 0,
            stats: ArrayStats::new(cfg.num_devices),
            next_chunk_seq: 0,
            devices: vec![HashMap::new(); cfg.num_devices],
            parity_acc: vec![Vec::new(); cfg.parity_devices],
            open_columns: 0,
            zero_chunk: Bytes::from(vec![0u8; cfg.chunk_bytes as usize]),
            failed: vec![false; cfg.num_devices],
            plan,
            rebuild_target: None,
            rebuild_stripes: Vec::new(),
            rebuild_cursor: 0,
            draining: None,
            drain_worklist: Vec::new(),
            drain_cursor: 0,
            checksums: vec![HashMap::new(); cfg.num_devices],
            corruption_injected_at: HashMap::new(),
            known_bad: BTreeSet::new(),
            scrub_worklist: Vec::new(),
            scrub_cursor: 0,
        }
    }

    /// The fault plan's current state.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Mutable fault plan, for injecting faults mid-run.
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    /// The epoch governing `stripe`.
    fn epoch_for_stripe(&self, stripe: u64) -> &Epoch {
        self.epochs.iter().rev().find(|e| e.first_stripe <= stripe).unwrap_or(&self.epochs[0])
    }

    /// Add a fresh, empty device to the array. The widened geometry (one
    /// more data column, same parity count) takes effect at the next
    /// stripe boundary; stripes already written keep their original shape
    /// and remain readable through the epoch table. Returns the new
    /// device's id.
    pub fn add_device(&mut self) -> usize {
        let id = self.devices.len();
        assert!(id < 256, "GF(256) limits the array to 256 devices");
        self.devices.push(HashMap::new());
        self.checksums.push(HashMap::new());
        self.failed.push(false);
        self.stats.devices.push(DeviceCounters::default());
        self.pending_devices += 1;
        if self.open_columns == 0 {
            self.roll_epoch();
        }
        id
    }

    /// Open a new geometry epoch covering all member devices. Must be
    /// called at a stripe boundary.
    fn roll_epoch(&mut self) {
        debug_assert_eq!(self.open_columns, 0, "epochs roll at stripe boundaries");
        if self.pending_devices == 0 {
            return;
        }
        let (replace_last, first_stripe) = {
            let last = self.epochs.last().expect("at least one epoch");
            if last.first_seq == self.next_chunk_seq {
                // Nothing written under the previous geometry yet: replace
                // it instead of stacking an empty epoch.
                (true, last.first_stripe)
            } else {
                let k = last.layout.config().data_columns() as u64;
                debug_assert_eq!((self.next_chunk_seq - last.first_seq) % k, 0);
                (false, last.first_stripe + (self.next_chunk_seq - last.first_seq) / k)
            }
        };
        if replace_last {
            self.epochs.pop();
        }
        let cfg = ArrayConfig::with_parity(
            self.devices.len(),
            self.cfg.parity_devices,
            self.cfg.chunk_bytes,
        );
        self.cfg = cfg;
        self.epochs.push(Epoch {
            first_seq: self.next_chunk_seq,
            first_stripe,
            layout: StripeLayout::new(cfg),
            code: ReedSolomon::new(cfg.data_columns(), cfg.parity_devices),
        });
        self.pending_devices = 0;
    }

    /// Write one chunk of real bytes; returns its location. The caller is
    /// responsible for zero-padding — `data.len()` must equal the chunk
    /// size. `flush` carries the accounting breakdown of the same chunk.
    pub fn write_chunk_bytes(&mut self, data: Bytes, flush: ChunkFlush) -> ChunkLocation {
        let cfg = self.cfg;
        assert_eq!(data.len() as u64, cfg.chunk_bytes, "sub-chunk write reached the array");
        assert_eq!(flush.total_bytes(), cfg.chunk_bytes, "flush accounting mismatch");

        for d in self.plan.record_op() {
            if d < self.failed.len() {
                self.failed[d] = true;
            }
        }
        for (d, s) in self.plan.take_due_corruptions() {
            self.inject_corruption(d, s);
        }
        let ei = self.epochs.len() - 1;
        let (loc, k) = {
            let ep = &self.epochs[ei];
            let k = ep.layout.config().data_columns();
            let local = self.next_chunk_seq - ep.first_seq;
            let stripe = ep.first_stripe + local / k as u64;
            (ep.layout.locate_at(stripe, (local % k as u64) as usize), k)
        };
        self.next_chunk_seq += 1;

        // A rewrite refreshes the chunk's media, clearing any latent error.
        self.plan.clear_latent(loc.device, loc.stripe);
        self.checksums[loc.device].insert(loc.stripe, crc::crc32c(&data));
        self.corruption_injected_at.remove(&(loc.device, loc.stripe));
        self.known_bad.remove(&(loc.device, loc.stripe));
        self.devices[loc.device].insert(loc.stripe, data.clone());
        let dev = &mut self.stats.devices[loc.device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }

        if self.open_columns == 0 {
            // Zero-seed the m accumulators; row 0 of the code is all ones,
            // so for m = 1 this is exactly the historical parity seed copy.
            for acc in &mut self.parity_acc {
                acc.clear();
                acc.resize(cfg.chunk_bytes as usize, 0);
            }
            self.stats.copy_bytes += cfg.parity_devices as u64 * cfg.chunk_bytes;
        }
        self.epochs[ei].code.accumulate(&mut self.parity_acc, loc.column, &data);
        self.open_columns += 1;
        if self.open_columns == k {
            for j in 0..cfg.parity_devices {
                let parity_chunk = Bytes::from(std::mem::take(&mut self.parity_acc[j]));
                let pdev = self.epochs[ei].layout.parity_device_j(loc.stripe, j);
                self.plan.clear_latent(pdev, loc.stripe);
                self.checksums[pdev].insert(loc.stripe, crc::crc32c(&parity_chunk));
                self.corruption_injected_at.remove(&(pdev, loc.stripe));
                self.known_bad.remove(&(pdev, loc.stripe));
                self.devices[pdev].insert(loc.stripe, parity_chunk);
                let p = &mut self.stats.devices[pdev];
                p.parity_bytes += cfg.chunk_bytes;
                p.chunk_writes += 1;
            }
            self.stats.stripes_completed += 1;
            self.open_columns = 0;
            if self.pending_devices > 0 {
                self.roll_epoch();
            }
        }
        loc
    }

    /// Read the chunk at a location previously returned by
    /// [`Self::write_chunk_bytes`]. If the owning device has failed, the
    /// chunk is decoded from the stripe's survivors (requires at least `k`
    /// of its members). Returns `None` for never-written or unrecoverable
    /// locations.
    pub fn read_chunk(&self, loc: ChunkLocation) -> Option<Bytes> {
        if !self.failed[loc.device] {
            return self.devices[loc.device].get(&loc.stripe).cloned();
        }
        // Degraded read: decode from the stripe's surviving members.
        let ep = self.epoch_for_stripe(loc.stripe);
        let n = ep.layout.config().num_devices;
        let k = ep.layout.config().data_columns();
        let mut survivors: Vec<(usize, &[u8])> = Vec::with_capacity(n - 1);
        for dev in 0..n {
            if dev == loc.device || self.failed[dev] {
                continue;
            }
            if let Some(b) = self.devices[dev].get(&loc.stripe) {
                survivors.push((ep.layout.shard_of(loc.stripe, dev), b.as_ref()));
            }
        }
        if survivors.len() < k {
            return None; // erasures exceed the code's budget (or stripe never closed)
        }
        let mut out = vec![0u8; self.cfg.chunk_bytes as usize];
        ep.code
            .recover_into(&survivors, ep.layout.shard_of(loc.stripe, loc.device), &mut out)
            .ok()?;
        Some(Bytes::from(out))
    }

    /// Fallible read with fault injection, verify-on-read, and
    /// degraded-read accounting: consults the fault plan (transient
    /// errors, latent sectors, scheduled failures and corruptions),
    /// checks every returned chunk against its stored CRC32C, repairs
    /// checksum mismatches in place from stripe survivors, serves reads
    /// on erased members by decode as long as no more than `m` members of
    /// the stripe are erased, and counts the traffic in [`ArrayStats`].
    pub fn try_read_chunk(&mut self, loc: ChunkLocation) -> Result<(Bytes, ReadMode), ArrayError> {
        for d in self.plan.record_op() {
            if d < self.failed.len() {
                self.failed[d] = true;
            }
        }
        for (d, s) in self.plan.take_due_corruptions() {
            self.inject_corruption(d, s);
        }
        if self.plan.transient_read_fires() {
            return Err(ArrayError::TransientRead { loc });
        }
        let chunk_bytes = self.cfg.chunk_bytes;
        let direct_ok = !self.failed[loc.device] && !self.plan.is_latent(loc.device, loc.stripe);
        if direct_ok {
            let bytes = self.devices[loc.device]
                .get(&loc.stripe)
                .cloned()
                .ok_or(ArrayError::MissingChunk { loc })?;
            if self.verifies(loc.device, loc.stripe, &bytes) {
                return Ok((bytes, ReadMode::Normal));
            }
            // Checksum mismatch: parity-guided repair from survivors.
            self.note_detection(loc.device, loc.stripe);
            return match self.try_repair(loc.device, loc.stripe) {
                Some((healed, _survivors)) => {
                    self.devices[loc.device].insert(loc.stripe, healed.clone());
                    self.known_bad.remove(&(loc.device, loc.stripe));
                    self.stats.corruptions_healed += 1;
                    self.stats.heal_write_bytes += chunk_bytes;
                    Ok((healed, ReadMode::Healed))
                }
                None => {
                    self.stats.corruptions_unrecoverable += 1;
                    self.known_bad.insert((loc.device, loc.stripe));
                    Err(ArrayError::ChecksumMismatch { loc })
                }
            };
        }
        // Degraded read: decode the chunk from the stripe's other members,
        // verifying every member read — a corrupt shard fed to the decoder
        // would silently produce garbage.
        let (layout, code) = {
            let ep = self.epoch_for_stripe(loc.stripe);
            (ep.layout, ep.code.clone())
        };
        let n = layout.config().num_devices;
        let k = layout.config().data_columns();
        let m = layout.config().parity_devices;
        if loc.device >= n {
            return Err(ArrayError::MissingChunk { loc });
        }
        let erased: Vec<usize> =
            (0..n).filter(|&d| self.failed[d] || self.plan.is_latent(d, loc.stripe)).collect();
        if erased.len() > m {
            return Err(ArrayError::DoubleFault { loc });
        }
        let mut good: Vec<usize> = Vec::with_capacity(n - 1);
        let mut corrupt: Vec<usize> = Vec::new();
        for dev in 0..n {
            if erased.contains(&dev) {
                continue;
            }
            match self.devices[dev].get(&loc.stripe) {
                Some(b) => {
                    let stored = self.checksums[dev].get(&loc.stripe).copied();
                    if stored.is_some_and(|sum| crc::crc32c(b) != sum) {
                        corrupt.push(dev);
                    } else {
                        good.push(dev);
                    }
                }
                None => return Err(ArrayError::Unreconstructable { loc }),
            }
        }
        if good.len() < k {
            if let Some(&bad_dev) = corrupt.first() {
                // Honest repair is impossible: a silent corruption has
                // eaten into the erasure budget. Fatal, as under RAID-5.
                let bad = ChunkLocation { stripe: loc.stripe, device: bad_dev, column: 0 };
                self.note_detection(bad_dev, loc.stripe);
                self.stats.corruptions_unrecoverable += 1;
                self.known_bad.insert((bad_dev, loc.stripe));
                return Err(ArrayError::ChecksumMismatch { loc: bad });
            }
            return Err(ArrayError::Unreconstructable { loc });
        }
        let shards: Vec<(usize, Bytes)> = good
            .iter()
            .map(|&d| (layout.shard_of(loc.stripe, d), self.devices[d][&loc.stripe].clone()))
            .collect();
        let refs: Vec<(usize, &[u8])> = shards.iter().map(|(s, b)| (*s, b.as_ref())).collect();
        // With spare redundancy (m ≥ 2) a corrupt member alongside the
        // erasure can still be healed from the honest shards.
        for &bad_dev in &corrupt {
            let mut out = vec![0u8; chunk_bytes as usize];
            let bad = ChunkLocation { stripe: loc.stripe, device: bad_dev, column: 0 };
            let decoded =
                code.recover_into(&refs, layout.shard_of(loc.stripe, bad_dev), &mut out).is_ok();
            let healed = Bytes::from(out);
            self.note_detection(bad_dev, loc.stripe);
            if !decoded || !self.verifies(bad_dev, loc.stripe, &healed) {
                self.stats.corruptions_unrecoverable += 1;
                self.known_bad.insert((bad_dev, loc.stripe));
                return Err(ArrayError::ChecksumMismatch { loc: bad });
            }
            self.devices[bad_dev].insert(loc.stripe, healed);
            self.known_bad.remove(&(bad_dev, loc.stripe));
            self.stats.corruptions_healed += 1;
            self.stats.heal_write_bytes += chunk_bytes;
        }
        let mut out = vec![0u8; chunk_bytes as usize];
        code.recover_into(&refs, layout.shard_of(loc.stripe, loc.device), &mut out)
            .map_err(|_| ArrayError::Unreconstructable { loc })?;
        let bytes = Bytes::from(out);
        if !self.verifies(loc.device, loc.stripe, &bytes) {
            self.note_detection(loc.device, loc.stripe);
            self.stats.corruptions_unrecoverable += 1;
            self.known_bad.insert((loc.device, loc.stripe));
            return Err(ArrayError::ChecksumMismatch { loc });
        }
        self.stats.degraded_reads += 1;
        self.stats.reconstructed_bytes += k as u64 * chunk_bytes;
        Ok((bytes, ReadMode::Reconstructed))
    }

    /// Does `bytes` match the CRC recorded for (device, stripe)? Chunks
    /// written before checksumming existed (none in practice) pass.
    fn verifies(&self, device: usize, stripe: u64, bytes: &[u8]) -> bool {
        match self.checksums[device].get(&stripe) {
            Some(&sum) => crc::crc32c(bytes) == sum,
            None => true,
        }
    }

    /// Account one detection: bump the counter and, if the corruption was
    /// injected by the plan, record ops elapsed since injection.
    fn note_detection(&mut self, device: usize, stripe: u64) {
        self.stats.corruptions_detected += 1;
        if let Some(at) = self.corruption_injected_at.remove(&(device, stripe)) {
            self.stats.detection_latency_ops += self.plan.ops().saturating_sub(at);
        }
    }

    /// Rebuild the chunk at (device, stripe) from its stripe survivors,
    /// skipping members that are failed, latent, missing, or fail their
    /// own CRC, and re-verifying the decode against the target's stored
    /// CRC. Returns the verified bytes and the number of shards read, or
    /// `None` when fewer than `k` honest members remain.
    fn try_repair(&self, device: usize, stripe: u64) -> Option<(Bytes, usize)> {
        let expect = *self.checksums[device].get(&stripe)?;
        let ep = self.epoch_for_stripe(stripe);
        let n = ep.layout.config().num_devices;
        let k = ep.layout.config().data_columns();
        let mut survivors: Vec<(usize, &[u8])> = Vec::with_capacity(n - 1);
        for dev in 0..n {
            if dev == device || self.failed[dev] || self.plan.is_latent(dev, stripe) {
                continue;
            }
            let Some(b) = self.devices[dev].get(&stripe) else {
                continue;
            };
            if let Some(&sum) = self.checksums[dev].get(&stripe) {
                if crc::crc32c(b) != sum {
                    continue; // member is silently corrupt too
                }
            }
            survivors.push((ep.layout.shard_of(stripe, dev), b.as_ref()));
        }
        if survivors.len() < k {
            return None;
        }
        survivors.truncate(k);
        let mut out = vec![0u8; self.cfg.chunk_bytes as usize];
        ep.code.recover_into(&survivors, ep.layout.shard_of(stripe, device), &mut out).ok()?;
        if crc::crc32c(&out) != expect {
            return None;
        }
        Some((Bytes::from(out), k))
    }

    /// Silently flip bytes in the stored chunk at (device, stripe) — the
    /// device keeps serving it as if nothing happened; only the checksum
    /// can tell. Returns false if the chunk was never written.
    pub fn inject_corruption(&mut self, device: usize, stripe: u64) -> bool {
        let Some(bytes) = self.devices[device].get(&stripe) else {
            return false;
        };
        let mut v = bytes.to_vec();
        let mid = v.len() / 2;
        v[0] ^= 0xA5;
        v[mid] ^= 0x5A;
        self.devices[device].insert(stripe, Bytes::from(v));
        self.corruption_injected_at.insert((device, stripe), self.plan.ops());
        true
    }

    /// Injected corruptions not yet detected.
    pub fn outstanding_corruptions(&self) -> usize {
        self.corruption_injected_at.len()
    }

    /// Mark a device failed (degraded mode).
    pub fn fail_device(&mut self, device: usize) {
        self.failed[device] = true;
    }

    /// Current health: rebuilding beats degraded beats healthy. (A drain
    /// leaves the array healthy — the device still serves reads.)
    pub fn health_view(&self) -> ArrayHealth {
        ArrayHealth::from_disk_states(&self.disk_states())
    }

    /// Per-device lifecycle states.
    pub fn disk_states(&self) -> Vec<DiskState> {
        (0..self.devices.len())
            .map(|d| {
                if self.rebuild_target == Some(d) {
                    DiskState::Rebuilding
                } else if self.failed[d] {
                    DiskState::Failed
                } else if self.draining == Some(d) {
                    DiskState::Draining
                } else {
                    DiskState::Healthy
                }
            })
            .collect()
    }

    /// Begin an incremental rebuild of `device` onto a fresh spare. The
    /// worklist is every stripe any survivor holds, **most-exposed stripes
    /// first**: a stripe that already carries a latent, corrupt, or
    /// condemned chunk on another device is one fault from data loss, so
    /// the sweep closes those windows before touching clean stripes.
    /// Incomplete stripes are skipped by the sweep (their chunks are lost
    /// — no parity was written). Writes that arrive while rebuilding go to
    /// the spare directly and are preserved. Errors when the remaining
    /// failed devices would exceed the code's erasure budget.
    pub fn start_rebuild(&mut self, device: usize) -> Result<RebuildProgress, ArrayError> {
        let m = self.cfg.parity_devices;
        let others: Vec<usize> = self
            .failed
            .iter()
            .enumerate()
            .filter(|&(d, &f)| f && d != device)
            .map(|(d, _)| d)
            .collect();
        if others.len() >= m {
            let loc = ChunkLocation { stripe: 0, device: others[m - 1], column: 0 };
            return Err(ArrayError::DoubleFault { loc });
        }
        self.failed[device] = true; // replacing a healthy device drops it first
        let mut stripes: Vec<u64> = self
            .devices
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != device)
            .flat_map(|(_, m)| m.keys().copied())
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let mut exposure: BTreeMap<u64, usize> = BTreeMap::new();
        for &(d, s) in self.corruption_injected_at.keys() {
            if d != device {
                *exposure.entry(s).or_default() += 1;
            }
        }
        for &(d, s) in &self.known_bad {
            if d != device {
                *exposure.entry(s).or_default() += 1;
            }
        }
        for &(d, s) in self.plan.latent_entries() {
            if d != device {
                *exposure.entry(s).or_default() += 1;
            }
        }
        stripes.sort_by_key(|s| (Reverse(exposure.get(s).copied().unwrap_or(0)), *s));
        self.devices[device].clear(); // the spare starts empty
        self.rebuild_target = Some(device);
        self.rebuild_stripes = stripes;
        self.rebuild_cursor = 0;
        Ok(self.rebuild_progress())
    }

    /// Advance the rebuild sweep by at most `max_stripes` stripes. Each
    /// rebuilt chunk reads the stripe's present members and writes one
    /// chunk to the spare, charged to the rebuild counters. Completing the
    /// sweep returns the device to service.
    pub fn rebuild_step(&mut self, max_stripes: usize) -> Result<RebuildProgress, ArrayError> {
        let device = self.rebuild_target.ok_or(ArrayError::NotDegraded)?;
        let chunk_bytes = self.cfg.chunk_bytes;
        let end = self.rebuild_cursor.saturating_add(max_stripes).min(self.rebuild_stripes.len());
        for i in self.rebuild_cursor..end {
            let stripe = self.rebuild_stripes[i];
            if self.devices[device].contains_key(&stripe) {
                continue; // written to the spare while rebuilding
            }
            let layout = self.epoch_for_stripe(stripe).layout;
            let n = layout.config().num_devices;
            let k = layout.config().data_columns();
            if device >= n {
                continue; // stripe predates the device: it holds nothing there
            }
            let mut good: Vec<(usize, Bytes)> = Vec::with_capacity(n - 1);
            let mut gathered = 0usize;
            let mut complete = true;
            for dev in 0..n {
                if dev == device || self.failed[dev] {
                    continue;
                }
                match self.devices[dev].get(&stripe) {
                    Some(b) => {
                        gathered += 1;
                        let ok = match self.checksums[dev].get(&stripe) {
                            Some(&sum) => crc::crc32c(b) == sum,
                            None => true,
                        };
                        if ok {
                            good.push((layout.shard_of(stripe, dev), b.clone()));
                        }
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue; // stripe never closed: chunk unrecoverable
            }
            let rebuilt = if good.len() < k {
                None
            } else {
                let refs: Vec<(usize, &[u8])> =
                    good.iter().map(|(s, b)| (*s, b.as_ref())).collect();
                let mut out = vec![0u8; chunk_bytes as usize];
                self.epoch_for_stripe(stripe)
                    .code
                    .recover_into(&refs, layout.shard_of(stripe, device), &mut out)
                    .ok()
                    .map(|()| Bytes::from(out))
                    .filter(|b| self.verifies(device, stripe, b))
            };
            let Some(rebuilt) = rebuilt else {
                // A silently corrupt member poisoned the decode; writing it
                // would launder bad data into a "fresh" spare.
                self.note_detection(device, stripe);
                self.stats.corruptions_unrecoverable += 1;
                self.known_bad.insert((device, stripe));
                self.stats.rebuild_read_bytes += gathered as u64 * chunk_bytes;
                continue;
            };
            self.devices[device].insert(stripe, rebuilt);
            self.plan.clear_latent(device, stripe);
            self.known_bad.remove(&(device, stripe));
            self.stats.rebuild_read_bytes += gathered as u64 * chunk_bytes;
            self.stats.rebuild_write_bytes += chunk_bytes;
            self.stats.rebuilt_chunks += 1;
        }
        self.rebuild_cursor = end;
        if self.rebuild_cursor == self.rebuild_stripes.len() {
            self.rebuild_target = None;
            self.rebuild_stripes.clear();
            self.rebuild_cursor = 0;
            self.failed[device] = false;
        }
        Ok(self.rebuild_progress())
    }

    /// Current sweep progress.
    pub fn rebuild_progress(&self) -> RebuildProgress {
        RebuildProgress {
            stripes_done: self.rebuild_cursor as u64,
            stripes_total: self.rebuild_stripes.len() as u64,
            complete: self.rebuild_target.is_none(),
        }
    }

    /// Restore a previously failed device in one sweep, rebuilding every
    /// chunk it held from the survivors. Returns the number of chunks
    /// rebuilt, or `None` if the erasure budget is already spent on other
    /// failed devices.
    pub fn rebuild_device(&mut self, device: usize) -> Option<usize> {
        let before = self.stats.rebuilt_chunks;
        self.start_rebuild(device).ok()?;
        while self.rebuild_target.is_some() {
            self.rebuild_step(usize::MAX).ok()?;
        }
        Some((self.stats.rebuilt_chunks - before) as usize)
    }

    /// Begin proactively draining `device` (planned removal). Unlike a
    /// rebuild this spends no redundancy: the device keeps serving reads
    /// while a paced sweep copies its chunks to a replacement, healing
    /// latent or corrupt chunks on the way out. Panics if the device is
    /// failed or another drain is in flight — drains are planned
    /// operations issued by a scheduler that can see [`Self::disk_states`].
    pub fn start_drain(&mut self, device: usize) -> RebuildProgress {
        assert!(device < self.devices.len(), "no such device");
        assert!(!self.failed[device], "cannot drain a failed device");
        assert!(self.draining.is_none(), "one drain at a time");
        let mut stripes: Vec<u64> = self.devices[device].keys().copied().collect();
        stripes.sort_unstable();
        self.draining = Some(device);
        self.drain_worklist = stripes;
        self.drain_cursor = 0;
        self.drain_progress()
    }

    /// Advance the drain sweep by at most `max_stripes` stripes. Each
    /// stripe copies the device's one chunk (read + write, no decode when
    /// the chunk is clean) to the replacement; latent or corrupt chunks
    /// are repaired from stripe survivors first so the replacement starts
    /// pristine. Completing the sweep releases the device.
    pub fn drain_step(&mut self, max_stripes: usize) -> RebuildProgress {
        let Some(device) = self.draining else {
            return self.drain_progress();
        };
        let chunk_bytes = self.cfg.chunk_bytes;
        let end = self.drain_cursor.saturating_add(max_stripes).min(self.drain_worklist.len());
        for i in self.drain_cursor..end {
            let stripe = self.drain_worklist[i];
            let latent = self.plan.is_latent(device, stripe);
            let clean = !latent
                && self.devices[device]
                    .get(&stripe)
                    .is_some_and(|b| self.verifies(device, stripe, b));
            if !clean {
                match self.try_repair(device, stripe) {
                    Some((healed, shards_read)) => {
                        self.devices[device].insert(stripe, healed);
                        self.known_bad.remove(&(device, stripe));
                        self.stats.drain_read_bytes += shards_read as u64 * chunk_bytes;
                        if latent {
                            self.stats.scrub_latent_repaired += 1;
                        } else {
                            self.note_detection(device, stripe);
                            self.stats.corruptions_healed += 1;
                        }
                        self.stats.heal_write_bytes += chunk_bytes;
                    }
                    None => {
                        if !latent {
                            self.note_detection(device, stripe);
                        }
                        self.stats.corruptions_unrecoverable += 1;
                        self.known_bad.insert((device, stripe));
                    }
                }
            }
            self.plan.clear_latent(device, stripe);
            self.stats.drain_read_bytes += chunk_bytes;
            self.stats.drain_write_bytes += chunk_bytes;
            self.stats.drained_chunks += 1;
        }
        self.drain_cursor = end;
        if self.drain_cursor == self.drain_worklist.len() {
            self.draining = None;
            self.drain_worklist.clear();
            self.drain_cursor = 0;
        }
        self.drain_progress()
    }

    /// Current drain-sweep progress.
    pub fn drain_progress(&self) -> RebuildProgress {
        RebuildProgress {
            stripes_done: self.drain_cursor as u64,
            stripes_total: self.drain_worklist.len() as u64,
            complete: self.draining.is_none(),
        }
    }

    /// Number of chunks appended so far.
    pub fn chunks_written(&self) -> u64 {
        self.next_chunk_seq
    }

    /// Advance the background scrub by at most `max_stripes` stripes.
    ///
    /// A pass walks every written stripe in order, re-reads each chunk
    /// (data and parity alike) on live devices, and verifies it against
    /// its stored CRC32C. Mismatches are repaired from stripe survivors
    /// and rewritten in place; latent sector errors are rewritten before
    /// they can eat into the erasure budget. The scrub yields to an
    /// in-flight rebuild and restarts a fresh pass after the previous one
    /// completes, so it runs continuously when pumped.
    pub fn scrub_step(&mut self, max_stripes: usize) -> ScrubStep {
        if self.rebuild_target.is_some() {
            return ScrubStep::paused();
        }
        if self.scrub_cursor >= self.scrub_worklist.len() {
            let mut stripes: Vec<u64> =
                self.devices.iter().flat_map(|m| m.keys().copied()).collect();
            stripes.sort_unstable();
            stripes.dedup();
            self.scrub_worklist = stripes;
            self.scrub_cursor = 0;
        }
        let chunk_bytes = self.cfg.chunk_bytes;
        let num_devices = self.devices.len();
        let mut step = ScrubStep::default();
        let end = self.scrub_cursor.saturating_add(max_stripes).min(self.scrub_worklist.len());
        for i in self.scrub_cursor..end {
            let stripe = self.scrub_worklist[i];
            step.stripes_scrubbed += 1;
            for device in 0..num_devices {
                if self.failed[device]
                    || self.known_bad.contains(&(device, stripe))
                    || !self.devices[device].contains_key(&stripe)
                {
                    continue;
                }
                if self.plan.is_latent(device, stripe) {
                    // Unreadable media with intact redundancy: rewrite the
                    // chunk from survivors while we still can.
                    if let Some((rebuilt, n)) = self.try_repair(device, stripe) {
                        self.devices[device].insert(stripe, rebuilt);
                        self.plan.clear_latent(device, stripe);
                        step.latent_repaired += 1;
                        step.read_bytes += n as u64 * chunk_bytes;
                        step.heal_write_bytes += chunk_bytes;
                    }
                    continue;
                }
                step.chunks_scrubbed += 1;
                step.read_bytes += chunk_bytes;
                let clean = {
                    let bytes = &self.devices[device][&stripe];
                    match self.checksums[device].get(&stripe) {
                        Some(&sum) => crc::crc32c(bytes) == sum,
                        None => true,
                    }
                };
                if clean {
                    continue;
                }
                step.detected += 1;
                if let Some(at) = self.corruption_injected_at.remove(&(device, stripe)) {
                    step.detection_latency_ops += self.plan.ops().saturating_sub(at);
                }
                match self.try_repair(device, stripe) {
                    Some((rebuilt, n)) => {
                        self.devices[device].insert(stripe, rebuilt);
                        step.healed += 1;
                        step.read_bytes += n as u64 * chunk_bytes;
                        step.heal_write_bytes += chunk_bytes;
                    }
                    None => {
                        step.unrecoverable += 1;
                        self.known_bad.insert((device, stripe));
                    }
                }
            }
        }
        self.scrub_cursor = end;
        step.pass_complete =
            !self.scrub_worklist.is_empty() && self.scrub_cursor >= self.scrub_worklist.len();
        self.stats.fold_scrub_step(&step);
        step
    }

    /// Current scrub-pass progress.
    pub fn scrub_progress(&self) -> ScrubProgress {
        ScrubProgress {
            stripes_done: self.scrub_cursor as u64,
            stripes_total: self.scrub_worklist.len() as u64,
            complete: self.scrub_cursor >= self.scrub_worklist.len(),
        }
    }
}

impl ArraySink for InMemoryArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        // Accounting-only path: every chunk body is the shared zero chunk.
        // The prototype uses `write_chunk_bytes` with real payloads instead.
        let body = self.zero_chunk.clone();
        self.write_chunk_bytes(body, flush)
    }

    fn write_chunk_payload(&mut self, flush: ChunkFlush, payload: &[u8]) -> ChunkLocation {
        // The ownership boundary: stored chunks must outlive the caller's
        // buffer, so the borrowed payload is copied exactly once, here.
        self.stats.copy_bytes += payload.len() as u64;
        self.write_chunk_bytes(Bytes::copy_from_slice(payload), flush)
    }

    fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    fn health(&self) -> ArrayHealth {
        self.health_view()
    }

    fn read_chunk_at(&mut self, loc: ChunkLocation) -> Result<ReadOutcome, ArrayError> {
        let chunk_bytes = self.cfg.chunk_bytes;
        let k = self.epoch_for_stripe(loc.stripe).layout.config().data_columns();
        self.try_read_chunk(loc).map(|(_, mode)| match mode {
            ReadMode::Normal => ReadOutcome::normal(chunk_bytes),
            ReadMode::Reconstructed => ReadOutcome::reconstructed(chunk_bytes, k),
            ReadMode::Healed => ReadOutcome::healed(chunk_bytes, k),
        })
    }

    fn scrub_step(&mut self, max_stripes: usize) -> Option<ScrubStep> {
        Some(InMemoryArray::scrub_step(self, max_stripes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity;

    fn flush_full() -> ChunkFlush {
        ChunkFlush {
            user_bytes: 65536,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group: 0,
            seg: 0,
            chunk_in_seg: 0,
        }
    }

    fn body(seed: u8) -> Bytes {
        Bytes::from((0..65536).map(|i| seed.wrapping_add(i as u8)).collect::<Vec<u8>>())
    }

    fn raid6() -> ArrayConfig {
        ArrayConfig::with_parity(8, 2, 65536)
    }

    #[test]
    fn streaming_parity_matches_batch_parity() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let bodies: Vec<Bytes> = (0..3).map(body).collect();
        for b in &bodies {
            a.write_chunk_bytes(b.clone(), flush_full());
        }
        let pdev = a.epochs[0].layout.parity_device(0);
        let stored = a.devices[pdev][&0].clone();
        let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_ref()).collect();
        assert_eq!(stored.as_ref(), parity::compute_parity(&refs).as_slice());
    }

    #[test]
    fn multi_parity_streaming_matches_batch_encode() {
        let mut a = InMemoryArray::new(raid6());
        let bodies: Vec<Bytes> = (0..6).map(body).collect();
        for b in &bodies {
            a.write_chunk_bytes(b.clone(), flush_full());
        }
        let data: Vec<&[u8]> = bodies.iter().map(|b| b.as_ref()).collect();
        let parity = ReedSolomon::new(6, 2).encode(&data).unwrap();
        let layout = a.epochs[0].layout;
        for (j, expect) in parity.iter().enumerate() {
            let pdev = layout.parity_device_j(0, j);
            assert_eq!(a.devices[pdev][&0].as_ref(), expect.as_slice(), "parity row {j}");
        }
    }

    #[test]
    fn accounting_path_copies_only_the_parity_seed() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for _ in 0..6 {
            a.write_chunk(flush_full());
        }
        // 6 chunks = 2 closed stripes; the shared zero chunk means the only
        // copies are the two parity-accumulator seeds.
        assert_eq!(a.stats().copy_bytes, 2 * 65536);
    }

    #[test]
    fn payload_write_is_copied_once_and_roundtrips() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let payload = body(42);
        let loc = a.write_chunk_payload(flush_full(), &payload);
        // One ownership-transfer copy plus the parity seed of a new stripe.
        assert_eq!(a.stats().copy_bytes, 2 * 65536);
        assert_eq!(a.read_chunk(loc).unwrap(), payload);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        assert_eq!(a.read_chunk(loc).unwrap(), body(1));
    }

    #[test]
    fn degraded_read_reconstructs() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        // Stripe 0 is complete; fail each data device in turn and re-read.
        for (i, loc) in locs.iter().enumerate() {
            let mut b = InMemoryArray::new(ArrayConfig::default());
            for j in 0..3 {
                b.write_chunk_bytes(body(j), flush_full());
            }
            b.fail_device(loc.device);
            assert_eq!(b.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn double_fault_unrecoverable() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        for _ in 0..2 {
            a.write_chunk_bytes(body(9), flush_full());
        }
        a.fail_device(loc.device);
        a.fail_device((loc.device + 1) % 4);
        assert!(a.read_chunk(loc).is_none());
    }

    #[test]
    fn rebuild_restores_contents() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        a.fail_device(victim);
        let rebuilt = a.rebuild_device(victim).unwrap();
        assert!(rebuilt > 0);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn rebuild_refuses_double_fault() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for i in 0..3 {
            a.write_chunk_bytes(body(i), flush_full());
        }
        a.fail_device(0);
        a.fail_device(1);
        assert!(a.rebuild_device(0).is_none());
    }

    #[test]
    fn incomplete_stripe_degraded_read_fails_gracefully() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        // Stripe not complete: no parity yet.
        a.fail_device(loc.device);
        assert!(a.read_chunk(loc).is_none());
    }

    #[test]
    fn stats_match_counting_model() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for _ in 0..6 {
            a.write_chunk(flush_full());
        }
        assert_eq!(a.stats().stripes_completed, 2);
        assert_eq!(a.stats().parity_bytes(), 2 * 65536);
        assert_eq!(a.stats().data_bytes(), 6 * 65536);
    }

    #[test]
    fn try_read_typed_errors() {
        use crate::error::ArrayError;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        // Unwritten location.
        let missing = ChunkLocation { stripe: 99, device: 0, column: 0 };
        assert_eq!(a.try_read_chunk(missing), Err(ArrayError::MissingChunk { loc: missing }));
        // Failed device before the stripe closed.
        a.fail_device(loc.device);
        assert_eq!(a.try_read_chunk(loc), Err(ArrayError::Unreconstructable { loc }));
        // Second failure → double fault.
        a.fail_device((loc.device + 1) % 4);
        assert_eq!(a.try_read_chunk(loc), Err(ArrayError::DoubleFault { loc }));
    }

    #[test]
    fn try_read_degraded_accounts_reconstruction() {
        use crate::fault::ReadMode;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.fail_device(locs[0].device);
        let (bytes, mode) = a.try_read_chunk(locs[0]).unwrap();
        assert_eq!(mode, ReadMode::Reconstructed);
        assert_eq!(bytes, body(0));
        assert_eq!(a.stats().degraded_reads, 1);
        assert_eq!(a.stats().reconstructed_bytes, 3 * 65536);
    }

    #[test]
    fn scheduled_failure_fires_on_write_path() {
        use crate::fault::ArrayHealth;
        let plan = FaultPlan::new(5).fail_device_at(2, 4);
        let mut a = InMemoryArray::with_fault_plan(ArrayConfig::default(), plan);
        for i in 0..3 {
            a.write_chunk_bytes(body(i), flush_full());
        }
        assert_eq!(a.health_view(), ArrayHealth::Healthy);
        a.write_chunk_bytes(body(9), flush_full()); // 4th op
        assert_eq!(a.health_view(), ArrayHealth::Degraded { device: 2 });
    }

    #[test]
    fn latent_sector_read_reconstructs() {
        use crate::fault::ReadMode;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[1];
        // Media degrades after the stripe was written.
        a.plan_mut().add_latent_sector(victim.device, victim.stripe);
        let (bytes, mode) = a.try_read_chunk(victim).unwrap();
        assert_eq!(mode, ReadMode::Reconstructed);
        assert_eq!(bytes, body(1));
        assert_eq!(a.stats().degraded_reads, 1);
        // A rewrite of the same (device, stripe) slot clears the error.
        a.plan_mut().clear_latent(victim.device, victim.stripe);
        let (_, mode) = a.try_read_chunk(victim).unwrap();
        assert_eq!(mode, ReadMode::Normal);
    }

    #[test]
    fn incremental_rebuild_steps_to_completion() {
        use crate::fault::ArrayHealth;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..9).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        a.fail_device(victim);
        let p = a.start_rebuild(victim).unwrap();
        assert!(!p.complete);
        assert_eq!(a.health_view(), ArrayHealth::Rebuilding { device: victim });
        let mut steps = 0;
        while !a.rebuild_step(1).unwrap().complete {
            steps += 1;
            assert!(steps < 100, "rebuild must terminate");
        }
        assert_eq!(a.health_view(), ArrayHealth::Healthy);
        assert!(a.stats().rebuilt_chunks > 0);
        assert_eq!(a.stats().rebuild_write_bytes, a.stats().rebuilt_chunks * 65536);
        assert_eq!(a.stats().rebuild_read_bytes, a.stats().rebuilt_chunks * 3 * 65536);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn writes_during_rebuild_land_on_spare_and_survive() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        a.fail_device(victim);
        a.start_rebuild(victim).unwrap();
        // Write three more chunks mid-rebuild (one lands on the spare).
        let new_locs: Vec<_> =
            (10..13).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        while !a.rebuild_step(1).unwrap().complete {}
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8));
        }
        for (i, loc) in new_locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(10 + i as u8));
        }
    }

    #[test]
    fn sink_read_chunk_at_reports_reconstruction() {
        use crate::fault::ReadMode;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.fail_device(locs[2].device);
        let out = a.read_chunk_at(locs[2]).unwrap();
        assert_eq!(out.mode, ReadMode::Reconstructed);
        assert_eq!(out.device_bytes_read, 3 * 65536);
    }

    #[test]
    fn corrupted_read_heals_in_place() {
        use crate::fault::ReadMode;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        assert!(a.inject_corruption(locs[1].device, locs[1].stripe));
        let (bytes, mode) = a.try_read_chunk(locs[1]).unwrap();
        assert_eq!(mode, ReadMode::Healed);
        assert_eq!(bytes, body(1), "healed contents bit-identical to pre-corruption");
        assert_eq!(a.stats().corruptions_detected, 1);
        assert_eq!(a.stats().corruptions_healed, 1);
        assert_eq!(a.stats().heal_write_bytes, 65536);
        // The rewrite stuck: the next read is clean and direct.
        let (_, mode) = a.try_read_chunk(locs[1]).unwrap();
        assert_eq!(mode, ReadMode::Normal);
        assert_eq!(a.stats().corruptions_detected, 1, "no re-detection after heal");
    }

    #[test]
    fn corrupted_parity_healed_by_scrub() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for i in 0..3 {
            a.write_chunk_bytes(body(i), flush_full());
        }
        let pdev = a.epochs[0].layout.parity_device(0);
        assert!(a.inject_corruption(pdev, 0));
        let step = a.scrub_step(usize::MAX);
        assert_eq!(step.detected, 1);
        assert_eq!(step.healed, 1);
        assert!(step.pass_complete);
        assert_eq!(a.outstanding_corruptions(), 0);
        // Parity is good again: a degraded read still reconstructs.
        let loc = ChunkLocation { stripe: 0, device: (pdev + 1) % 4, column: 0 };
        a.fail_device(loc.device);
        let got = a.read_chunk(loc).unwrap();
        assert_eq!(crc::crc32c(&got), a.checksums[loc.device][&0]);
    }

    #[test]
    fn corruption_plus_device_failure_is_unrecoverable() {
        use crate::error::ArrayError;
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.inject_corruption(locs[0].device, locs[0].stripe);
        a.fail_device(locs[1].device);
        // Direct read of the corrupt chunk: repair needs the failed member.
        let err = a.try_read_chunk(locs[0]).unwrap_err();
        assert!(matches!(err, ArrayError::ChecksumMismatch { .. }), "{err}");
        assert_eq!(a.stats().corruptions_unrecoverable, 1);
        // Degraded read of the failed member: corrupt survivor detected.
        let err = a.try_read_chunk(locs[1]).unwrap_err();
        assert!(matches!(err, ArrayError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn scheduled_corruption_fires_and_latency_is_counted() {
        let plan = FaultPlan::new(3).with_corruption_at(3, 0, 0);
        let mut a = InMemoryArray::with_fault_plan(ArrayConfig::default(), plan);
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        assert_eq!(a.outstanding_corruptions(), 1, "fired on the 3rd op");
        let victim = locs.iter().find(|l| l.device == 0).unwrap();
        // Two clean reads of other chunks, then hit the corrupt one.
        for loc in locs.iter().filter(|l| l.device != 0) {
            a.try_read_chunk(*loc).unwrap();
        }
        let (bytes, mode) = a.try_read_chunk(*victim).unwrap();
        assert_eq!(mode, ReadMode::Healed);
        assert_eq!(crc::crc32c(&bytes), a.checksums[victim.device][&victim.stripe]);
        // Injected at op 3, detected at op 6 (3 writes + 3 reads).
        assert_eq!(a.stats().detection_latency_ops, 3);
        assert_eq!(a.stats().mean_detection_latency_ops(), 3.0);
    }

    #[test]
    fn scrub_repairs_latent_sectors() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.plan_mut().add_latent_sector(locs[0].device, locs[0].stripe);
        let step = a.scrub_step(usize::MAX);
        assert_eq!(step.latent_repaired, 1);
        assert_eq!(a.plan().latent_count(), 0);
        // Now a device failure is a single fault, not a double fault.
        a.fail_device(locs[1].device);
        assert!(a.try_read_chunk(locs[1]).is_ok());
    }

    #[test]
    fn scrub_pauses_during_rebuild_and_resumes() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        a.fail_device(victim);
        a.start_rebuild(victim).unwrap();
        let step = a.scrub_step(usize::MAX);
        assert!(step.paused_for_rebuild);
        assert_eq!(step.chunks_scrubbed, 0);
        while !a.rebuild_step(1).unwrap().complete {}
        let step = a.scrub_step(usize::MAX);
        assert!(!step.paused_for_rebuild);
        assert!(step.chunks_scrubbed > 0);
        assert!(step.pass_complete);
    }

    #[test]
    fn scrub_paces_in_increments() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for i in 0..9 {
            a.write_chunk_bytes(body(i), flush_full());
        }
        // 9 data chunks over 3 data columns = 3 complete stripes.
        let step = a.scrub_step(1);
        assert_eq!(step.stripes_scrubbed, 1);
        assert!(!step.pass_complete);
        let p = a.scrub_progress();
        assert_eq!(p.stripes_done, 1);
        assert_eq!(p.stripes_total, 3);
        let step = a.scrub_step(2);
        assert!(step.pass_complete);
        assert_eq!(a.stats().chunks_scrubbed, 12, "3 stripes × 4 chunks");
        assert_eq!(a.stats().scrub_read_bytes, 12 * 65536);
        // The next step starts a fresh pass (continuous scrubbing).
        let step = a.scrub_step(usize::MAX);
        assert_eq!(step.stripes_scrubbed, 3);
    }

    #[test]
    fn rebuild_refuses_to_launder_corrupt_survivor() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.inject_corruption(locs[1].device, locs[1].stripe);
        let victim = locs[0].device;
        a.fail_device(victim);
        a.rebuild_device(victim);
        assert_eq!(a.stats().corruptions_unrecoverable, 1);
        assert_eq!(a.stats().rebuilt_chunks, 0, "poisoned stripe not rebuilt");
    }

    #[test]
    fn raid6_degraded_reads_survive_double_failure() {
        let mut a = InMemoryArray::new(raid6());
        let locs: Vec<_> = (0..12).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.fail_device(locs[0].device);
        a.fail_device(locs[1].device);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
            let (bytes, _) = a.try_read_chunk(*loc).unwrap();
            assert_eq!(bytes, body(i as u8), "chunk {i} via fallible path");
        }
        assert!(a.stats().degraded_reads > 0);
        // Every decode read exactly k = 6 shards.
        assert_eq!(a.stats().reconstructed_bytes, a.stats().degraded_reads * 6 * 65536);
    }

    #[test]
    fn raid6_triple_fault_is_unrecoverable() {
        let mut a = InMemoryArray::new(raid6());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        for loc in &locs[0..3] {
            a.fail_device(loc.device);
        }
        assert!(a.read_chunk(locs[0]).is_none());
        assert_eq!(a.try_read_chunk(locs[0]), Err(ArrayError::DoubleFault { loc: locs[0] }));
    }

    #[test]
    fn raid6_rebuilds_through_second_failure() {
        let mut a = InMemoryArray::new(raid6());
        let locs: Vec<_> = (0..12).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let (d0, d1) = (locs[0].device, locs[1].device);
        a.fail_device(d0);
        a.fail_device(d1);
        // With m = 2, rebuilding one device while the other is still down
        // stays inside the erasure budget.
        assert!(a.rebuild_device(d0).unwrap() > 0);
        assert!(a.rebuild_device(d1).unwrap() > 0);
        assert_eq!(a.health_view(), ArrayHealth::Healthy);
        for (i, loc) in locs.iter().enumerate() {
            let (bytes, mode) = a.try_read_chunk(*loc).unwrap();
            assert_eq!(bytes, body(i as u8), "chunk {i}");
            assert_eq!(mode, ReadMode::Normal, "chunk {i} served directly after rebuild");
        }
    }

    #[test]
    fn raid6_degraded_read_heals_corrupt_member() {
        let mut a = InMemoryArray::new(raid6());
        let locs: Vec<_> = (0..12).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let (victim, witness) = (locs[0], locs[1]);
        assert!(a.inject_corruption(witness.device, witness.stripe));
        a.fail_device(victim.device);
        // One erasure + one corruption still leaves k = 6 honest shards:
        // the decode heals the corrupt member on the way through.
        let (bytes, mode) = a.try_read_chunk(victim).unwrap();
        assert_eq!(mode, ReadMode::Reconstructed);
        assert_eq!(bytes, body(0));
        assert_eq!(a.stats().corruptions_detected, 1);
        assert_eq!(a.stats().corruptions_healed, 1);
        let (bytes, mode) = a.try_read_chunk(witness).unwrap();
        assert_eq!(mode, ReadMode::Normal, "witness healed in place");
        assert_eq!(bytes, body(1));
    }

    #[test]
    fn raid6_latent_plus_failure_within_budget() {
        let mut a = InMemoryArray::new(raid6());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        a.fail_device(locs[0].device);
        a.plan_mut().add_latent_sector(locs[1].device, locs[1].stripe);
        let (bytes, mode) = a.try_read_chunk(locs[0]).unwrap();
        assert_eq!(mode, ReadMode::Reconstructed);
        assert_eq!(bytes, body(0));
        let (bytes, mode) = a.try_read_chunk(locs[1]).unwrap();
        assert_eq!(mode, ReadMode::Reconstructed);
        assert_eq!(bytes, body(1));
    }

    #[test]
    fn add_device_widens_at_stripe_boundary() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let old: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        assert_eq!(a.config().num_devices, 4);
        let id = a.add_device();
        assert_eq!(id, 4);
        assert_eq!(a.config().num_devices, 5, "at a boundary the epoch rolls immediately");
        let new: Vec<_> = (10..14).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        assert!(new.iter().all(|l| l.stripe == 1), "4 data columns fill one 4+1 stripe");
        assert_eq!(a.stats().stripes_completed, 2);
        for (i, loc) in old.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "old-epoch chunk {i}");
        }
        for (i, loc) in new.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(10 + i as u8), "new-epoch chunk {i}");
        }
        // Degraded reads decode each stripe with its own epoch's geometry.
        a.fail_device(0);
        for (i, loc) in old.iter().chain(new.iter()).enumerate() {
            assert!(a.read_chunk(*loc).is_some(), "chunk {i} readable degraded");
        }
    }

    #[test]
    fn add_device_mid_stripe_defers_to_close() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let mut locs = vec![a.write_chunk_bytes(body(0), flush_full())];
        a.add_device();
        assert_eq!(a.config().num_devices, 4, "the open stripe keeps its geometry");
        locs.push(a.write_chunk_bytes(body(1), flush_full()));
        locs.push(a.write_chunk_bytes(body(2), flush_full()));
        assert_eq!(locs[2].stripe, 0);
        assert_eq!(a.config().num_devices, 5, "widened once the stripe closed");
        let next: Vec<_> = (3..7).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        assert!(next.iter().all(|l| l.stripe == 1));
        locs.extend(next);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
        let scrubbed = a.scrub_step(usize::MAX);
        assert!(scrubbed.pass_complete);
        assert_eq!(scrubbed.detected, 0, "mixed-geometry scrub finds nothing wrong");
    }

    #[test]
    fn drain_refreshes_latent_and_returns_healthy() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let device = locs[0].device;
        a.plan_mut().add_latent_sector(device, locs[0].stripe);
        let held = a.devices[device].len() as u64;
        a.start_drain(device);
        assert_eq!(a.disk_states()[device], DiskState::Draining);
        assert_eq!(a.health_view(), ArrayHealth::Healthy, "draining spends no redundancy");
        while !a.drain_step(1).complete {}
        assert_eq!(a.disk_states()[device], DiskState::Healthy);
        assert_eq!(a.stats().drained_chunks, held);
        assert_eq!(a.stats().drain_write_bytes, held * 65536);
        assert_eq!(a.plan().latent_count(), 0, "the copy refreshed the latent sector");
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn rebuild_prioritizes_exposed_stripes() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..9).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        // Expose stripe 2 on a non-victim device.
        let exposed = locs[6..9].iter().find(|l| l.device != victim).unwrap();
        a.plan_mut().add_latent_sector(exposed.device, exposed.stripe);
        a.fail_device(victim);
        a.start_rebuild(victim).unwrap();
        assert_eq!(a.rebuild_stripes[0], exposed.stripe, "most-exposed stripe first");
        while !a.rebuild_step(1).unwrap().complete {}
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }
}
