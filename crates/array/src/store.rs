//! Byte-faithful in-memory RAID-5 store.
//!
//! Used by the prototype (§4.4) and the fault-injection integration tests.
//! Keeps real chunk contents per device, generates the parity chunk when a
//! stripe's last data column arrives, and can serve reads and reconstruct a
//! single failed device from the survivors.

use crate::config::ArrayConfig;
use crate::counters::ArrayStats;
use crate::layout::{ChunkLocation, Raid5Layout};
use crate::parity;
use crate::sink::{ArraySink, ChunkFlush};
use bytes::Bytes;
use std::collections::HashMap;

/// A byte-level RAID-5 array held in memory.
#[derive(Debug)]
pub struct InMemoryArray {
    layout: Raid5Layout,
    stats: ArrayStats,
    next_chunk_seq: u64,
    /// Device id → (stripe → chunk contents). Sparse: only written stripes
    /// are present.
    devices: Vec<HashMap<u64, Bytes>>,
    /// Buffer of the stripe currently being filled (data chunks in column
    /// order); drained when parity is generated.
    open_stripe: Vec<Bytes>,
    /// Devices marked failed; reads to them reconstruct from survivors.
    failed: Vec<bool>,
}

impl InMemoryArray {
    /// Create an empty array.
    pub fn new(cfg: ArrayConfig) -> Self {
        cfg.validate();
        Self {
            layout: Raid5Layout::new(cfg),
            stats: ArrayStats::new(cfg.num_devices),
            next_chunk_seq: 0,
            devices: vec![HashMap::new(); cfg.num_devices],
            open_stripe: Vec::with_capacity(cfg.data_columns()),
            failed: vec![false; cfg.num_devices],
        }
    }

    /// Write one chunk of real bytes; returns its location. The caller is
    /// responsible for zero-padding — `data.len()` must equal the chunk
    /// size. `flush` carries the accounting breakdown of the same chunk.
    pub fn write_chunk_bytes(&mut self, data: Bytes, flush: ChunkFlush) -> ChunkLocation {
        let cfg = *self.layout.config();
        assert_eq!(data.len() as u64, cfg.chunk_bytes, "sub-chunk write reached the array");
        assert_eq!(flush.total_bytes(), cfg.chunk_bytes, "flush accounting mismatch");

        let loc = self.layout.locate(self.next_chunk_seq);
        self.next_chunk_seq += 1;

        self.devices[loc.device].insert(loc.stripe, data.clone());
        let dev = &mut self.stats.devices[loc.device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }

        self.open_stripe.push(data);
        if self.open_stripe.len() == cfg.data_columns() {
            let refs: Vec<&[u8]> = self.open_stripe.iter().map(|b| b.as_ref()).collect();
            let parity_chunk = Bytes::from(parity::compute_parity(&refs));
            let pdev = self.layout.parity_device(loc.stripe);
            self.devices[pdev].insert(loc.stripe, parity_chunk);
            let p = &mut self.stats.devices[pdev];
            p.parity_bytes += cfg.chunk_bytes;
            p.chunk_writes += 1;
            self.stats.stripes_completed += 1;
            self.open_stripe.clear();
        }
        loc
    }

    /// Read the chunk at a location previously returned by
    /// [`Self::write_chunk_bytes`]. If the owning device has failed, the
    /// chunk is rebuilt from the stripe's survivors (requires the stripe to
    /// be complete). Returns `None` for never-written or unrecoverable
    /// locations.
    pub fn read_chunk(&self, loc: ChunkLocation) -> Option<Bytes> {
        if !self.failed[loc.device] {
            return self.devices[loc.device].get(&loc.stripe).cloned();
        }
        // Degraded read: XOR the surviving members of the stripe.
        let mut survivors: Vec<&[u8]> = Vec::with_capacity(self.layout.config().num_devices - 1);
        for (dev, map) in self.devices.iter().enumerate() {
            if dev == loc.device {
                continue;
            }
            if self.failed[dev] {
                return None; // double fault: unrecoverable under RAID-5
            }
            survivors.push(map.get(&loc.stripe)?.as_ref());
        }
        Some(Bytes::from(parity::reconstruct(&survivors)))
    }

    /// Mark a device failed (degraded mode).
    pub fn fail_device(&mut self, device: usize) {
        self.failed[device] = true;
    }

    /// Restore a previously failed device, rebuilding every chunk it held
    /// from the survivors. Returns the number of chunks rebuilt, or `None`
    /// if another device is also failed (double fault).
    pub fn rebuild_device(&mut self, device: usize) -> Option<usize> {
        if self.failed.iter().enumerate().any(|(d, &f)| f && d != device) {
            return None;
        }
        // Determine every stripe with any data: union of survivor stripes.
        let mut stripes: Vec<u64> = self
            .devices
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != device)
            .flat_map(|(_, m)| m.keys().copied())
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let mut rebuilt = HashMap::new();
        for stripe in stripes {
            let mut survivors: Vec<&[u8]> = Vec::new();
            let mut complete = true;
            for (dev, map) in self.devices.iter().enumerate() {
                if dev == device {
                    continue;
                }
                match map.get(&stripe) {
                    Some(b) => survivors.push(b.as_ref()),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                rebuilt.insert(stripe, Bytes::from(parity::reconstruct(&survivors)));
            }
        }
        let n = rebuilt.len();
        self.devices[device] = rebuilt;
        self.failed[device] = false;
        Some(n)
    }

    /// Number of chunks appended so far.
    pub fn chunks_written(&self) -> u64 {
        self.next_chunk_seq
    }
}

impl ArraySink for InMemoryArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        // Accounting-only path: synthesize a zero-filled chunk body. The
        // prototype uses `write_chunk_bytes` with real payloads instead.
        let body = Bytes::from(vec![0u8; self.layout.config().chunk_bytes as usize]);
        self.write_chunk_bytes(body, flush)
    }

    fn config(&self) -> &ArrayConfig {
        self.layout.config()
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flush_full() -> ChunkFlush {
        ChunkFlush { user_bytes: 65536, gc_bytes: 0, shadow_bytes: 0, pad_bytes: 0, group: 0, seg: 0, chunk_in_seg: 0 }
    }

    fn body(seed: u8) -> Bytes {
        Bytes::from((0..65536).map(|i| seed.wrapping_add(i as u8)).collect::<Vec<u8>>())
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        assert_eq!(a.read_chunk(loc).unwrap(), body(1));
    }

    #[test]
    fn degraded_read_reconstructs() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..3).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        // Stripe 0 is complete; fail each data device in turn and re-read.
        for (i, loc) in locs.iter().enumerate() {
            let mut b = InMemoryArray::new(ArrayConfig::default());
            for j in 0..3 {
                b.write_chunk_bytes(body(j), flush_full());
            }
            b.fail_device(loc.device);
            assert_eq!(b.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn double_fault_unrecoverable() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        for _ in 0..2 {
            a.write_chunk_bytes(body(9), flush_full());
        }
        a.fail_device(loc.device);
        a.fail_device((loc.device + 1) % 4);
        assert!(a.read_chunk(loc).is_none());
    }

    #[test]
    fn rebuild_restores_contents() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let locs: Vec<_> = (0..6).map(|i| a.write_chunk_bytes(body(i), flush_full())).collect();
        let victim = locs[0].device;
        a.fail_device(victim);
        let rebuilt = a.rebuild_device(victim).unwrap();
        assert!(rebuilt > 0);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(a.read_chunk(*loc).unwrap(), body(i as u8), "chunk {i}");
        }
    }

    #[test]
    fn rebuild_refuses_double_fault() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for i in 0..3 {
            a.write_chunk_bytes(body(i), flush_full());
        }
        a.fail_device(0);
        a.fail_device(1);
        assert!(a.rebuild_device(0).is_none());
    }

    #[test]
    fn incomplete_stripe_degraded_read_fails_gracefully() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        let loc = a.write_chunk_bytes(body(1), flush_full());
        // Stripe not complete: no parity yet.
        a.fail_device(loc.device);
        assert!(a.read_chunk(loc).is_none());
    }

    #[test]
    fn stats_match_counting_model() {
        let mut a = InMemoryArray::new(ArrayConfig::default());
        for _ in 0..6 {
            a.write_chunk(flush_full());
        }
        assert_eq!(a.stats().stripes_completed, 2);
        assert_eq!(a.stats().parity_bytes(), 2 * 65536);
        assert_eq!(a.stats().data_bytes(), 6 * 65536);
    }
}
