//! The chunk-flush interface between the log-structured layer and the
//! array, plus the accounting-only array implementation.

use crate::config::ArrayConfig;
use crate::counters::ArrayStats;
use crate::layout::{ChunkLocation, Raid5Layout};
use serde::{Deserialize, Serialize};

/// Category of bytes inside a flushed chunk, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Traffic {
    /// User-written payload.
    User,
    /// GC-rewritten payload.
    Gc,
    /// Cross-group shadow-append copies (ADAPT §3.3).
    Shadow,
    /// Zero padding appended to reach chunk alignment.
    Pad,
}

/// One chunk-sized write as seen by the array: a breakdown of the chunk's
/// bytes by traffic class. The sum of the parts must equal the configured
/// chunk size — the array never receives sub-chunk writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFlush {
    /// Bytes of user payload.
    pub user_bytes: u64,
    /// Bytes of GC-rewrite payload.
    pub gc_bytes: u64,
    /// Bytes of shadow-append copies.
    pub shadow_bytes: u64,
    /// Bytes of zero padding.
    pub pad_bytes: u64,
    /// Originating group (stream) id, for multi-stream statistics.
    pub group: u8,
    /// Physical segment the chunk belongs to (segments are reused after
    /// GC, so this + `chunk_in_seg` is the chunk's stable physical
    /// address — what a device-level FTL sees being overwritten).
    pub seg: u32,
    /// Chunk index within the segment.
    pub chunk_in_seg: u32,
}

impl ChunkFlush {
    /// The chunk's physical address in chunk units, given the segment
    /// geometry.
    pub fn physical_chunk_addr(&self, chunks_per_segment: u32) -> u64 {
        self.seg as u64 * chunks_per_segment as u64 + self.chunk_in_seg as u64
    }
}

impl ChunkFlush {
    /// Total bytes in the chunk.
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes + self.gc_bytes + self.shadow_bytes + self.pad_bytes
    }

    /// Payload (non-padding) bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.user_bytes + self.gc_bytes + self.shadow_bytes
    }
}

/// Receiver of chunk-granular flushes.
pub trait ArraySink {
    /// Accept one chunk write. Implementations must reject (panic in debug)
    /// chunks whose size differs from the configured chunk size.
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation;

    /// Array geometry.
    fn config(&self) -> &ArrayConfig;

    /// Accounting snapshot.
    fn stats(&self) -> &ArrayStats;
}

/// Accounting-only array model: maps appends through the RAID-5 layout and
/// maintains per-device counters, without storing any data bytes. O(1) per
/// chunk; this is what the trace-driven simulator uses.
#[derive(Debug, Clone)]
pub struct CountingArray {
    layout: Raid5Layout,
    stats: ArrayStats,
    next_chunk_seq: u64,
}

impl CountingArray {
    /// Create an empty counting array.
    pub fn new(cfg: ArrayConfig) -> Self {
        Self {
            layout: Raid5Layout::new(cfg),
            stats: ArrayStats::new(cfg.num_devices),
            next_chunk_seq: 0,
        }
    }

    /// Number of chunks flushed so far.
    pub fn chunks_written(&self) -> u64 {
        self.next_chunk_seq
    }

    /// The layout in use.
    pub fn layout(&self) -> &Raid5Layout {
        &self.layout
    }
}

impl ArraySink for CountingArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        let cfg = *self.layout.config();
        debug_assert_eq!(
            flush.total_bytes(),
            cfg.chunk_bytes,
            "array received a non-chunk-aligned write"
        );
        let loc = self.layout.locate(self.next_chunk_seq);
        self.next_chunk_seq += 1;

        let dev = &mut self.stats.devices[loc.device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }

        // Parity: one parity chunk per completed stripe, charged to the
        // stripe's parity device. Log-structured appends fill stripes
        // sequentially, so the stripe completes exactly when its last data
        // column is written.
        let k = cfg.data_columns() as u64;
        if self.next_chunk_seq % k == 0 {
            let pdev = self.layout.parity_device(loc.stripe);
            let p = &mut self.stats.devices[pdev];
            p.parity_bytes += cfg.chunk_bytes;
            p.chunk_writes += 1;
            self.stats.stripes_completed += 1;
        }
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.layout.config()
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_chunk(group: u8) -> ChunkFlush {
        ChunkFlush { user_bytes: 65536, gc_bytes: 0, shadow_bytes: 0, pad_bytes: 0, group, seg: 0, chunk_in_seg: 0 }
    }

    fn padded_chunk(pad: u64) -> ChunkFlush {
        ChunkFlush { user_bytes: 65536 - pad, gc_bytes: 0, shadow_bytes: 0, pad_bytes: pad, group: 0, seg: 0, chunk_in_seg: 0 }
    }

    #[test]
    fn counts_full_and_padded() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(full_chunk(0));
        a.write_chunk(padded_chunk(4096));
        assert_eq!(a.stats().full_chunks, 1);
        assert_eq!(a.stats().padded_chunks, 1);
        assert_eq!(a.stats().pad_bytes(), 4096);
        assert_eq!(a.stats().data_bytes(), 65536 + 65536 - 4096);
    }

    #[test]
    fn parity_written_per_stripe() {
        let mut a = CountingArray::new(ArrayConfig::default());
        // 3 data columns per stripe with 4 devices.
        for _ in 0..6 {
            a.write_chunk(full_chunk(0));
        }
        assert_eq!(a.stats().stripes_completed, 2);
        assert_eq!(a.stats().parity_bytes(), 2 * 65536);
    }

    #[test]
    fn partial_stripe_has_no_parity_yet() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(full_chunk(0));
        a.write_chunk(full_chunk(0));
        assert_eq!(a.stats().stripes_completed, 0);
        assert_eq!(a.stats().parity_bytes(), 0);
    }

    #[test]
    fn long_append_balances_devices() {
        let mut a = CountingArray::new(ArrayConfig::default());
        for _ in 0..3 * 400 {
            a.write_chunk(full_chunk(0));
        }
        assert!(a.stats().device_imbalance() < 1e-9, "{:?}", a.stats().devices);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn rejects_misaligned_chunk() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(ChunkFlush {
            user_bytes: 100,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group: 0,
            seg: 0,
            chunk_in_seg: 0,
        });
    }

    #[test]
    fn chunk_flush_byte_math() {
        let f = ChunkFlush { user_bytes: 1, gc_bytes: 2, shadow_bytes: 3, pad_bytes: 4, group: 9, seg: 0, chunk_in_seg: 0 };
        assert_eq!(f.total_bytes(), 10);
        assert_eq!(f.payload_bytes(), 6);
    }
}
