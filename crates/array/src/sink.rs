//! The chunk-flush interface between the log-structured layer and the
//! array, plus the accounting-only array implementation.

use crate::config::ArrayConfig;
use crate::counters::ArrayStats;
use crate::error::ArrayError;
use crate::fault::{
    ArrayHealth, DiskState, FaultPlan, ReadOutcome, RebuildProgress, ScrubProgress, ScrubStep,
};
use crate::layout::{ChunkLocation, Raid5Layout};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Category of bytes inside a flushed chunk, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Traffic {
    /// User-written payload.
    User,
    /// GC-rewritten payload.
    Gc,
    /// Cross-group shadow-append copies (ADAPT §3.3).
    Shadow,
    /// Zero padding appended to reach chunk alignment.
    Pad,
}

/// One chunk-sized write as seen by the array: a breakdown of the chunk's
/// bytes by traffic class. The sum of the parts must equal the configured
/// chunk size — the array never receives sub-chunk writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFlush {
    /// Bytes of user payload.
    pub user_bytes: u64,
    /// Bytes of GC-rewrite payload.
    pub gc_bytes: u64,
    /// Bytes of shadow-append copies.
    pub shadow_bytes: u64,
    /// Bytes of zero padding.
    pub pad_bytes: u64,
    /// Originating group (stream) id, for multi-stream statistics.
    pub group: u8,
    /// Physical segment the chunk belongs to (segments are reused after
    /// GC, so this + `chunk_in_seg` is the chunk's stable physical
    /// address — what a device-level FTL sees being overwritten).
    pub seg: u32,
    /// Chunk index within the segment.
    pub chunk_in_seg: u32,
}

impl ChunkFlush {
    /// The chunk's physical address in chunk units, given the segment
    /// geometry.
    pub fn physical_chunk_addr(&self, chunks_per_segment: u32) -> u64 {
        self.seg as u64 * chunks_per_segment as u64 + self.chunk_in_seg as u64
    }
}

impl ChunkFlush {
    /// Total bytes in the chunk.
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes + self.gc_bytes + self.shadow_bytes + self.pad_bytes
    }

    /// Payload (non-padding) bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.user_bytes + self.gc_bytes + self.shadow_bytes
    }
}

/// A chunk-flush digest recovered from the WAL tail, used by durable
/// sinks to restore records that were still in the volatile write cache
/// when power failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredFlush {
    /// Global chunk sequence number (equals the engine's flush sequence).
    pub chunk_seq: u64,
    /// The flush as originally issued.
    pub flush: ChunkFlush,
}

/// What a durable sink did to reconcile its on-disk state with the
/// recovered log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkReconcile {
    /// CRC-valid records found on disk.
    pub records_scanned: u64,
    /// Scanned records confirmed by the recovered log and kept.
    pub records_reused: u64,
    /// Records lost to the crash and rewritten from WAL digests.
    pub records_restored: u64,
    /// Scanned records beyond the durable log (unacknowledged tail),
    /// truncated away.
    pub records_discarded: u64,
}

/// Receiver of chunk-granular flushes.
pub trait ArraySink {
    /// Accept one chunk write. Implementations must reject (panic in debug)
    /// chunks whose size differs from the configured chunk size.
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation;

    /// Accept one chunk write *with its payload as a borrowed slice*.
    ///
    /// Ownership rule at the sink boundary: the payload belongs to the
    /// caller and is only valid for the duration of the call. A sink that
    /// stores or frames real bytes copies them exactly once, here, and
    /// accounts that copy in [`ArrayStats::copy_bytes`]; accounting-only
    /// sinks must not copy at all (the default ignores the payload and
    /// delegates to [`ArraySink::write_chunk`]). This is what lets flush,
    /// GC migration, and rebuild forward chunk payloads without pooled
    /// `Vec` round-trips.
    fn write_chunk_payload(&mut self, flush: ChunkFlush, payload: &[u8]) -> ChunkLocation {
        debug_assert_eq!(payload.len() as u64, self.config().chunk_bytes);
        let _ = payload;
        self.write_chunk(flush)
    }

    /// Array geometry.
    fn config(&self) -> &ArrayConfig;

    /// Accounting snapshot.
    fn stats(&self) -> &ArrayStats;

    /// Current array health. Sinks without fault modeling are always
    /// healthy.
    fn health(&self) -> ArrayHealth {
        ArrayHealth::Healthy
    }

    /// Account (and, in fault-modeling sinks, fault-check) one chunk read
    /// at a previously returned location. The default succeeds as a direct
    /// read — sinks without fault modeling never fail a read.
    fn read_chunk_at(&mut self, loc: ChunkLocation) -> Result<ReadOutcome, ArrayError> {
        let _ = loc;
        Ok(ReadOutcome::normal(self.config().chunk_bytes))
    }

    /// Advance the background scrub by at most `max_stripes` stripes.
    /// Sinks without integrity modeling return `None` (no scrub to run);
    /// the engine pumps this once per host op when scrubbing is enabled.
    fn scrub_step(&mut self, max_stripes: usize) -> Option<ScrubStep> {
        let _ = max_stripes;
        None
    }

    /// Make everything accepted so far durable ahead of a checkpoint.
    /// Volatile sinks have nothing to do.
    fn sync_for_checkpoint(&mut self) -> Result<(), ArrayError> {
        Ok(())
    }

    /// Reconcile the sink with a recovered log: `next_chunk_seq` chunk
    /// flushes are proven durable, and `tail` carries WAL digests for the
    /// most recent of them (anything a checkpoint already covered was
    /// synced at checkpoint time and must still be on disk). Sinks that
    /// don't support crash recovery return
    /// [`StorageFailure::Unsupported`](crate::error::StorageFailure).
    fn recover_reconcile(
        &mut self,
        next_chunk_seq: u64,
        tail: &[RecoveredFlush],
    ) -> Result<SinkReconcile, ArrayError> {
        let _ = (next_chunk_seq, tail);
        Err(ArrayError::Storage { failure: crate::error::StorageFailure::Unsupported })
    }
}

/// Accounting-only array model: maps appends through the RAID-5 layout and
/// maintains per-device counters, without storing any data bytes. O(1) per
/// chunk; this is what the trace-driven simulator uses.
#[derive(Debug, Clone)]
pub struct CountingArray {
    layout: Raid5Layout,
    stats: ArrayStats,
    next_chunk_seq: u64,
}

impl CountingArray {
    /// Create an empty counting array.
    pub fn new(cfg: ArrayConfig) -> Self {
        Self {
            layout: Raid5Layout::new(cfg),
            stats: ArrayStats::new(cfg.num_devices),
            next_chunk_seq: 0,
        }
    }

    /// Number of chunks flushed so far.
    pub fn chunks_written(&self) -> u64 {
        self.next_chunk_seq
    }

    /// The layout in use.
    pub fn layout(&self) -> &Raid5Layout {
        &self.layout
    }

    /// Mutable counters, for wrappers that layer fault accounting on top
    /// (see [`FaultyArray`]).
    pub fn stats_mut(&mut self) -> &mut ArrayStats {
        &mut self.stats
    }
}

impl ArraySink for CountingArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        let cfg = *self.layout.config();
        debug_assert_eq!(
            flush.total_bytes(),
            cfg.chunk_bytes,
            "array received a non-chunk-aligned write"
        );
        let loc = self.layout.locate(self.next_chunk_seq);
        self.next_chunk_seq += 1;

        let dev = &mut self.stats.devices[loc.device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }

        // Parity: `m` parity chunks per completed stripe, charged to the
        // stripe's parity devices. Log-structured appends fill stripes
        // sequentially, so the stripe completes exactly when its last data
        // column is written.
        let k = cfg.data_columns() as u64;
        if self.next_chunk_seq.is_multiple_of(k) {
            for j in 0..cfg.parity_devices {
                let pdev = self.layout.parity_device_j(loc.stripe, j);
                let p = &mut self.stats.devices[pdev];
                p.parity_bytes += cfg.chunk_bytes;
                p.chunk_writes += 1;
            }
            self.stats.stripes_completed += 1;
        }
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.layout.config()
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    fn recover_reconcile(
        &mut self,
        next_chunk_seq: u64,
        _tail: &[RecoveredFlush],
    ) -> Result<SinkReconcile, ArrayError> {
        // Nothing persists here; recovery just realigns the layout cursor
        // so future chunk locations stay in lockstep with the recovered
        // engine. Lifetime counters restart from zero (documented: stats
        // after in-memory recovery cover the post-recovery epoch only).
        self.next_chunk_seq = next_chunk_seq;
        Ok(SinkReconcile::default())
    }
}

/// Fault-aware accounting array: a [`CountingArray`] plus a deterministic
/// [`FaultPlan`], degraded-read accounting, and an incremental rebuild
/// driver. This is what the trace-driven fault-scenario simulator runs
/// against — O(1) per chunk like [`CountingArray`], no data bytes stored
/// (reconstruction is modeled by charging the survivor reads the erasure
/// math implies; the byte-exactness of that math is proven separately by
/// [`crate::store::InMemoryArray`] and the parity/Reed-Solomon property
/// tests). The geometry's `m` parity columns set the fault budget: any
/// combination of at most `m` simultaneous erasures (failed devices,
/// latent sectors) per stripe stays readable.
#[derive(Debug, Clone)]
pub struct FaultyArray {
    inner: CountingArray,
    plan: FaultPlan,
    /// Devices failed so far, in failure order.
    failed: Vec<usize>,
    /// Devices the current rebuild sweep is restoring (≤ m of them —
    /// one sweep replaces every failed device at once).
    rebuild_targets: Vec<usize>,
    /// Priority-ordered stripe worklist of the current sweep: stripes
    /// carrying extra exposure (latent sectors, undetected corruption)
    /// first, then the rest in address order.
    rebuild_queue: Vec<u64>,
    rebuild_pos: usize,
    /// Stripes the sweep has already restored (the worklist is not in
    /// address order, so a cursor comparison is not enough).
    rebuild_done: BTreeSet<u64>,
    /// Stripes closed when the sweep started; stripes at or past this
    /// were written with the spares already in place.
    rebuild_total: u64,
    rebuilding: bool,
    /// Device being proactively evacuated (planned removal), if any.
    draining: Option<usize>,
    drain_cursor: u64,
    drain_total: u64,
    /// Silently corrupted chunks, (device, stripe) → op at injection.
    /// Modeled like latent sectors but invisible without a checksum: reads
    /// still "succeed" — only verify-on-read or a scrub pass notices.
    corrupted: BTreeMap<(usize, u64), u64>,
    /// Chunks already reported unrecoverable (counted once, not per read).
    known_bad: BTreeSet<(usize, u64)>,
    /// Scrub sweep state: next stripe to verify and the pass's extent.
    scrub_cursor: u64,
    scrub_total: u64,
}

impl FaultyArray {
    /// Wrap an empty counting array with a fault plan.
    pub fn new(cfg: ArrayConfig, plan: FaultPlan) -> Self {
        Self {
            inner: CountingArray::new(cfg),
            plan,
            failed: Vec::new(),
            rebuild_targets: Vec::new(),
            rebuild_queue: Vec::new(),
            rebuild_pos: 0,
            rebuild_done: BTreeSet::new(),
            rebuild_total: 0,
            rebuilding: false,
            draining: None,
            drain_cursor: 0,
            drain_total: 0,
            corrupted: BTreeMap::new(),
            known_bad: BTreeSet::new(),
            scrub_cursor: 0,
            scrub_total: 0,
        }
    }

    /// Number of chunks flushed so far.
    pub fn chunks_written(&self) -> u64 {
        self.inner.chunks_written()
    }

    /// The fault plan (op counter, outstanding schedules).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Mutable fault plan, for injecting faults mid-run.
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    /// Fail a device immediately (outside the plan's schedule).
    pub fn fail_device(&mut self, device: usize) {
        assert!(device < self.inner.config().num_devices, "no such device");
        if !self.failed.contains(&device) {
            self.failed.push(device);
        }
    }

    /// Devices currently failed.
    pub fn failed_devices(&self) -> &[usize] {
        &self.failed
    }

    /// Begin an incremental rebuild of every failed device onto spares.
    /// Up to `m` devices rebuild in one sweep; more than `m` is past the
    /// code's fault budget and the data is gone. The sweep covers every
    /// stripe closed so far, most-exposed stripes first; stripes closed
    /// after this point are written with the spares already in place and
    /// need no sweep.
    pub fn start_rebuild(&mut self) -> Result<RebuildProgress, ArrayError> {
        let m = self.inner.config().parity_devices;
        if self.failed.is_empty() {
            return Err(ArrayError::NotDegraded);
        }
        if self.failed.len() > m {
            let loc = ChunkLocation { stripe: 0, device: self.failed[m], column: 0 };
            return Err(ArrayError::DoubleFault { loc });
        }
        self.rebuilding = true;
        self.rebuild_targets = self.failed.clone();
        self.rebuild_total = self.inner.stats().stripes_completed;
        self.rebuild_queue = self.priority_stripe_order(self.rebuild_total);
        self.rebuild_pos = 0;
        self.rebuild_done.clear();
        Ok(self.rebuild_progress())
    }

    /// Stripe order for the rebuild sweep: stripes carrying extra
    /// exposure on their surviving members (latent sectors, undetected
    /// corruption, condemned chunks) come first — most exposed first —
    /// because one more fault there turns into data loss; the rest follow
    /// in address order.
    fn priority_stripe_order(&self, total: u64) -> Vec<u64> {
        let mut exposure: BTreeMap<u64, usize> = BTreeMap::new();
        {
            let targets = &self.rebuild_targets;
            let mut note = |d: usize, s: u64| {
                if s < total && !targets.contains(&d) {
                    *exposure.entry(s).or_insert(0) += 1;
                }
            };
            for &(d, s) in self.plan.latent_entries() {
                note(d, s);
            }
            for &(d, s) in self.corrupted.keys() {
                note(d, s);
            }
            for &(d, s) in &self.known_bad {
                note(d, s);
            }
        }
        let mut exposed: Vec<u64> = exposure.keys().copied().collect();
        exposed.sort_by_key(|s| (std::cmp::Reverse(exposure[s]), *s));
        let mut order = exposed;
        order.extend((0..total).filter(|s| !exposure.contains_key(s)));
        order
    }

    /// Advance the rebuild sweep by at most `max_stripes` stripes,
    /// charging survivor reads and spare writes to the rebuild counters
    /// (each visited stripe reads its `n - targets` surviving chunks once
    /// and writes one chunk per rebuilt device). Completing the sweep
    /// returns the array to [`ArrayHealth::Healthy`].
    pub fn rebuild_step(&mut self, max_stripes: u64) -> Result<RebuildProgress, ArrayError> {
        if !self.rebuilding {
            return Err(ArrayError::NotDegraded);
        }
        let chunk = self.inner.config().chunk_bytes;
        let targets = self.rebuild_targets.clone();
        let survivors = (self.inner.config().num_devices - targets.len()) as u64;
        let end = (self.rebuild_pos as u64)
            .saturating_add(max_stripes)
            .min(self.rebuild_queue.len() as u64) as usize;
        let stripes = (end - self.rebuild_pos) as u64;
        let stats = self.inner.stats_mut();
        stats.rebuild_read_bytes += stripes * survivors * chunk;
        stats.rebuild_write_bytes += stripes * targets.len() as u64 * chunk;
        stats.rebuilt_chunks += stripes * targets.len() as u64;
        for i in self.rebuild_pos..end {
            let stripe = self.rebuild_queue[i];
            for &d in &targets {
                self.plan.clear_latent(d, stripe);
            }
            self.rebuild_done.insert(stripe);
        }
        self.rebuild_pos = end;
        if self.rebuild_pos == self.rebuild_queue.len() {
            self.rebuilding = false;
            self.failed.retain(|d| !targets.contains(d));
            self.rebuild_targets.clear();
            self.rebuild_done.clear();
        }
        Ok(self.rebuild_progress())
    }

    /// Current sweep progress.
    pub fn rebuild_progress(&self) -> RebuildProgress {
        RebuildProgress {
            stripes_done: self.rebuild_pos as u64,
            stripes_total: self.rebuild_queue.len() as u64,
            complete: !self.rebuilding && self.rebuild_pos >= self.rebuild_queue.len(),
        }
    }

    /// Per-device lifecycle states.
    pub fn disk_states(&self) -> Vec<DiskState> {
        (0..self.inner.config().num_devices)
            .map(|d| {
                if self.rebuilding && self.rebuild_targets.contains(&d) {
                    DiskState::Rebuilding
                } else if self.failed.contains(&d) {
                    DiskState::Failed
                } else if self.draining == Some(d) {
                    DiskState::Draining
                } else {
                    DiskState::Healthy
                }
            })
            .collect()
    }

    /// Begin proactively draining `device` onto a replacement (planned
    /// removal). Unlike a rebuild this spends no redundancy: the device
    /// keeps serving reads while a paced sweep copies its chunks out.
    /// Panics if the device is failed or another drain is in flight —
    /// drains are planned operations issued by a scheduler that can see
    /// [`Self::disk_states`].
    pub fn start_drain(&mut self, device: usize) -> RebuildProgress {
        assert!(device < self.inner.config().num_devices, "no such device");
        assert!(!self.failed.contains(&device), "cannot drain a failed device");
        assert!(self.draining.is_none(), "one drain at a time");
        self.draining = Some(device);
        self.drain_cursor = 0;
        self.drain_total = self.inner.stats().stripes_completed;
        self.drain_progress()
    }

    /// Advance the drain sweep by at most `max_stripes` stripes. Each
    /// stripe copies the device's one chunk directly (read + write, no
    /// decode) to the replacement, charged to the drain counters; latent
    /// sectors on the drained device are refreshed by the copy.
    /// Completing the sweep releases the device.
    pub fn drain_step(&mut self, max_stripes: u64) -> RebuildProgress {
        let Some(device) = self.draining else {
            return self.drain_progress();
        };
        let chunk = self.inner.config().chunk_bytes;
        let end = self.drain_cursor.saturating_add(max_stripes).min(self.drain_total);
        let stripes = end - self.drain_cursor;
        let stats = self.inner.stats_mut();
        stats.drain_read_bytes += stripes * chunk;
        stats.drain_write_bytes += stripes * chunk;
        stats.drained_chunks += stripes;
        for stripe in self.drain_cursor..end {
            self.plan.clear_latent(device, stripe);
        }
        self.drain_cursor = end;
        if self.drain_cursor == self.drain_total {
            self.draining = None;
        }
        self.drain_progress()
    }

    /// Current drain-sweep progress.
    pub fn drain_progress(&self) -> RebuildProgress {
        RebuildProgress {
            stripes_done: self.drain_cursor,
            stripes_total: self.drain_total,
            complete: self.draining.is_none(),
        }
    }

    /// Has the current rebuild sweep already restored `stripe` (or was it
    /// closed after the sweep started, with the spares in place)?
    fn stripe_rebuilt(&self, stripe: u64) -> bool {
        self.rebuilding && (stripe >= self.rebuild_total || self.rebuild_done.contains(&stripe))
    }

    /// Does the chunk at (device, stripe) currently count as an erasure —
    /// its home copy unreadable, requiring decode from the other members?
    fn device_erased_at(&self, device: usize, stripe: u64) -> bool {
        let failed = self.failed.contains(&device);
        let rebuilt =
            failed && self.rebuild_targets.contains(&device) && self.stripe_rebuilt(stripe);
        (failed && !rebuilt) || self.plan.is_latent(device, stripe)
    }

    /// Every device whose chunk in `stripe` is currently erased.
    fn erased_members(&self, stripe: u64) -> Vec<usize> {
        let n = self.inner.config().num_devices;
        (0..n).filter(|&d| self.device_erased_at(d, stripe)).collect()
    }

    /// Stripe `stripe` has parity on disk (appends close stripes in
    /// order, so this is a simple cursor comparison).
    fn stripe_complete(&self, stripe: u64) -> bool {
        stripe < self.inner.stats().stripes_completed
    }

    fn apply_due_failures(&mut self, due: Vec<usize>) {
        for d in due {
            if !self.failed.contains(&d) {
                self.failed.push(d);
            }
        }
    }

    fn apply_due_corruptions(&mut self) {
        for (d, s) in self.plan.take_due_corruptions() {
            self.inject_corruption(d, s);
        }
    }

    /// Mark the chunk at (device, stripe) silently corrupt. Modeled — no
    /// bytes are stored, so corruption is a flag plus the injection op for
    /// detection-latency accounting. Only chunks in closed stripes can
    /// corrupt meaningfully; returns false otherwise.
    pub fn inject_corruption(&mut self, device: usize, stripe: u64) -> bool {
        if device >= self.inner.config().num_devices || !self.stripe_complete(stripe) {
            return false;
        }
        self.corrupted.insert((device, stripe), self.plan.ops());
        true
    }

    /// Injected corruptions not yet detected.
    pub fn outstanding_corruptions(&self) -> usize {
        self.corrupted.len()
    }

    /// Chunks reported unrecoverable so far.
    pub fn unrecoverable_chunks(&self) -> usize {
        self.known_bad.len()
    }

    /// Can the chunk at (device, stripe) be honestly repaired from the
    /// stripe's other members? Erasure decode needs `k` intact shards:
    /// erased, silently corrupt, and condemned members all shrink the
    /// pool. (With `m = 1` this reduces to the classic RAID-5 rule: any
    /// second fault in the stripe makes repair impossible.)
    fn repairable(&self, device: usize, stripe: u64) -> bool {
        let cfg = self.inner.config();
        let intact = (0..cfg.num_devices)
            .filter(|&d| d != device)
            .filter(|&d| {
                !self.device_erased_at(d, stripe)
                    && !self.corrupted.contains_key(&(d, stripe))
                    && !self.known_bad.contains(&(d, stripe))
            })
            .count();
        intact >= cfg.data_columns()
    }

    /// Advance the background scrub by at most `max_stripes` stripes,
    /// verifying every chunk (data + parity) of each visited stripe
    /// against its checksum, repairing corrupt chunks from survivors, and
    /// rewriting latent sectors before they can pair with a device failure
    /// into a double fault. Pauses while a rebuild is in flight; restarts
    /// a fresh pass after the previous one completes.
    pub fn scrub_step(&mut self, max_stripes: u64) -> ScrubStep {
        if self.rebuilding {
            return ScrubStep::paused();
        }
        if self.scrub_cursor >= self.scrub_total {
            self.scrub_total = self.inner.stats().stripes_completed;
            self.scrub_cursor = 0;
            if self.scrub_total == 0 {
                return ScrubStep::default();
            }
        }
        let chunk = self.inner.config().chunk_bytes;
        let n = self.inner.config().num_devices;
        // A repair decode reads the `k` shards it needs, not every member.
        let decode_reads = self.inner.config().data_columns() as u64;
        let ops = self.plan.ops();
        let mut step = ScrubStep::default();
        let end = self.scrub_cursor.saturating_add(max_stripes).min(self.scrub_total);
        for stripe in self.scrub_cursor..end {
            step.stripes_scrubbed += 1;
            for device in 0..n {
                if self.failed.contains(&device) || self.known_bad.contains(&(device, stripe)) {
                    continue;
                }
                if self.plan.is_latent(device, stripe) {
                    if self.repairable(device, stripe) {
                        self.plan.clear_latent(device, stripe);
                        step.latent_repaired += 1;
                        step.read_bytes += decode_reads * chunk;
                        step.heal_write_bytes += chunk;
                    }
                    continue;
                }
                step.chunks_scrubbed += 1;
                step.read_bytes += chunk;
                let Some(at) = self.corrupted.remove(&(device, stripe)) else {
                    continue;
                };
                step.detected += 1;
                step.detection_latency_ops += ops.saturating_sub(at);
                if self.repairable(device, stripe) {
                    step.healed += 1;
                    step.read_bytes += decode_reads * chunk;
                    step.heal_write_bytes += chunk;
                } else {
                    step.unrecoverable += 1;
                    self.known_bad.insert((device, stripe));
                }
            }
        }
        self.scrub_cursor = end;
        step.pass_complete = self.scrub_total > 0 && self.scrub_cursor >= self.scrub_total;
        self.inner.stats_mut().fold_scrub_step(&step);
        step
    }

    /// Current scrub-pass progress.
    pub fn scrub_progress(&self) -> ScrubProgress {
        ScrubProgress {
            stripes_done: self.scrub_cursor,
            stripes_total: self.scrub_total,
            complete: self.scrub_cursor >= self.scrub_total,
        }
    }
}

impl ArraySink for FaultyArray {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        let due = self.plan.record_op();
        self.apply_due_failures(due);
        self.apply_due_corruptions();
        // Degraded writes still advance the layout: the chunk destined to
        // the failed member is lost until rebuilt, but parity (written to
        // a survivor) keeps it reconstructable, so accounting is
        // unchanged.
        let stripes_before = self.inner.stats().stripes_completed;
        let loc = self.inner.write_chunk(flush);
        // Rewrites refresh the media, clearing latent sector errors.
        self.plan.clear_latent(loc.device, loc.stripe);
        if self.inner.stats().stripes_completed > stripes_before {
            for j in 0..self.inner.config().parity_devices {
                let pdev = self.inner.layout().parity_device_j(loc.stripe, j);
                self.plan.clear_latent(pdev, loc.stripe);
            }
        }
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.inner.config()
    }

    fn stats(&self) -> &ArrayStats {
        self.inner.stats()
    }

    fn health(&self) -> ArrayHealth {
        ArrayHealth::from_disk_states(&self.disk_states())
    }

    fn read_chunk_at(&mut self, loc: ChunkLocation) -> Result<ReadOutcome, ArrayError> {
        let due = self.plan.record_op();
        self.apply_due_failures(due);
        self.apply_due_corruptions();
        let cfg = *self.config();
        let chunk = cfg.chunk_bytes;
        let k = cfg.data_columns();
        let m = cfg.parity_devices;

        if self.plan.transient_read_fires() {
            return Err(ArrayError::TransientRead { loc });
        }
        if self.device_erased_at(loc.device, loc.stripe) {
            // Degraded read: decode from the stripe's other members. The
            // code tolerates at most `m` erasures per stripe (failed
            // devices not yet re-covered by the rebuild sweep, plus
            // latent sectors).
            let erased = self.erased_members(loc.stripe);
            if erased.len() > m {
                return Err(ArrayError::DoubleFault { loc });
            }
            if !self.stripe_complete(loc.stripe) {
                return Err(ArrayError::Unreconstructable { loc });
            }
            if self.known_bad.contains(&(loc.device, loc.stripe)) {
                // Condemned before its device was lost: still gone.
                return Err(ArrayError::ChecksumMismatch { loc });
            }
            // The decode draws on the intact members. Condemned and
            // silently corrupt members shrink the pool; with fewer than
            // `k` honest shards left, reconstruction is impossible and
            // the corrupt member is the casualty to report.
            let members: Vec<usize> =
                (0..cfg.num_devices).filter(|&d| !erased.contains(&d)).collect();
            let bad_known: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&d| self.known_bad.contains(&(d, loc.stripe)))
                .collect();
            let bad_corrupt: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&d| self.corrupted.contains_key(&(d, loc.stripe)))
                .collect();
            let intact = members.len() - bad_known.len() - bad_corrupt.len();
            if intact < k {
                if let Some(&bad) = bad_known.first() {
                    let loc = ChunkLocation { stripe: loc.stripe, device: bad, column: 0 };
                    return Err(ArrayError::ChecksumMismatch { loc });
                }
                if let Some(&bad) = bad_corrupt.first() {
                    // Find-and-remove: if another path already condemned
                    // the member between checks, we simply don't reach
                    // here — no double count.
                    let at = self.corrupted.remove(&(bad, loc.stripe)).unwrap_or_default();
                    self.known_bad.insert((bad, loc.stripe));
                    let ops = self.plan.ops();
                    let stats = self.inner.stats_mut();
                    stats.corruptions_detected += 1;
                    stats.detection_latency_ops += ops.saturating_sub(at);
                    stats.corruptions_unrecoverable += 1;
                    let loc = ChunkLocation { stripe: loc.stripe, device: bad, column: 0 };
                    return Err(ArrayError::ChecksumMismatch { loc });
                }
                // `erased.len() <= m` guarantees `members.len() >= k`, so
                // a shortfall without bad members cannot happen; keep a
                // typed error rather than a panic for release builds.
                return Err(ArrayError::Unreconstructable { loc });
            }
            // Redundancy to spare (only possible with m >= 2): verify-on-
            // read heals corrupt members discovered along the way instead
            // of condemning them.
            let ops = self.plan.ops();
            for bad in bad_corrupt {
                let at = self.corrupted.remove(&(bad, loc.stripe)).unwrap_or_default();
                let stats = self.inner.stats_mut();
                stats.corruptions_detected += 1;
                stats.detection_latency_ops += ops.saturating_sub(at);
                stats.corruptions_healed += 1;
                stats.heal_write_bytes += chunk;
            }
            let stats = self.inner.stats_mut();
            stats.degraded_reads += 1;
            stats.reconstructed_bytes += chunk * k as u64;
            return Ok(ReadOutcome::reconstructed(chunk, k));
        }
        // Direct read: verify against the stored checksum.
        if self.known_bad.contains(&(loc.device, loc.stripe)) {
            return Err(ArrayError::ChecksumMismatch { loc });
        }
        if let Some(at) = self.corrupted.remove(&(loc.device, loc.stripe)) {
            let ops = self.plan.ops();
            let repairable = self.repairable(loc.device, loc.stripe);
            let stats = self.inner.stats_mut();
            stats.corruptions_detected += 1;
            stats.detection_latency_ops += ops.saturating_sub(at);
            if !repairable {
                stats.corruptions_unrecoverable += 1;
                self.known_bad.insert((loc.device, loc.stripe));
                return Err(ArrayError::ChecksumMismatch { loc });
            }
            // Parity-guided repair: decode `k` shards, re-verify, rewrite
            // the healed chunk in place.
            stats.corruptions_healed += 1;
            stats.heal_write_bytes += chunk;
            return Ok(ReadOutcome::healed(chunk, k));
        }
        Ok(ReadOutcome::normal(chunk))
    }

    fn scrub_step(&mut self, max_stripes: usize) -> Option<ScrubStep> {
        Some(FaultyArray::scrub_step(self, max_stripes as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_chunk(group: u8) -> ChunkFlush {
        ChunkFlush {
            user_bytes: 65536,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group,
            seg: 0,
            chunk_in_seg: 0,
        }
    }

    fn padded_chunk(pad: u64) -> ChunkFlush {
        ChunkFlush {
            user_bytes: 65536 - pad,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: pad,
            group: 0,
            seg: 0,
            chunk_in_seg: 0,
        }
    }

    #[test]
    fn counts_full_and_padded() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(full_chunk(0));
        a.write_chunk(padded_chunk(4096));
        assert_eq!(a.stats().full_chunks, 1);
        assert_eq!(a.stats().padded_chunks, 1);
        assert_eq!(a.stats().pad_bytes(), 4096);
        assert_eq!(a.stats().data_bytes(), 65536 + 65536 - 4096);
    }

    #[test]
    fn parity_written_per_stripe() {
        let mut a = CountingArray::new(ArrayConfig::default());
        // 3 data columns per stripe with 4 devices.
        for _ in 0..6 {
            a.write_chunk(full_chunk(0));
        }
        assert_eq!(a.stats().stripes_completed, 2);
        assert_eq!(a.stats().parity_bytes(), 2 * 65536);
    }

    #[test]
    fn partial_stripe_has_no_parity_yet() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(full_chunk(0));
        a.write_chunk(full_chunk(0));
        assert_eq!(a.stats().stripes_completed, 0);
        assert_eq!(a.stats().parity_bytes(), 0);
    }

    #[test]
    fn long_append_balances_devices() {
        let mut a = CountingArray::new(ArrayConfig::default());
        for _ in 0..3 * 400 {
            a.write_chunk(full_chunk(0));
        }
        assert!(a.stats().device_imbalance() < 1e-9, "{:?}", a.stats().devices);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn rejects_misaligned_chunk() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(ChunkFlush {
            user_bytes: 100,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group: 0,
            seg: 0,
            chunk_in_seg: 0,
        });
    }

    #[test]
    fn chunk_flush_byte_math() {
        let f = ChunkFlush {
            user_bytes: 1,
            gc_bytes: 2,
            shadow_bytes: 3,
            pad_bytes: 4,
            group: 9,
            seg: 0,
            chunk_in_seg: 0,
        };
        assert_eq!(f.total_bytes(), 10);
        assert_eq!(f.payload_bytes(), 6);
    }

    #[test]
    fn default_sink_reads_always_succeed() {
        let mut a = CountingArray::new(ArrayConfig::default());
        let loc = a.write_chunk(full_chunk(0));
        assert_eq!(a.health(), crate::fault::ArrayHealth::Healthy);
        let out = a.read_chunk_at(loc).unwrap();
        assert_eq!(out.mode, crate::fault::ReadMode::Normal);
        assert_eq!(out.device_bytes_read, 65536);
    }

    #[test]
    fn faulty_array_degraded_reads_and_rebuild() {
        use crate::fault::{ArrayHealth, ReadMode};
        // Fail device on the 7th op (after 2 full stripes of writes).
        let plan = FaultPlan::new(42).fail_device_at(1, 7);
        let mut a = FaultyArray::new(ArrayConfig::default(), plan);
        let locs: Vec<_> = (0..6).map(|_| a.write_chunk(full_chunk(0))).collect();
        assert_eq!(a.health(), ArrayHealth::Healthy);
        a.write_chunk(full_chunk(0)); // 7th op: device 1 dies
        assert_eq!(a.health(), ArrayHealth::Degraded { device: 1 });

        // Reads to surviving devices are normal; reads to device 1 in
        // closed stripes reconstruct.
        let mut degraded = 0;
        for &loc in &locs {
            let out = a.read_chunk_at(loc).unwrap();
            if loc.device == 1 {
                assert_eq!(out.mode, ReadMode::Reconstructed);
                assert_eq!(out.device_bytes_read, 3 * 65536);
                degraded += 1;
            } else {
                assert_eq!(out.mode, ReadMode::Normal);
            }
        }
        assert!(degraded > 0, "rotation must place some chunks on device 1");
        assert_eq!(a.stats().degraded_reads, degraded);
        assert_eq!(a.stats().reconstructed_bytes, degraded * 3 * 65536);

        // Incremental rebuild sweeps the closed stripes.
        a.start_rebuild().unwrap();
        assert_eq!(a.health(), ArrayHealth::Rebuilding { device: 1 });
        let p = a.rebuild_step(1).unwrap();
        assert_eq!(p.stripes_done, 1);
        assert!(!p.complete);
        let p = a.rebuild_step(u64::MAX).unwrap();
        assert!(p.complete);
        assert_eq!(a.health(), ArrayHealth::Healthy);
        assert_eq!(a.stats().rebuilt_chunks, p.stripes_total);
        assert_eq!(a.stats().rebuild_write_bytes, p.stripes_total * 65536);
        assert_eq!(a.stats().rebuild_read_bytes, p.stripes_total * 3 * 65536);

        // Post-rebuild reads are normal again.
        for &loc in &locs {
            assert_eq!(a.read_chunk_at(loc).unwrap().mode, ReadMode::Normal);
        }
    }

    #[test]
    fn faulty_array_incomplete_stripe_unreconstructable() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let loc = a.write_chunk(full_chunk(0)); // stripe 0 still open
        a.fail_device(loc.device);
        assert_eq!(a.read_chunk_at(loc), Err(ArrayError::Unreconstructable { loc }));
    }

    #[test]
    fn faulty_array_double_fault_errors() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.fail_device(0);
        a.fail_device(1);
        let on_failed = locs.iter().find(|l| l.device <= 1).copied().unwrap();
        assert!(matches!(a.read_chunk_at(on_failed), Err(ArrayError::DoubleFault { .. })));
        assert!(matches!(a.start_rebuild(), Err(ArrayError::DoubleFault { .. })));
    }

    #[test]
    fn faulty_array_transient_errors_fire() {
        let plan = FaultPlan::new(9).with_transient_read_prob(0.5);
        let mut a = FaultyArray::new(ArrayConfig::default(), plan);
        let loc = a.write_chunk(full_chunk(0));
        let mut transients = 0;
        for _ in 0..64 {
            if let Err(e) = a.read_chunk_at(loc) {
                assert!(e.is_transient());
                transients += 1;
            }
        }
        assert!(transients > 10, "p=0.5 over 64 reads fired {transients}");
    }

    #[test]
    fn faulty_array_latent_sector_reconstructs() {
        use crate::fault::ReadMode;
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        let victim = locs[0];
        // Media degrades after the stripe was written and closed.
        a.plan_mut().add_latent_sector(victim.device, victim.stripe);
        let out = a.read_chunk_at(victim).unwrap();
        assert_eq!(out.mode, ReadMode::Reconstructed);
        assert_eq!(a.stats().degraded_reads, 1);
    }

    #[test]
    fn rebuild_without_failure_is_error() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        assert_eq!(a.start_rebuild(), Err(ArrayError::NotDegraded));
        assert_eq!(a.rebuild_step(1), Err(ArrayError::NotDegraded));
    }

    #[test]
    fn corrupt_read_is_detected_and_healed() {
        use crate::fault::ReadMode;
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        assert!(a.inject_corruption(locs[0].device, locs[0].stripe));
        let out = a.read_chunk_at(locs[0]).unwrap();
        assert_eq!(out.mode, ReadMode::Healed);
        assert_eq!(out.device_bytes_read, 4 * 65536, "bad chunk + 3 survivors");
        assert_eq!(a.stats().corruptions_detected, 1);
        assert_eq!(a.stats().corruptions_healed, 1);
        assert_eq!(a.stats().heal_write_bytes, 65536);
        assert_eq!(a.outstanding_corruptions(), 0);
        // Healed in place: the next read is clean.
        assert_eq!(a.read_chunk_at(locs[0]).unwrap().mode, ReadMode::Normal);
    }

    #[test]
    fn corruption_in_open_stripe_is_rejected() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let loc = a.write_chunk(full_chunk(0));
        assert!(!a.inject_corruption(loc.device, loc.stripe), "stripe not closed yet");
    }

    #[test]
    fn corruption_plus_failed_device_is_unrecoverable() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.inject_corruption(locs[0].device, locs[0].stripe);
        let other = locs.iter().find(|l| l.device != locs[0].device).unwrap();
        a.fail_device(other.device);
        // Direct read of the corrupt chunk: repair needs the failed member.
        let err = a.read_chunk_at(locs[0]).unwrap_err();
        assert!(matches!(err, ArrayError::ChecksumMismatch { .. }), "{err}");
        assert_eq!(a.stats().corruptions_unrecoverable, 1);
        assert!(!err.is_transient());
        // The verdict is sticky: re-reads fail without re-counting.
        let err = a.read_chunk_at(locs[0]).unwrap_err();
        assert!(matches!(err, ArrayError::ChecksumMismatch { .. }));
        assert_eq!(a.stats().corruptions_detected, 1);
    }

    #[test]
    fn degraded_read_detects_corrupt_survivor() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.fail_device(locs[0].device);
        a.inject_corruption(locs[1].device, locs[1].stripe);
        let err = a.read_chunk_at(locs[0]).unwrap_err();
        match err {
            ArrayError::ChecksumMismatch { loc } => assert_eq!(loc.device, locs[1].device),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        assert_eq!(a.stats().corruptions_unrecoverable, 1);
    }

    #[test]
    fn scrub_detects_heals_and_paces() {
        // 9 chunks = 3 closed stripes; corrupt one data chunk and the
        // parity of another stripe.
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        for _ in 0..9 {
            a.write_chunk(full_chunk(0));
        }
        let pdev = a.inner.layout().parity_device(1);
        assert!(a.inject_corruption(0, 0));
        assert!(a.inject_corruption(pdev, 1));
        let step = FaultyArray::scrub_step(&mut a, 1);
        assert_eq!(step.stripes_scrubbed, 1);
        assert_eq!(step.detected, 1);
        assert_eq!(step.healed, 1);
        assert!(!step.pass_complete);
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert_eq!(step.stripes_scrubbed, 2);
        assert_eq!(step.detected, 1, "parity corruption found");
        assert!(step.pass_complete);
        assert_eq!(a.stats().corruptions_detected, 2);
        assert_eq!(a.stats().corruptions_healed, 2);
        assert_eq!(a.stats().chunks_scrubbed, 12, "3 stripes × 4 chunks");
        assert_eq!(a.outstanding_corruptions(), 0);
        // A fresh pass starts automatically and finds nothing.
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert_eq!(step.stripes_scrubbed, 3);
        assert_eq!(step.detected, 0);
    }

    #[test]
    fn scrub_pauses_for_rebuild() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        for _ in 0..6 {
            a.write_chunk(full_chunk(0));
        }
        a.fail_device(1);
        a.start_rebuild().unwrap();
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert!(step.paused_for_rebuild);
        a.rebuild_step(u64::MAX).unwrap();
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert!(!step.paused_for_rebuild);
        assert!(step.pass_complete);
    }

    #[test]
    fn scrub_repairs_latent_before_double_fault() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        let locs: Vec<_> = (0..3).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.plan_mut().add_latent_sector(locs[0].device, locs[0].stripe);
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert_eq!(step.latent_repaired, 1);
        assert_eq!(a.plan().latent_count(), 0);
        assert_eq!(a.stats().scrub_latent_repaired, 1);
        // Device failure after the repair: single fault, read succeeds.
        a.fail_device(locs[1].device);
        assert!(a.read_chunk_at(locs[1]).is_ok());
    }

    #[test]
    fn scheduled_corruption_latency_counted_by_scrub() {
        let plan = FaultPlan::new(1).with_corruption_at(6, 0, 0);
        let mut a = FaultyArray::new(ArrayConfig::default(), plan);
        for _ in 0..9 {
            a.write_chunk(full_chunk(0)); // corruption fires on op 6
        }
        assert_eq!(a.outstanding_corruptions(), 1);
        let step = FaultyArray::scrub_step(&mut a, u64::MAX);
        assert_eq!(step.detected, 1);
        // Injected at op 6, scrubbed after op 9.
        assert_eq!(step.detection_latency_ops, 3);
        assert_eq!(a.stats().mean_detection_latency_ops(), 3.0);
    }

    #[test]
    fn default_sink_has_no_scrub() {
        let mut a = CountingArray::new(ArrayConfig::default());
        a.write_chunk(full_chunk(0));
        assert!(ArraySink::scrub_step(&mut a, 8).is_none());
    }

    fn raid6() -> ArrayConfig {
        // 6 data + 2 parity columns on 8 devices.
        ArrayConfig::with_parity(8, 2, 65536)
    }

    #[test]
    fn raid6_counting_charges_two_parity_chunks_per_stripe() {
        let mut a = CountingArray::new(raid6());
        for _ in 0..6 * 8 {
            a.write_chunk(full_chunk(0));
        }
        assert_eq!(a.stats().stripes_completed, 8);
        assert_eq!(a.stats().parity_bytes(), 8 * 2 * 65536);
        // 8 stripes = one full rotation: perfectly balanced.
        assert!(a.stats().device_imbalance() < 1e-9, "{:?}", a.stats().devices);
    }

    #[test]
    fn raid6_survives_correlated_double_failure() {
        use crate::fault::{ArrayHealth, ReadMode};
        // Both devices die on the same op, after two closed stripes.
        let plan = FaultPlan::new(7).fail_devices_at(&[2, 5], 13);
        let mut a = FaultyArray::new(raid6(), plan);
        let locs: Vec<_> = (0..12).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.write_chunk(full_chunk(0)); // 13th op: devices 2 and 5 die together
        assert_eq!(a.health(), ArrayHealth::Degraded { device: 2 });
        assert_eq!(a.failed_devices(), &[2, 5]);

        // Every chunk in the two closed stripes stays readable: direct on
        // the 6 survivors, decoded from k = 6 members on the dead pair.
        let mut degraded = 0;
        for &loc in &locs {
            let out = a.read_chunk_at(loc).unwrap();
            if loc.device == 2 || loc.device == 5 {
                assert_eq!(out.mode, ReadMode::Reconstructed);
                assert_eq!(out.device_bytes_read, 6 * 65536);
                degraded += 1;
            } else {
                assert_eq!(out.mode, ReadMode::Normal);
            }
        }
        assert!(degraded > 0, "rotation must place chunks on the dead pair");
        assert_eq!(a.stats().degraded_reads, degraded);
        assert_eq!(a.stats().reconstructed_bytes, degraded * 6 * 65536);

        // One sweep rebuilds both devices: 6 survivor reads and 2 spare
        // writes per stripe.
        a.start_rebuild().unwrap();
        assert_eq!(a.health(), ArrayHealth::Rebuilding { device: 2 });
        assert_eq!(
            a.disk_states()[2],
            DiskState::Rebuilding,
            "both targets rebuilding: {:?}",
            a.disk_states()
        );
        assert_eq!(a.disk_states()[5], DiskState::Rebuilding);
        let p = a.rebuild_step(u64::MAX).unwrap();
        assert!(p.complete);
        assert_eq!(a.health(), ArrayHealth::Healthy);
        assert_eq!(a.stats().rebuilt_chunks, p.stripes_total * 2);
        assert_eq!(a.stats().rebuild_read_bytes, p.stripes_total * 6 * 65536);
        assert_eq!(a.stats().rebuild_write_bytes, p.stripes_total * 2 * 65536);
        for &loc in &locs {
            assert_eq!(a.read_chunk_at(loc).unwrap().mode, ReadMode::Normal);
        }
    }

    #[test]
    fn raid6_triple_fault_exceeds_budget() {
        let mut a = FaultyArray::new(raid6(), FaultPlan::new(0));
        let locs: Vec<_> = (0..6).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.fail_device(0);
        a.fail_device(1);
        a.fail_device(2);
        let on_failed = locs.iter().find(|l| l.device <= 2).copied().unwrap();
        assert!(matches!(a.read_chunk_at(on_failed), Err(ArrayError::DoubleFault { .. })));
        match a.start_rebuild() {
            Err(ArrayError::DoubleFault { loc }) => assert_eq!(loc.device, 2, "third failure"),
            other => panic!("expected DoubleFault, got {other:?}"),
        }
    }

    #[test]
    fn raid6_latent_plus_failure_still_reads() {
        use crate::fault::ReadMode;
        // One dead device and a latent sector elsewhere in the same
        // stripe: two erasures, within the m = 2 budget.
        let mut a = FaultyArray::new(raid6(), FaultPlan::new(0));
        let locs: Vec<_> = (0..6).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.fail_device(locs[0].device);
        a.plan_mut().add_latent_sector(locs[1].device, locs[1].stripe);
        assert_eq!(a.read_chunk_at(locs[0]).unwrap().mode, ReadMode::Reconstructed);
        assert_eq!(a.read_chunk_at(locs[1]).unwrap().mode, ReadMode::Reconstructed);
        // A third erasure in the stripe breaks the budget.
        a.plan_mut().add_latent_sector(locs[2].device, locs[2].stripe);
        assert!(matches!(a.read_chunk_at(locs[0]), Err(ArrayError::DoubleFault { .. })));
    }

    #[test]
    fn raid6_degraded_read_heals_corrupt_survivor() {
        use crate::fault::ReadMode;
        // With one erasure and one corrupt member, RAID-6 still has k
        // honest shards: the read decodes AND heals the corrupt member,
        // where RAID-5 had to condemn it.
        let mut a = FaultyArray::new(raid6(), FaultPlan::new(0));
        let locs: Vec<_> = (0..6).map(|_| a.write_chunk(full_chunk(0))).collect();
        a.fail_device(locs[0].device);
        assert!(a.inject_corruption(locs[1].device, locs[1].stripe));
        let out = a.read_chunk_at(locs[0]).unwrap();
        assert_eq!(out.mode, ReadMode::Reconstructed);
        assert_eq!(a.stats().corruptions_detected, 1);
        assert_eq!(a.stats().corruptions_healed, 1);
        assert_eq!(a.stats().corruptions_unrecoverable, 0);
        assert_eq!(a.outstanding_corruptions(), 0);
    }

    #[test]
    fn rebuild_visits_most_exposed_stripes_first() {
        // 4 closed stripes; stripe 2 has a latent sector and stripe 1 has
        // latent + corruption on the survivors. Priority order: 1, 2, then
        // 0, 3.
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        for _ in 0..12 {
            a.write_chunk(full_chunk(0));
        }
        a.fail_device(0);
        let layout = *a.inner.layout();
        let survivor = |stripe: u64| (1..4).find(|&d| layout.parity_device(stripe) != d).unwrap();
        a.plan_mut().add_latent_sector(survivor(1), 1);
        a.inject_corruption(layout.parity_device(1), 1);
        a.plan_mut().add_latent_sector(survivor(2), 2);
        a.start_rebuild().unwrap();
        assert_eq!(a.rebuild_queue, vec![1, 2, 0, 3]);
        let p = a.rebuild_step(1).unwrap();
        assert_eq!(p.stripes_done, 1);
        assert!(a.rebuild_done.contains(&1), "most-exposed stripe restored first");
        a.rebuild_step(u64::MAX).unwrap();
        assert!(a.rebuild_progress().complete);
    }

    #[test]
    fn drain_copies_without_spending_redundancy() {
        use crate::fault::ArrayHealth;
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        for _ in 0..9 {
            a.write_chunk(full_chunk(0));
        }
        a.plan_mut().add_latent_sector(1, 0);
        let p = a.start_drain(1);
        assert!(!p.complete);
        assert_eq!(a.disk_states()[1], DiskState::Draining);
        assert_eq!(a.health(), ArrayHealth::Healthy, "drain is planned, not a fault");
        let p = a.drain_step(1);
        assert_eq!(p.stripes_done, 1);
        assert!(!a.plan().is_latent(1, 0), "copy refreshes the media");
        let p = a.drain_step(u64::MAX);
        assert!(p.complete);
        assert_eq!(a.disk_states()[1], DiskState::Healthy);
        // One chunk read + one chunk written per stripe, no decode.
        assert_eq!(a.stats().drained_chunks, 3);
        assert_eq!(a.stats().drain_read_bytes, 3 * 65536);
        assert_eq!(a.stats().drain_write_bytes, 3 * 65536);
        assert_eq!(a.stats().degraded_reads, 0);
    }

    #[test]
    #[should_panic(expected = "cannot drain a failed device")]
    fn drain_of_failed_device_panics() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        a.fail_device(2);
        a.start_drain(2);
    }

    #[test]
    fn disk_states_track_lifecycle() {
        let mut a = FaultyArray::new(ArrayConfig::default(), FaultPlan::new(0));
        for _ in 0..3 {
            a.write_chunk(full_chunk(0));
        }
        assert!(a.disk_states().iter().all(|s| *s == DiskState::Healthy));
        a.fail_device(3);
        assert_eq!(a.disk_states()[3], DiskState::Failed);
        a.start_rebuild().unwrap();
        assert_eq!(a.disk_states()[3], DiskState::Rebuilding);
        a.rebuild_step(u64::MAX).unwrap();
        assert_eq!(a.disk_states()[3], DiskState::Healthy);
    }
}
