//! GF(2^8) arithmetic and bulk multiply-accumulate kernels.
//!
//! The Reed-Solomon codec ([`crate::rs`]) reduces every encode, update,
//! and reconstruction to one primitive over chunk-sized buffers:
//! `acc[i] ^= c · src[i]` in GF(256) (polynomial 0x11D, generator 2 — the
//! field every RS storage system uses). This module provides that
//! primitive with the same shape as the parity XOR kernels in
//! [`crate::parity`]: a strict scalar reference (`gf_mul_into_scalar`),
//! SIMD tiers selected once through [`crate::cpu_features`], and
//! differential tests pinning every tier to the reference across lengths
//! and alignments.
//!
//! The SIMD tiers use the classic split-nibble table trick: for a fixed
//! coefficient `c`, `c·b = c·(b_hi·16) ⊕ c·b_lo`, so two 16-entry lookup
//! tables (products of `c` with every low nibble and every high nibble)
//! turn a field multiply into two byte shuffles and a XOR. `PSHUFB` does
//! sixteen of those lookups per instruction (SSSE3), `VPSHUFB` thirty-two
//! (AVX2). Multiplying by 0 is a no-op and by 1 a plain XOR, so those
//! coefficients short-circuit to nothing / [`crate::parity::xor_into`] —
//! which keeps the m = 1 (RAID-5) path byte-identical to the existing
//! parity kernels.

use crate::parity;

/// The AES/RS field polynomial x^8 + x^4 + x^3 + x^2 + 1.
const POLY: u16 = 0x11D;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log a + log b]` never needs a mod 255.
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
/// `GF_EXP[i] = 2^i` for `i < 255`, duplicated once so products of two
/// logs index without reduction.
const GF_EXP: [u8; 512] = TABLES.0;
/// `GF_LOG[x] = log_2 x` for `x != 0` (`GF_LOG[0]` is unused).
const GF_LOG: [u8; 256] = TABLES.1;

/// Field multiply.
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
}

/// Multiplicative inverse. Panics on 0 (no inverse exists).
#[inline]
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    GF_EXP[255 - GF_LOG[a as usize] as usize]
}

/// Field division `a / b`. Panics when `b == 0`.
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    gf_mul(a, gf_inv(b))
}

/// `base^exp` by repeated squaring (exponents are small: matrix rows).
pub fn gf_pow(base: u8, mut exp: u32) -> u8 {
    let mut acc = 1u8;
    let mut b = base;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = gf_mul(acc, b);
        }
        b = gf_mul(b, b);
        exp >>= 1;
    }
    acc
}

/// The split-nibble product tables for a fixed coefficient: `lo[x] = c·x`
/// and `hi[x] = c·(x·16)` for every nibble `x`.
#[inline]
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    let mut x = 0usize;
    while x < 16 {
        lo[x] = gf_mul(c, x as u8);
        hi[x] = gf_mul(c, (x << 4) as u8);
        x += 1;
    }
    (lo, hi)
}

/// `acc[i] ^= c · src[i]` over equal-length slices, dispatched to the
/// widest kernel the CPU offers. `c = 0` is a no-op and `c = 1` is the
/// plain parity XOR. Panics on length mismatch.
pub fn gf_mul_into(acc: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(acc.len(), src.len(), "gf_mul_into operands must be equal length");
    match c {
        0 => {}
        1 => parity::xor_into(acc, src),
        _ => gf_mul_into_unchecked(acc, src, c),
    }
}

fn gf_mul_into_unchecked(acc: &mut [u8], src: &[u8], c: u8) {
    #[cfg(target_arch = "x86_64")]
    {
        let f = crate::cpu_features::get();
        if f.avx2 {
            // SAFETY: the probe confirmed AVX2 (which implies SSSE3).
            unsafe { gf_mul_into_avx2(acc, src, c) };
            return;
        }
        if f.ssse3 {
            // SAFETY: the probe confirmed SSSE3.
            unsafe { gf_mul_into_ssse3(acc, src, c) };
            return;
        }
    }
    gf_mul_into_scalar(acc, src, c);
}

/// The strict scalar reference every SIMD tier is pinned to: one 256-entry
/// product row for `c`, then a byte loop. Public so tests and benches can
/// call it regardless of what the CPU offers.
pub fn gf_mul_into_scalar(acc: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(acc.len(), src.len(), "gf_mul_into operands must be equal length");
    if c == 0 {
        return;
    }
    let mut row = [0u8; 256];
    if c != 1 {
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = gf_mul(c, x as u8);
        }
    } else {
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = x as u8;
        }
    }
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a ^= row[s as usize];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn gf_mul_into_ssse3(acc: &mut [u8], src: &[u8], c: u8) {
    use std::arch::x86_64::*;
    let (lo, hi) = nibble_tables(c);
    let tbl_lo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
    let tbl_hi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
    let mask = _mm_set1_epi8(0x0F);
    let n = acc.len();
    let mut i = 0;
    while i + 16 <= n {
        let a = acc.as_mut_ptr().add(i) as *mut __m128i;
        let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
        let lo_idx = _mm_and_si128(s, mask);
        let hi_idx = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
        let prod =
            _mm_xor_si128(_mm_shuffle_epi8(tbl_lo, lo_idx), _mm_shuffle_epi8(tbl_hi, hi_idx));
        _mm_storeu_si128(a, _mm_xor_si128(_mm_loadu_si128(a), prod));
        i += 16;
    }
    if i < n {
        gf_mul_into_scalar(&mut acc[i..], &src[i..], c);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gf_mul_into_avx2(acc: &mut [u8], src: &[u8], c: u8) {
    use std::arch::x86_64::*;
    let (lo, hi) = nibble_tables(c);
    // VPSHUFB shuffles within each 128-bit lane, so the 16-byte tables are
    // broadcast to both lanes.
    let tbl_lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
    let tbl_hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
    let mask = _mm256_set1_epi8(0x0F);
    let n = acc.len();
    let mut i = 0;
    while i + 64 <= n {
        let a0 = acc.as_mut_ptr().add(i) as *mut __m256i;
        let a1 = acc.as_mut_ptr().add(i + 32) as *mut __m256i;
        let s0 = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        let s1 = _mm256_loadu_si256(src.as_ptr().add(i + 32) as *const __m256i);
        let p0 = _mm256_xor_si256(
            _mm256_shuffle_epi8(tbl_lo, _mm256_and_si256(s0, mask)),
            _mm256_shuffle_epi8(tbl_hi, _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask)),
        );
        let p1 = _mm256_xor_si256(
            _mm256_shuffle_epi8(tbl_lo, _mm256_and_si256(s1, mask)),
            _mm256_shuffle_epi8(tbl_hi, _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask)),
        );
        _mm256_storeu_si256(a0, _mm256_xor_si256(_mm256_loadu_si256(a0), p0));
        _mm256_storeu_si256(a1, _mm256_xor_si256(_mm256_loadu_si256(a1), p1));
        i += 64;
    }
    while i + 32 <= n {
        let a = acc.as_mut_ptr().add(i) as *mut __m256i;
        let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        let p = _mm256_xor_si256(
            _mm256_shuffle_epi8(tbl_lo, _mm256_and_si256(s, mask)),
            _mm256_shuffle_epi8(tbl_hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)),
        );
        _mm256_storeu_si256(a, _mm256_xor_si256(_mm256_loadu_si256(a), p));
        i += 32;
    }
    if i < n {
        gf_mul_into_scalar(&mut acc[i..], &src[i..], c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf_mul_slow(a: u8, b: u8) -> u8 {
        // Carry-less schoolbook multiply with polynomial reduction —
        // independent of the log/exp tables under test.
        let mut acc = 0u16;
        let mut a = a as u16;
        let mut b = b;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn tables_match_schoolbook_multiply() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(gf_mul(a, b), gf_mul_slow(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
            assert_eq!(gf_div(a, a), 1);
        }
        // Distributivity on a sample grid.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiply() {
        for e in 0..300u32 {
            let mut expect = 1u8;
            for _ in 0..e {
                expect = gf_mul(expect, 2);
            }
            assert_eq!(gf_pow(2, e), expect, "2^{e}");
        }
        assert_eq!(gf_pow(0, 0), 1);
        assert_eq!(gf_pow(0, 5), 0);
    }

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
    }

    #[test]
    fn dispatched_matches_scalar_all_lengths_and_offsets() {
        // Same differential sweep shape as the parity kernels: every
        // length through several vector widths, at unaligned offsets,
        // across coefficients that hit both nibble tables.
        for &c in &[0u8, 1, 2, 3, 29, 116, 0x1D, 0xFF] {
            for len in (0..=256).chain([511, 512, 513, 1024, 4096]) {
                for &off in &[0usize, 1, 3, 7] {
                    let src = pattern(len + off, 5);
                    let mut fast = pattern(len + off, 71);
                    let mut slow = fast.clone();
                    gf_mul_into(&mut fast[off..], &src[off..], c);
                    gf_mul_into_scalar(&mut slow[off..], &src[off..], c);
                    assert_eq!(fast, slow, "c={c} len={len} off={off}");
                }
            }
        }
    }

    #[test]
    fn mul_by_one_is_xor() {
        let src = pattern(1000, 9);
        let mut a = pattern(1000, 40);
        let mut b = a.clone();
        gf_mul_into(&mut a, &src, 1);
        parity::xor_into(&mut b, &src);
        assert_eq!(a, b);
    }

    #[test]
    fn mul_by_zero_is_noop() {
        let src = pattern(333, 2);
        let mut a = pattern(333, 77);
        let before = a.clone();
        gf_mul_into(&mut a, &src, 0);
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut a = vec![0u8; 8];
        gf_mul_into(&mut a, &[0u8; 9], 2);
    }
}
