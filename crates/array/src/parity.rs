//! XOR parity math for RAID-5 stripes, SIMD-accelerated.
//!
//! Simple single-fault-tolerant parity: the parity chunk is the bytewise
//! XOR of all data chunks in the stripe; any single missing chunk is the
//! XOR of the survivors (data and parity alike — XOR is its own inverse).
//!
//! Three kernels behind one entry point, selected once at startup through
//! the shared [`crate::cpu_features`] probe (the same pattern as the
//! SSE4.2 CRC32C in [`crate::crc`]):
//!
//! * **AVX2** — 256-bit vector XOR, 128 bytes per unrolled iteration.
//! * **SSE2** — 128-bit vector XOR, 64 bytes per unrolled iteration; the
//!   fallback on pre-AVX2 x86_64.
//! * **Scalar** — the original `u64`-word loop with a byte tail; the
//!   reference the SIMD paths are differentially tested against, the only
//!   path on non-x86 targets, and the forced path under `ADAPT_NO_SIMD`.
//!
//! All kernels tolerate arbitrary alignment (unaligned loads/stores) and
//! arbitrary lengths including odd tails — chunk sizes are multiples of 8
//! in practice, but reconstruction scratch may slice at any offset.
//!
//! The `*_into` variants write into caller-provided storage so the hot
//! paths (stripe close, degraded read, rebuild, scrub) can reuse one
//! scratch buffer instead of allocating per call; the allocating wrappers
//! remain for convenience and for the property tests.

use crate::cpu_features;
use crate::error::ParityError;

/// XOR `src` into `acc` in place, validating operand lengths.
pub fn try_xor_into(acc: &mut [u8], src: &[u8]) -> Result<(), ParityError> {
    if acc.len() != src.len() {
        return Err(ParityError::LengthMismatch { expected: acc.len(), got: src.len() });
    }
    xor_into_unchecked(acc, src);
    Ok(())
}

/// Compute the parity chunk of a stripe, validating the inputs: the
/// stripe must be non-empty and all chunks equal length.
pub fn try_compute_parity(data: &[&[u8]]) -> Result<Vec<u8>, ParityError> {
    let mut parity = Vec::new();
    try_compute_parity_into(&mut parity, data)?;
    Ok(parity)
}

/// Compute the parity chunk of a stripe into `out`, reusing its
/// allocation. `out` is cleared first; on success it holds exactly the
/// parity chunk. On error `out`'s contents are unspecified (but valid).
pub fn try_compute_parity_into(out: &mut Vec<u8>, data: &[&[u8]]) -> Result<(), ParityError> {
    let first = data.first().ok_or(ParityError::EmptyStripe)?;
    out.clear();
    out.extend_from_slice(first);
    for chunk in &data[1..] {
        try_xor_into(out, chunk)?;
    }
    Ok(())
}

/// Reconstruct one missing chunk from the stripe's survivors, validating
/// the inputs (see [`try_compute_parity`]; XOR is its own inverse, so the
/// two operations are identical).
pub fn try_reconstruct(survivors: &[&[u8]]) -> Result<Vec<u8>, ParityError> {
    try_compute_parity(survivors)
}

/// Reconstruct one missing chunk into `out`, reusing its allocation (see
/// [`try_compute_parity_into`]).
pub fn try_reconstruct_into(out: &mut Vec<u8>, survivors: &[&[u8]]) -> Result<(), ParityError> {
    try_compute_parity_into(out, survivors)
}

/// XOR `src` into `acc` in place.
///
/// # Panics
/// Panics if lengths differ; use [`try_xor_into`] on untrusted inputs.
pub fn xor_into(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "parity operands must be equal length");
    xor_into_unchecked(acc, src);
}

/// Dispatch to the widest kernel the CPU offers. The probe result is a
/// cached static, so this is one load and a predictable branch.
fn xor_into_unchecked(acc: &mut [u8], src: &[u8]) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    {
        let f = cpu_features::get();
        if f.avx2 {
            // SAFETY: AVX2 presence was verified at runtime just above.
            unsafe { xor_into_avx2(acc, src) };
            return;
        }
        if f.sse2 {
            // SAFETY: SSE2 presence was verified at runtime just above.
            unsafe { xor_into_sse2(acc, src) };
            return;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = cpu_features::get();
    xor_into_scalar(acc, src);
}

/// The scalar reference kernel: `u64` words, byte tail. Public so the
/// property tests and the `hotpath` microbench can compare the SIMD paths
/// against it regardless of what the host CPU supports; prefer
/// [`xor_into`].
pub fn xor_into_scalar(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "parity operands must be equal length");
    let words = acc.len() / 8;
    let (acc_head, acc_tail) = acc.split_at_mut(words * 8);
    let (src_head, src_tail) = src.split_at(words * 8);
    for (a, s) in acc_head.chunks_exact_mut(8).zip(src_head.chunks_exact(8)) {
        let av = u64::from_ne_bytes(a.try_into().unwrap());
        let sv = u64::from_ne_bytes(s.try_into().unwrap());
        a.copy_from_slice(&(av ^ sv).to_ne_bytes());
    }
    for (a, s) in acc_tail.iter_mut().zip(src_tail) {
        *a ^= s;
    }
}

/// Strictly byte-serial XOR: one byte per iteration, with the loop index
/// laundered through [`std::hint::black_box`] so the optimizer can
/// neither vectorize nor unroll it. This is the pre-vectorization
/// reference the `hotpath` microbench ratios the real kernels against —
/// [`xor_into_scalar`] autovectorizes in release builds and measures the
/// memory bus, not the kernel. Never dispatched; do not call on a hot
/// path.
pub fn xor_into_bytewise(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "parity operands must be equal length");
    for i in 0..acc.len() {
        let i = std::hint::black_box(i);
        acc[i] ^= src[i];
    }
}

/// AVX2 kernel: 4 × 32-byte unaligned vector XORs per iteration (128 B),
/// then single vectors, then the scalar tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_into_avx2(acc: &mut [u8], src: &[u8]) {
    use std::arch::x86_64::{__m256i, _mm256_loadu_si256, _mm256_storeu_si256, _mm256_xor_si256};
    let len = acc.len();
    let a = acc.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0usize;
    while i + 128 <= len {
        let pa = a.add(i) as *mut __m256i;
        let ps = s.add(i) as *const __m256i;
        // Unaligned load/store throughout: callers slice at arbitrary
        // offsets (reconstruction scratch, odd chunk geometries).
        let v0 = _mm256_xor_si256(_mm256_loadu_si256(pa), _mm256_loadu_si256(ps));
        let v1 = _mm256_xor_si256(_mm256_loadu_si256(pa.add(1)), _mm256_loadu_si256(ps.add(1)));
        let v2 = _mm256_xor_si256(_mm256_loadu_si256(pa.add(2)), _mm256_loadu_si256(ps.add(2)));
        let v3 = _mm256_xor_si256(_mm256_loadu_si256(pa.add(3)), _mm256_loadu_si256(ps.add(3)));
        _mm256_storeu_si256(pa, v0);
        _mm256_storeu_si256(pa.add(1), v1);
        _mm256_storeu_si256(pa.add(2), v2);
        _mm256_storeu_si256(pa.add(3), v3);
        i += 128;
    }
    while i + 32 <= len {
        let pa = a.add(i) as *mut __m256i;
        let ps = s.add(i) as *const __m256i;
        _mm256_storeu_si256(pa, _mm256_xor_si256(_mm256_loadu_si256(pa), _mm256_loadu_si256(ps)));
        i += 32;
    }
    xor_into_scalar(&mut acc[i..], &src[i..]);
}

/// SSE2 kernel: 4 × 16-byte unaligned vector XORs per iteration (64 B),
/// then single vectors, then the scalar tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn xor_into_sse2(acc: &mut [u8], src: &[u8]) {
    use std::arch::x86_64::{__m128i, _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128};
    let len = acc.len();
    let a = acc.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0usize;
    while i + 64 <= len {
        let pa = a.add(i) as *mut __m128i;
        let ps = s.add(i) as *const __m128i;
        let v0 = _mm_xor_si128(_mm_loadu_si128(pa), _mm_loadu_si128(ps));
        let v1 = _mm_xor_si128(_mm_loadu_si128(pa.add(1)), _mm_loadu_si128(ps.add(1)));
        let v2 = _mm_xor_si128(_mm_loadu_si128(pa.add(2)), _mm_loadu_si128(ps.add(2)));
        let v3 = _mm_xor_si128(_mm_loadu_si128(pa.add(3)), _mm_loadu_si128(ps.add(3)));
        _mm_storeu_si128(pa, v0);
        _mm_storeu_si128(pa.add(1), v1);
        _mm_storeu_si128(pa.add(2), v2);
        _mm_storeu_si128(pa.add(3), v3);
        i += 64;
    }
    while i + 16 <= len {
        let pa = a.add(i) as *mut __m128i;
        let ps = s.add(i) as *const __m128i;
        _mm_storeu_si128(pa, _mm_xor_si128(_mm_loadu_si128(pa), _mm_loadu_si128(ps)));
        i += 16;
    }
    xor_into_scalar(&mut acc[i..], &src[i..]);
}

/// Compute the parity chunk of a stripe from its data chunks.
///
/// # Panics
/// Panics if `data` is empty or the chunks have unequal lengths; use
/// [`try_compute_parity`] on untrusted inputs.
pub fn compute_parity(data: &[&[u8]]) -> Vec<u8> {
    try_compute_parity(data).expect("malformed stripe")
}

/// Reconstruct one missing chunk from the surviving chunks of the stripe
/// (the survivors must include the parity chunk unless the missing chunk
/// *is* the parity chunk).
///
/// # Panics
/// Panics on malformed input; use [`try_reconstruct`] on untrusted inputs.
pub fn reconstruct(survivors: &[&[u8]]) -> Vec<u8> {
    compute_parity(survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| seed.wrapping_mul(31).wrapping_add(i as u8)).collect()
    }

    /// Deterministic non-trivial filler for the equivalence sweeps.
    fn noise(len: usize, salt: u64) -> Vec<u8> {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn parity_of_identical_chunks_is_zero_for_pairs() {
        let a = chunk(1, 64);
        let p = compute_parity(&[&a, &a]);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn reconstruct_any_data_chunk() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i, 4096)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let parity = compute_parity(&refs);
        for missing in 0..3 {
            let mut survivors: Vec<&[u8]> = Vec::new();
            for (i, c) in chunks.iter().enumerate() {
                if i != missing {
                    survivors.push(c);
                }
            }
            survivors.push(&parity);
            assert_eq!(reconstruct(&survivors), chunks[missing], "chunk {missing}");
        }
    }

    #[test]
    fn reconstruct_parity_itself() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i + 5, 1024)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let parity = compute_parity(&refs);
        assert_eq!(reconstruct(&refs), parity);
    }

    #[test]
    fn handles_non_word_lengths() {
        let a = chunk(3, 13);
        let b = chunk(7, 13);
        let mut acc = a.clone();
        xor_into(&mut acc, &b);
        for i in 0..13 {
            assert_eq!(acc[i], a[i] ^ b[i]);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut a = vec![0u8; 8];
        xor_into(&mut a, &[0u8; 9]);
    }

    #[test]
    fn try_variants_reject_malformed_input() {
        use crate::error::ParityError;
        assert_eq!(try_compute_parity(&[]), Err(ParityError::EmptyStripe));
        let a = [0u8; 8];
        let b = [0u8; 9];
        assert_eq!(
            try_compute_parity(&[&a, &b]),
            Err(ParityError::LengthMismatch { expected: 8, got: 9 })
        );
        let mut acc = vec![0u8; 4];
        assert!(try_xor_into(&mut acc, &[1, 2, 3, 4]).is_ok());
        assert_eq!(acc, vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_and_panicking_agree() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i, 256)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        assert_eq!(try_compute_parity(&refs).unwrap(), compute_parity(&refs));
        assert_eq!(try_reconstruct(&refs).unwrap(), reconstruct(&refs));
    }

    #[test]
    fn into_variants_match_allocating_and_reuse_storage() {
        let chunks: Vec<Vec<u8>> = (0..4).map(|i| chunk(i + 9, 777)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let mut out = vec![0xAAu8; 4096]; // stale contents must not leak through
        try_compute_parity_into(&mut out, &refs).unwrap();
        assert_eq!(out, compute_parity(&refs));
        let cap = out.capacity();
        try_reconstruct_into(&mut out, &refs).unwrap();
        assert_eq!(out, reconstruct(&refs));
        assert_eq!(out.capacity(), cap, "reuse must not reallocate");
        assert_eq!(try_compute_parity_into(&mut out, &[]), Err(ParityError::EmptyStripe));
    }

    /// The ISSUE-mandated exhaustive equivalence sweep: the dispatched
    /// kernel (AVX2 or SSE2 on this machine, scalar elsewhere) must match
    /// the scalar reference for every length 0–4 KiB, including unaligned
    /// starting offsets and odd tails. Slicing a buffer at offsets 1/3/7
    /// guarantees the SIMD paths see misaligned pointers.
    #[test]
    fn simd_matches_scalar_all_lengths_and_offsets() {
        let max = 4096usize;
        for &offset in &[0usize, 1, 3, 7] {
            let acc_src = noise(max + offset, 0xACC);
            let xor_src = noise(max + offset, 0x50C);
            for len in 0..=max {
                let mut fast = acc_src[offset..offset + len].to_vec();
                let mut slow = fast.clone();
                let src = &xor_src[offset..offset + len];
                xor_into(&mut fast, src);
                xor_into_scalar(&mut slow, src);
                if fast != slow {
                    panic!("kernel mismatch at offset {offset} len {len}");
                }
            }
        }
    }

    /// Same sweep through the misaligned middle of one shared buffer, so
    /// the destination pointer (not just the source) is unaligned.
    #[test]
    fn simd_matches_scalar_on_misaligned_destination() {
        let base = noise(8192, 0xD57);
        let src = noise(8192, 0x517);
        for &offset in &[1usize, 5, 9, 15, 31, 63] {
            for &len in &[0usize, 1, 7, 15, 16, 17, 31, 33, 63, 65, 127, 129, 1000, 4095] {
                let mut fast = base[offset..offset + len].to_vec();
                let mut slow = fast.clone();
                xor_into(&mut fast, &src[offset..offset + len]);
                xor_into_scalar(&mut slow, &src[offset..offset + len]);
                assert_eq!(fast, slow, "offset {offset} len {len}");
            }
        }
    }

    /// The byte-serial microbench reference computes the same function as
    /// the word-scalar and dispatched kernels.
    #[test]
    fn bytewise_reference_matches_scalar() {
        let src = noise(4099, 0xB17E);
        for &len in &[0usize, 1, 7, 8, 9, 63, 64, 65, 1000, 4099] {
            let mut byte = noise(len, 0xACC);
            let mut word = byte.clone();
            xor_into_bytewise(&mut byte, &src[..len]);
            xor_into_scalar(&mut word, &src[..len]);
            assert_eq!(byte, word, "len {len}");
        }
    }
}
