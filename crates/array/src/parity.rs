//! XOR parity math for RAID-5 stripes.
//!
//! Simple single-fault-tolerant parity: the parity chunk is the bytewise
//! XOR of all data chunks in the stripe; any single missing chunk is the
//! XOR of the survivors (data and parity alike — XOR is its own inverse).
//!
//! The hot loop XORs in `u64` words; chunk sizes are always multiples of 8
//! in practice (the config validates power-of-two-ish sizes upstream), but
//! a byte tail is handled for generality.

use crate::error::ParityError;

/// XOR `src` into `acc` in place, validating operand lengths.
pub fn try_xor_into(acc: &mut [u8], src: &[u8]) -> Result<(), ParityError> {
    if acc.len() != src.len() {
        return Err(ParityError::LengthMismatch { expected: acc.len(), got: src.len() });
    }
    xor_into_unchecked(acc, src);
    Ok(())
}

/// Compute the parity chunk of a stripe, validating the inputs: the
/// stripe must be non-empty and all chunks equal length.
pub fn try_compute_parity(data: &[&[u8]]) -> Result<Vec<u8>, ParityError> {
    let first = data.first().ok_or(ParityError::EmptyStripe)?;
    let mut parity = first.to_vec();
    for chunk in &data[1..] {
        try_xor_into(&mut parity, chunk)?;
    }
    Ok(parity)
}

/// Reconstruct one missing chunk from the stripe's survivors, validating
/// the inputs (see [`try_compute_parity`]; XOR is its own inverse, so the
/// two operations are identical).
pub fn try_reconstruct(survivors: &[&[u8]]) -> Result<Vec<u8>, ParityError> {
    try_compute_parity(survivors)
}

/// XOR `src` into `acc` in place.
///
/// # Panics
/// Panics if lengths differ; use [`try_xor_into`] on untrusted inputs.
pub fn xor_into(acc: &mut [u8], src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "parity operands must be equal length");
    xor_into_unchecked(acc, src);
}

fn xor_into_unchecked(acc: &mut [u8], src: &[u8]) {
    debug_assert_eq!(acc.len(), src.len());
    // Word-wise main loop; chunks_exact keeps this autovectorizable.
    let words = acc.len() / 8;
    let (acc_head, acc_tail) = acc.split_at_mut(words * 8);
    let (src_head, src_tail) = src.split_at(words * 8);
    for (a, s) in acc_head.chunks_exact_mut(8).zip(src_head.chunks_exact(8)) {
        let av = u64::from_ne_bytes(a.try_into().unwrap());
        let sv = u64::from_ne_bytes(s.try_into().unwrap());
        a.copy_from_slice(&(av ^ sv).to_ne_bytes());
    }
    for (a, s) in acc_tail.iter_mut().zip(src_tail) {
        *a ^= s;
    }
}

/// Compute the parity chunk of a stripe from its data chunks.
///
/// # Panics
/// Panics if `data` is empty or the chunks have unequal lengths; use
/// [`try_compute_parity`] on untrusted inputs.
pub fn compute_parity(data: &[&[u8]]) -> Vec<u8> {
    try_compute_parity(data).expect("malformed stripe")
}

/// Reconstruct one missing chunk from the surviving chunks of the stripe
/// (the survivors must include the parity chunk unless the missing chunk
/// *is* the parity chunk).
///
/// # Panics
/// Panics on malformed input; use [`try_reconstruct`] on untrusted inputs.
pub fn reconstruct(survivors: &[&[u8]]) -> Vec<u8> {
    compute_parity(survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| seed.wrapping_mul(31).wrapping_add(i as u8)).collect()
    }

    #[test]
    fn parity_of_identical_chunks_is_zero_for_pairs() {
        let a = chunk(1, 64);
        let p = compute_parity(&[&a, &a]);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn reconstruct_any_data_chunk() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i, 4096)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let parity = compute_parity(&refs);
        for missing in 0..3 {
            let mut survivors: Vec<&[u8]> = Vec::new();
            for (i, c) in chunks.iter().enumerate() {
                if i != missing {
                    survivors.push(c);
                }
            }
            survivors.push(&parity);
            assert_eq!(reconstruct(&survivors), chunks[missing], "chunk {missing}");
        }
    }

    #[test]
    fn reconstruct_parity_itself() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i + 5, 1024)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let parity = compute_parity(&refs);
        assert_eq!(reconstruct(&refs), parity);
    }

    #[test]
    fn handles_non_word_lengths() {
        let a = chunk(3, 13);
        let b = chunk(7, 13);
        let mut acc = a.clone();
        xor_into(&mut acc, &b);
        for i in 0..13 {
            assert_eq!(acc[i], a[i] ^ b[i]);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut a = vec![0u8; 8];
        xor_into(&mut a, &[0u8; 9]);
    }

    #[test]
    fn try_variants_reject_malformed_input() {
        use crate::error::ParityError;
        assert_eq!(try_compute_parity(&[]), Err(ParityError::EmptyStripe));
        let a = [0u8; 8];
        let b = [0u8; 9];
        assert_eq!(
            try_compute_parity(&[&a, &b]),
            Err(ParityError::LengthMismatch { expected: 8, got: 9 })
        );
        let mut acc = vec![0u8; 4];
        assert!(try_xor_into(&mut acc, &[1, 2, 3, 4]).is_ok());
        assert_eq!(acc, vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_and_panicking_agree() {
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| chunk(i, 256)).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        assert_eq!(try_compute_parity(&refs).unwrap(), compute_parity(&refs));
        assert_eq!(try_reconstruct(&refs).unwrap(), reconstruct(&refs));
    }
}
