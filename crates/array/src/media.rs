//! Simulated storage media with injectable power loss.
//!
//! The durable backend ([`crate::file_sink`]) and the WAL in `adapt-lss`
//! write through this layer instead of touching `std::fs` directly. A
//! [`MediaFile`] buffers appends in memory and only makes them durable on
//! [`MediaFile::sync`]; a shared [`PowerBudget`] meters how many bytes the
//! "hardware" is allowed to persist before power is cut. When the budget
//! runs out mid-sync, the file is left with a *torn tail* — exactly the
//! partial-write state a real crash produces — and every later operation
//! fails with [`MediaError::PowerLoss`].
//!
//! The budget is deliberately byte-granular: a crash point is a single
//! integer offset into the stream of durable bytes, so a seeded sweep can
//! place the cut mid-WAL-record, mid-segment-write, or between a temp-file
//! write and its rename (see [`atomic_replace`]).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// What class of durable write is consuming budget. Crash sweeps use the
/// tag recorded at the trip point to classify each seeded crash (torn WAL
/// record vs torn segment write vs interrupted rename).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WriteTag {
    /// A WAL record append.
    WalRecord,
    /// A segment-file chunk record.
    SinkRecord,
    /// The rename step of an atomic replace.
    Rename,
    /// Superblock / checkpoint temp-file contents.
    Superblock,
}

impl WriteTag {
    fn from_u8(v: u8) -> WriteTag {
        match v {
            0 => WriteTag::WalRecord,
            1 => WriteTag::SinkRecord,
            2 => WriteTag::Rename,
            _ => WriteTag::Superblock,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            WriteTag::WalRecord => 0,
            WriteTag::SinkRecord => 1,
            WriteTag::Rename => 2,
            WriteTag::Superblock => 3,
        }
    }
}

/// A metered allowance of durable bytes, shared (via `Arc`) between every
/// writer of one simulated machine. `consume` grants bytes until the
/// budget runs dry; the first short grant trips the budget permanently,
/// modeling the instant the power fails.
#[derive(Debug)]
pub struct PowerBudget {
    remaining: AtomicI64,
    consumed: AtomicU64,
    tripped: AtomicBool,
    trip_tag: AtomicU8,
    /// Present only on metering runs: the sequence of (tag, bytes) grants,
    /// used to aim crash points at specific write classes.
    journal: Option<Mutex<Vec<(WriteTag, u64)>>>,
}

impl PowerBudget {
    /// A budget that never trips (normal operation).
    pub fn unlimited() -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicI64::new(i64::MAX),
            consumed: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip_tag: AtomicU8::new(0),
            journal: None,
        })
    }

    /// An unlimited budget that records every grant, for the golden run of
    /// a crash sweep.
    pub fn metered() -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicI64::new(i64::MAX),
            consumed: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip_tag: AtomicU8::new(0),
            journal: Some(Mutex::new(Vec::new())),
        })
    }

    /// A budget that cuts power after exactly `bytes` durable bytes.
    pub fn limited(bytes: u64) -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicI64::new(bytes.min(i64::MAX as u64) as i64),
            consumed: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip_tag: AtomicU8::new(0),
            journal: None,
        })
    }

    /// Request `want` bytes of durable writing; returns how many are
    /// granted. A short grant (including zero) trips the budget: all
    /// subsequent requests are denied.
    pub fn consume(&self, tag: WriteTag, want: u64) -> u64 {
        if self.tripped.load(Ordering::Relaxed) {
            return 0;
        }
        let left = self.remaining.load(Ordering::Relaxed).max(0) as u64;
        let granted = want.min(left);
        self.remaining.fetch_sub(granted as i64, Ordering::Relaxed);
        self.consumed.fetch_add(granted, Ordering::Relaxed);
        if granted < want {
            self.tripped.store(true, Ordering::Relaxed);
            self.trip_tag.store(tag.as_u8(), Ordering::Relaxed);
        } else if let Some(j) = &self.journal {
            j.lock().unwrap().push((tag, granted));
        }
        granted
    }

    /// Has the power been cut?
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// The write class that was in flight when power failed.
    pub fn trip_tag(&self) -> Option<WriteTag> {
        if self.is_tripped() {
            Some(WriteTag::from_u8(self.trip_tag.load(Ordering::Relaxed)))
        } else {
            None
        }
    }

    /// Total bytes made durable so far.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// The grant journal of a metered run (empty otherwise).
    pub fn journal(&self) -> Vec<(WriteTag, u64)> {
        self.journal.as_ref().map(|j| j.lock().unwrap().clone()).unwrap_or_default()
    }
}

/// Error from the media layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediaError {
    /// The power budget ran out: the write stream ends here, possibly
    /// mid-record. The on-disk state keeps whatever prefix was granted.
    PowerLoss,
    /// A real filesystem error.
    Io(String),
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::PowerLoss => write!(f, "simulated power loss: write budget exhausted"),
            MediaError::Io(detail) => write!(f, "media I/O error: {detail}"),
        }
    }
}

impl std::error::Error for MediaError {}

impl From<std::io::Error> for MediaError {
    fn from(e: std::io::Error) -> Self {
        MediaError::Io(e.to_string())
    }
}

/// An append-only file whose writes become durable only at [`sync`]
/// (`MediaFile::sync`) — the volatile write cache of a disk. Appends
/// accumulate in `pending`; `sync` pushes them to the OS file, charging
/// the power budget byte-for-byte, so a crash mid-sync leaves a torn tail.
#[derive(Debug)]
pub struct MediaFile {
    path: PathBuf,
    file: File,
    pending: Vec<u8>,
    durable_len: u64,
    budget: Option<Arc<PowerBudget>>,
    tag: WriteTag,
    fsync: bool,
}

impl MediaFile {
    /// Create (truncating) a fresh file.
    pub fn create(
        path: impl Into<PathBuf>,
        budget: Option<Arc<PowerBudget>>,
        tag: WriteTag,
        fsync: bool,
    ) -> Result<Self, MediaError> {
        let path = path.into();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(Self { path, file, pending: Vec::new(), durable_len: 0, budget, tag, fsync })
    }

    /// Open an existing file for continued appends (recovery handoff).
    /// Everything already in the file counts as durable.
    pub fn append_to(
        path: impl Into<PathBuf>,
        budget: Option<Arc<PowerBudget>>,
        tag: WriteTag,
        fsync: bool,
    ) -> Result<Self, MediaError> {
        let path = path.into();
        let mut file =
            OpenOptions::new().write(true).read(true).create(true).truncate(false).open(&path)?;
        let durable_len = file.seek(SeekFrom::End(0))?;
        Ok(Self { path, file, pending: Vec::new(), durable_len, budget, tag, fsync })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffer bytes; nothing is durable until [`MediaFile::sync`].
    pub fn write(&mut self, buf: &[u8]) {
        self.pending.extend_from_slice(buf);
    }

    /// Bytes buffered but not yet durable.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Bytes durably in the file.
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Logical length: durable plus buffered.
    pub fn len(&self) -> u64 {
        self.durable_len + self.pending.len() as u64
    }

    /// Whether nothing has been written at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered bytes to the OS file, honoring the power budget. On
    /// a short grant the granted prefix is written (torn tail), the rest
    /// of the buffer is discarded — it lived only in the "write cache" —
    /// and `PowerLoss` is returned.
    pub fn sync(&mut self) -> Result<(), MediaError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let want = self.pending.len() as u64;
        let granted = match &self.budget {
            Some(b) => b.consume(self.tag, want),
            None => want,
        };
        let cut = granted as usize;
        self.file.seek(SeekFrom::Start(self.durable_len))?;
        self.file.write_all(&self.pending[..cut])?;
        self.durable_len += granted;
        self.pending.clear();
        if granted < want {
            return Err(MediaError::PowerLoss);
        }
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Read back `buf.len()` bytes at `offset`, spanning the durable file
    /// and the volatile pending buffer (the writer sees its own cache).
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), MediaError> {
        let end = offset + buf.len() as u64;
        if end > self.len() {
            return Err(MediaError::Io(format!(
                "read past end: {}..{} of {} in {}",
                offset,
                end,
                self.len(),
                self.path.display()
            )));
        }
        let durable_part = self.durable_len.saturating_sub(offset).min(buf.len() as u64) as usize;
        if durable_part > 0 {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut buf[..durable_part])?;
        }
        if durable_part < buf.len() {
            let from = (offset + durable_part as u64 - self.durable_len) as usize;
            let n = buf.len() - durable_part;
            buf[durable_part..].copy_from_slice(&self.pending[from..from + n]);
        }
        Ok(())
    }
}

/// Atomically install `bytes` at `final_path` via temp-write-and-rename.
/// The temp contents are charged to `tag`; the rename itself is charged as
/// one [`WriteTag::Rename`] unit, so a crash sweep can land exactly
/// *between* the temp write and the rename — the classic mid-rename
/// window where a valid temp file exists but the target still holds the
/// previous generation.
pub fn atomic_replace(
    final_path: &Path,
    bytes: &[u8],
    budget: Option<&Arc<PowerBudget>>,
    tag: WriteTag,
    fsync: bool,
) -> Result<(), MediaError> {
    let tmp = tmp_path(final_path);
    let want = bytes.len() as u64;
    let granted = match budget {
        Some(b) => b.consume(tag, want),
        None => want,
    };
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes[..granted as usize])?;
        if fsync {
            f.sync_data()?;
        }
    }
    if granted < want {
        // Torn temp file left behind; target untouched.
        return Err(MediaError::PowerLoss);
    }
    let rename_granted = match budget {
        Some(b) => b.consume(WriteTag::Rename, 1),
        None => 1,
    };
    if rename_granted == 0 {
        // Complete temp file, but power died before the rename: the
        // mid-rename crash state.
        return Err(MediaError::PowerLoss);
    }
    std::fs::rename(&tmp, final_path)?;
    if fsync {
        // Durability of the rename requires syncing the directory.
        if let Some(dir) = final_path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// The temp-file path `atomic_replace` uses for `final_path`.
pub fn tmp_path(final_path: &Path) -> PathBuf {
    let mut name = final_path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    final_path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adapt-media-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pending_is_volatile_until_sync() {
        let dir = scratch("volatile");
        let path = dir.join("a.log");
        let mut f = MediaFile::create(&path, None, WriteTag::WalRecord, false).unwrap();
        f.write(b"hello");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_trip_leaves_torn_tail() {
        let dir = scratch("torn");
        let path = dir.join("a.log");
        let budget = PowerBudget::limited(3);
        let mut f =
            MediaFile::create(&path, Some(budget.clone()), WriteTag::SinkRecord, false).unwrap();
        f.write(b"abcdef");
        assert_eq!(f.sync(), Err(MediaError::PowerLoss));
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        assert!(budget.is_tripped());
        assert_eq!(budget.trip_tag(), Some(WriteTag::SinkRecord));
        // Once tripped, nothing more is granted.
        f.write(b"x");
        assert_eq!(f.sync(), Err(MediaError::PowerLoss));
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_at_spans_durable_and_pending() {
        let dir = scratch("readback");
        let mut f = MediaFile::create(dir.join("a.log"), None, WriteTag::WalRecord, false).unwrap();
        f.write(b"abc");
        f.sync().unwrap();
        f.write(b"def");
        let mut buf = [0u8; 6];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        let mut buf = [0u8; 2];
        f.read_at(2, &mut buf).unwrap();
        assert_eq!(&buf, b"cd");
        assert!(f.read_at(5, &mut [0u8; 2]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_replace_swaps_generations() {
        let dir = scratch("replace");
        let target = dir.join("super.bin");
        atomic_replace(&target, b"gen1", None, WriteTag::Superblock, false).unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"gen1");
        atomic_replace(&target, b"gen2", None, WriteTag::Superblock, false).unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"gen2");
        assert!(!tmp_path(&target).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_temp_and_rename_keeps_old_generation() {
        let dir = scratch("midrename");
        let target = dir.join("super.bin");
        atomic_replace(&target, b"gen1", None, WriteTag::Superblock, false).unwrap();
        // Enough budget for the temp contents but not the rename.
        let budget = PowerBudget::limited(4);
        assert_eq!(
            atomic_replace(&target, b"gen2", Some(&budget), WriteTag::Superblock, false),
            Err(MediaError::PowerLoss)
        );
        assert_eq!(std::fs::read(&target).unwrap(), b"gen1", "target must keep old generation");
        assert_eq!(std::fs::read(tmp_path(&target)).unwrap(), b"gen2", "temp file left behind");
        assert_eq!(budget.trip_tag(), Some(WriteTag::Rename));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metered_budget_journals_grants() {
        let budget = PowerBudget::metered();
        budget.consume(WriteTag::WalRecord, 10);
        budget.consume(WriteTag::Rename, 1);
        assert_eq!(budget.consumed(), 11);
        assert_eq!(budget.journal(), vec![(WriteTag::WalRecord, 10), (WriteTag::Rename, 1)]);
        assert!(!budget.is_tripped());
    }
}
