//! SSD-array substrate for the ADAPT reproduction.
//!
//! Models the array layer the paper deploys beneath its log-structured
//! store: an mdraid-style RAID-5 volume whose minimum write unit is a
//! *chunk* (64 KiB default). Chunks from different devices form *stripes*;
//! each stripe carries one parity chunk, with parity rotated across devices
//! (left-symmetric layout, as in Linux mdraid's default).
//!
//! Two levels of fidelity are provided:
//!
//! * [`CountingArray`] — a pure accounting model used by the trace-driven
//!   simulator: it tracks where each flushed chunk lands, how many bytes of
//!   user data, GC data, shadow copies, and zero padding each device
//!   absorbs, and how much parity traffic the stripe geometry implies.
//! * [`InMemoryArray`] — a byte-faithful RAID-5 store used by the prototype
//!   and the fault-injection tests: it keeps real chunk contents, computes
//!   XOR parity when a stripe completes, and can reconstruct any single
//!   failed device from the survivors.
//!
//! The log-structured engine above talks to either through the
//! [`ArraySink`] trait, which receives chunk-granular flushes (the paper's
//! invariant: the array never sees sub-chunk writes — partial chunks are
//! zero-padded by the layer above).

pub mod config;
pub mod counters;
pub mod cpu_features;
pub mod crc;
pub mod error;
pub mod fault;
pub mod file_sink;
pub mod ftl;
pub mod ftl_sink;
pub mod gf256;
pub mod layout;
pub mod media;
pub mod parity;
pub mod rs;
pub mod sink;
pub mod store;

pub use config::{ArrayConfig, ArrayGeometry, CodingScheme};
pub use counters::{ArrayStats, DeviceCounters};
pub use crc::crc32c;
pub use error::{ArrayError, ParityError, Retryable, StorageFailure};
pub use fault::{
    ArrayHealth, DiskState, FaultPlan, ReadMode, ReadOutcome, RebuildProgress, ScrubProgress,
    ScrubStep,
};
pub use file_sink::{FileArraySink, FileSinkError, FileSinkOptions};
pub use ftl::{FtlConfig, FtlDevice, FtlStats};
pub use ftl_sink::FtlArray;
pub use layout::{ChunkLocation, Raid5Layout, StripeLayout, StripeRole};
pub use media::{atomic_replace, MediaError, MediaFile, PowerBudget, WriteTag};
pub use rs::ReedSolomon;
pub use sink::{
    ArraySink, ChunkFlush, CountingArray, FaultyArray, RecoveredFlush, SinkReconcile, Traffic,
};
pub use store::InMemoryArray;
