//! Reed-Solomon erasure coding over GF(256).
//!
//! A systematic `k + m` code: `k` data chunks per stripe, `m` parity
//! chunks, any `m` simultaneous losses recoverable. The encode matrix is
//! chosen so that:
//!
//! * **row 0 is all ones** — the first parity chunk is the plain XOR of
//!   the data chunks, so `m = 1` degenerates *exactly* to the existing
//!   RAID-5 parity ([`crate::parity`]), byte for byte;
//! * for `m ≤ 2` the remaining row is the Vandermonde row `α^i`
//!   (classic RAID-6 P+Q, provably MDS: every 1×1 entry is nonzero and
//!   every 2×2 determinant is `α^i ⊕ α^j ≠ 0` for `i ≠ j < 255`);
//! * for `m ≥ 3` a Cauchy matrix (`C[j][i] = 1/(x_j ⊕ y_i)` with
//!   distinct `x`/`y`) column-scaled so row 0 becomes all ones — every
//!   square submatrix of a Cauchy matrix is nonsingular and column
//!   scaling by nonzero constants preserves that, so any `≤ m` erasures
//!   stay decodable.
//!
//! Decoding selects any `k` surviving chunks, inverts the corresponding
//! `k × k` submatrix of the systematic generator by Gauss-Jordan
//! elimination, and reconstructs each erased chunk as one coefficient
//! vector applied with the bulk [`crate::gf256::gf_mul_into`] kernel —
//! so a single-erasure decode under `m = 1` is again a pure XOR.

use crate::error::ParityError;
use crate::gf256::{gf_div, gf_inv, gf_mul, gf_mul_into, gf_pow};

/// A systematic `k + m` Reed-Solomon code. Shards are indexed
/// `0..k` (data columns) then `k..k+m` (parity rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// The `m × k` encode matrix; `rows[0]` is all ones.
    rows: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Build the code for `k` data and `m` parity chunks per stripe.
    /// Requires `k ≥ 1`, `m ≥ 1`, `k + m ≤ 256` (field size).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1, "at least one data column");
        assert!(m >= 1, "at least one parity chunk");
        assert!(k + m <= 256, "k + m must fit in GF(256)");
        let rows = if m <= 2 {
            (0..m)
                .map(|j| (0..k).map(|i| gf_pow(2, (j * i) as u32)).collect())
                .collect::<Vec<Vec<u8>>>()
        } else {
            // Cauchy over distinct points x_j = j, y_i = m + i, columns
            // scaled so row 0 is all ones.
            let raw: Vec<Vec<u8>> = (0..m)
                .map(|j| (0..k).map(|i| gf_inv((j as u8) ^ ((m + i) as u8))).collect())
                .collect();
            (0..m).map(|j| (0..k).map(|i| gf_div(raw[j][i], raw[0][i])).collect()).collect()
        };
        debug_assert!(rows[0].iter().all(|&c| c == 1));
        Self { k, m, rows }
    }

    /// Data chunks per stripe.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity chunks per stripe.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total chunks per stripe (`k + m`).
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Encode-matrix coefficient of parity row `row` over data column
    /// `col`.
    pub fn coeff(&self, row: usize, col: usize) -> u8 {
        self.rows[row][col]
    }

    /// Fold one data column into `m` streaming parity accumulators
    /// (each pre-zeroed and chunk-sized): `parity[j] ^= coeff(j, column)
    /// · data`. This is how the stores compute parity without buffering
    /// the whole stripe.
    pub fn accumulate(&self, parity: &mut [Vec<u8>], column: usize, data: &[u8]) {
        assert_eq!(parity.len(), self.m, "one accumulator per parity row");
        assert!(column < self.k, "column out of range");
        for (j, acc) in parity.iter_mut().enumerate() {
            gf_mul_into(acc, data, self.rows[j][column]);
        }
    }

    /// Encode a full stripe: overwrite each `parity[j]` with the row-`j`
    /// combination of `data`. All slices must be equal length and
    /// `data.len() == k`, `parity.len() == m`.
    pub fn encode_into(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ParityError> {
        if data.len() != self.k {
            return Err(ParityError::LengthMismatch { expected: self.k, got: data.len() });
        }
        let len = data[0].len();
        for d in data {
            if d.len() != len {
                return Err(ParityError::LengthMismatch { expected: len, got: d.len() });
            }
        }
        assert_eq!(parity.len(), self.m, "one output per parity row");
        for p in parity.iter_mut() {
            p.clear();
            p.resize(len, 0);
        }
        for (column, d) in data.iter().enumerate() {
            self.accumulate(parity, column, d);
        }
        Ok(())
    }

    /// Encode a full stripe into freshly allocated parity chunks.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, ParityError> {
        let mut parity = vec![Vec::new(); self.m];
        self.encode_into(data, &mut parity)?;
        Ok(parity)
    }

    /// The generator row of shard `idx`: a unit row for data shards, the
    /// encode-matrix row for parity shards.
    fn generator_row(&self, idx: usize) -> Vec<u8> {
        if idx < self.k {
            let mut row = vec![0u8; self.k];
            row[idx] = 1;
            row
        } else {
            self.rows[idx - self.k].clone()
        }
    }

    /// Coefficient vector over `survivors` that reconstructs shard
    /// `target`: `shard_target = Σ_i coeffs[i] · survivor_i`.
    fn recovery_coeffs(&self, survivors: &[usize], target: usize) -> Result<Vec<u8>, ParityError> {
        debug_assert_eq!(survivors.len(), self.k);
        let a: Vec<Vec<u8>> = survivors.iter().map(|&s| self.generator_row(s)).collect();
        let b = invert(&a)?; // data = B · survivors
        Ok(if target < self.k {
            b[target].clone()
        } else {
            // parity_j = rows[j] · data = (rows[j] · B) · survivors
            let row = &self.rows[target - self.k];
            (0..self.k)
                .map(|i| (0..self.k).fold(0u8, |acc, j| acc ^ gf_mul(row[j], b[j][i])))
                .collect()
        })
    }

    /// Reconstruct shard `target` from at least `k` surviving shards
    /// `(shard_index, chunk)` into `out` (overwritten; must be
    /// chunk-sized). Extra survivors beyond `k` are ignored.
    pub fn recover_into(
        &self,
        survivors: &[(usize, &[u8])],
        target: usize,
        out: &mut [u8],
    ) -> Result<(), ParityError> {
        if survivors.len() < self.k {
            return Err(ParityError::NotEnoughShards { have: survivors.len(), need: self.k });
        }
        assert!(target < self.total_shards(), "target shard out of range");
        debug_assert!(survivors.iter().all(|&(s, _)| s != target), "target listed among survivors");
        let picked = &survivors[..self.k];
        let idx: Vec<usize> = picked.iter().map(|&(s, _)| s).collect();
        let coeffs = self.recovery_coeffs(&idx, target)?;
        out.fill(0);
        for (c, &(_, chunk)) in coeffs.iter().zip(picked.iter()) {
            if chunk.len() != out.len() {
                return Err(ParityError::LengthMismatch { expected: out.len(), got: chunk.len() });
            }
            gf_mul_into(out, chunk, *c);
        }
        Ok(())
    }

    /// Reconstruct several shards at once; returns chunks in `targets`
    /// order.
    pub fn recover_many(
        &self,
        survivors: &[(usize, &[u8])],
        targets: &[usize],
        chunk_len: usize,
    ) -> Result<Vec<Vec<u8>>, ParityError> {
        targets
            .iter()
            .map(|&t| {
                let mut out = vec![0u8; chunk_len];
                self.recover_into(survivors, t, &mut out)?;
                Ok(out)
            })
            .collect()
    }
}

/// Gauss-Jordan inversion of a `k × k` matrix over GF(256).
fn invert(a: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ParityError> {
    let k = a.len();
    // Augmented [A | I], reduced in place.
    let mut aug: Vec<Vec<u8>> = a
        .iter()
        .enumerate()
        .map(|(r, row)| {
            debug_assert_eq!(row.len(), k);
            let mut w = row.clone();
            w.resize(2 * k, 0);
            w[k + r] = 1;
            w
        })
        .collect();
    for col in 0..k {
        let pivot = (col..k).find(|&r| aug[r][col] != 0).ok_or(ParityError::SingularMatrix)?;
        aug.swap(col, pivot);
        let inv = gf_inv(aug[col][col]);
        for x in aug[col].iter_mut() {
            *x = gf_mul(*x, inv);
        }
        let pivot_row = aug[col].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != col && row[col] != 0 {
                let f = row[col];
                for (x, &p) in row.iter_mut().zip(&pivot_row) {
                    *x ^= gf_mul(f, p);
                }
            }
        }
    }
    Ok(aug.into_iter().map(|row| row[k..].to_vec()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity;

    fn chunk(len: usize, salt: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(197).wrapping_add(salt)).collect()
    }

    fn stripe(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k).map(|i| chunk(len, (i * 37 + 11) as u8)).collect()
    }

    /// All size-`r` subsets of `0..n`.
    fn combinations(n: usize, r: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        fn rec(start: usize, n: usize, r: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == r {
                out.push(cur.clone());
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, r, cur, out);
                cur.pop();
            }
        }
        rec(0, n, r, &mut cur, &mut out);
        out
    }

    #[test]
    fn m1_parity_is_plain_xor() {
        for k in [2usize, 3, 5, 8] {
            let rs = ReedSolomon::new(k, 1);
            let data = stripe(k, 777);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let p = rs.encode(&refs).unwrap();
            let xor = parity::try_compute_parity(&refs).unwrap();
            assert_eq!(p[0], xor, "k = {k}");
        }
    }

    #[test]
    fn raid6_q_matches_textbook_formula() {
        let k = 4;
        let rs = ReedSolomon::new(k, 2);
        let data = stripe(k, 129);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p = rs.encode(&refs).unwrap();
        for byte in 0..129 {
            let mut p0 = 0u8;
            let mut q = 0u8;
            for (i, d) in data.iter().enumerate() {
                p0 ^= d[byte];
                q ^= gf_mul(gf_pow(2, i as u32), d[byte]);
            }
            assert_eq!(p[0][byte], p0);
            assert_eq!(p[1][byte], q);
        }
    }

    #[test]
    fn streaming_accumulate_matches_full_encode() {
        let (k, m, len) = (5, 3, 260);
        let rs = ReedSolomon::new(k, m);
        let data = stripe(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let full = rs.encode(&refs).unwrap();
        let mut accs = vec![vec![0u8; len]; m];
        // Columns folded out of order — accumulation must commute.
        for &col in &[3usize, 0, 4, 1, 2] {
            rs.accumulate(&mut accs, col, &data[col]);
        }
        assert_eq!(accs, full);
    }

    #[test]
    fn every_erasure_pattern_round_trips() {
        // Chunk lengths straddle the SIMD widths (odd tail, exact width).
        for &(k, m, len) in &[
            (3usize, 1usize, 67usize),
            (3, 2, 64),
            (4, 2, 130),
            (6, 3, 97),
            (5, 4, 48),
            (10, 4, 33),
        ] {
            let rs = ReedSolomon::new(k, m);
            let data = stripe(k, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = rs.encode(&refs).unwrap();
            let shards: Vec<&[u8]> =
                refs.iter().copied().chain(parity.iter().map(|p| p.as_slice())).collect();
            for r in 1..=m {
                for erased in combinations(k + m, r) {
                    let survivors: Vec<(usize, &[u8])> = (0..k + m)
                        .filter(|i| !erased.contains(i))
                        .map(|i| (i, shards[i]))
                        .collect();
                    let recovered = rs.recover_many(&survivors, &erased, len).unwrap();
                    for (t, got) in erased.iter().zip(recovered.iter()) {
                        assert_eq!(
                            got, shards[*t],
                            "k={k} m={m} erased={erased:?} shard {t} mismatch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn too_few_survivors_is_an_error() {
        let rs = ReedSolomon::new(4, 2);
        let data = stripe(4, 1);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let survivors: Vec<(usize, &[u8])> = refs.iter().copied().enumerate().take(3).collect();
        let mut out = vec![0u8; data[0].len()];
        assert_eq!(
            rs.recover_into(&survivors, 5, &mut out),
            Err(ParityError::NotEnoughShards { have: 3, need: 4 })
        );
    }

    #[test]
    fn extra_survivors_are_ignored() {
        let (k, m, len) = (4, 2, 100);
        let rs = ReedSolomon::new(k, m);
        let data = stripe(k, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        // All shards except shard 2 offered as survivors (k+1 of them).
        let shards: Vec<&[u8]> =
            refs.iter().copied().chain(parity.iter().map(|p| p.as_slice())).collect();
        let survivors: Vec<(usize, &[u8])> =
            (0..k + m).filter(|&i| i != 2).map(|i| (i, shards[i])).collect();
        let mut out = vec![0u8; len];
        rs.recover_into(&survivors, 2, &mut out).unwrap();
        assert_eq!(out, data[2]);
    }

    #[test]
    fn row_zero_is_all_ones_for_every_geometry() {
        for (k, m) in [(2, 1), (3, 2), (4, 3), (8, 4), (20, 6)] {
            let rs = ReedSolomon::new(k, m);
            assert!((0..k).all(|i| rs.coeff(0, i) == 1), "k={k} m={m}");
        }
    }
}
