//! Deterministic fault injection for the array layer.
//!
//! A [`FaultPlan`] is a seedable schedule of device failures, transient
//! read errors, and latent sector errors. It is consulted by the array
//! implementations on every operation, so a given seed + schedule replays
//! the exact same fault sequence — the property the recovery tests and the
//! fault-scenario simulator rely on.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Health of the array as seen by the layer above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayHealth {
    /// All devices operational.
    Healthy,
    /// One device failed; reads to it are served by reconstruction.
    Degraded { device: usize },
    /// A spare is being rebuilt for the failed device.
    Rebuilding { device: usize },
}

impl ArrayHealth {
    /// The failed device, if any.
    pub fn failed_device(&self) -> Option<usize> {
        match self {
            ArrayHealth::Healthy => None,
            ArrayHealth::Degraded { device } | ArrayHealth::Rebuilding { device } => Some(*device),
        }
    }

    /// Summarize a per-device state vector: `Rebuilding` wins over
    /// `Degraded` wins over `Healthy`, reporting the first affected
    /// device. (A draining device is still fully readable, so a drain by
    /// itself leaves the array `Healthy`.)
    pub fn from_disk_states(states: &[DiskState]) -> ArrayHealth {
        if let Some(device) = states.iter().position(|s| *s == DiskState::Rebuilding) {
            return ArrayHealth::Rebuilding { device };
        }
        if let Some(device) = states.iter().position(|s| *s == DiskState::Failed) {
            return ArrayHealth::Degraded { device };
        }
        ArrayHealth::Healthy
    }
}

/// Lifecycle state of one member device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskState {
    /// Fully operational.
    Healthy,
    /// Operational, but being proactively evacuated onto a replacement
    /// (planned removal): reads are served directly, and a paced copy
    /// sweep moves its chunks without spending redundancy.
    Draining,
    /// Failed: reads to it require erasure-decode from stripe survivors.
    Failed,
    /// A spare is being rebuilt for this (failed) device.
    Rebuilding,
}

impl DiskState {
    /// Whether the device's chunks must currently be served by
    /// reconstruction (it counts as an erasure against the code's `m`).
    pub fn is_erased(&self) -> bool {
        matches!(self, DiskState::Failed | DiskState::Rebuilding)
    }
}

/// How a read was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Directly from the chunk's home device.
    Normal,
    /// Reconstructed by XOR-ing the stripe's survivors.
    Reconstructed,
    /// The direct read failed its checksum; the chunk was rebuilt from
    /// stripe survivors, re-verified, and rewritten in place.
    Healed,
}

/// Result of a successful chunk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// How the read was served.
    pub mode: ReadMode,
    /// Bytes physically read from devices to serve it (one chunk when
    /// normal; the surviving `n-1` chunks when reconstructed).
    pub device_bytes_read: u64,
}

impl ReadOutcome {
    /// A direct read of one chunk.
    pub fn normal(chunk_bytes: u64) -> Self {
        Self { mode: ReadMode::Normal, device_bytes_read: chunk_bytes }
    }

    /// A reconstruction from `survivors` chunks.
    pub fn reconstructed(chunk_bytes: u64, survivors: usize) -> Self {
        Self { mode: ReadMode::Reconstructed, device_bytes_read: chunk_bytes * survivors as u64 }
    }

    /// A checksum-mismatch repair: the bad chunk plus `survivors` chunks
    /// were read to rebuild and re-verify it.
    pub fn healed(chunk_bytes: u64, survivors: usize) -> Self {
        Self { mode: ReadMode::Healed, device_bytes_read: chunk_bytes * (survivors as u64 + 1) }
    }
}

/// Progress of an incremental rebuild sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildProgress {
    /// Stripes rebuilt so far.
    pub stripes_done: u64,
    /// Stripes the sweep will visit in total.
    pub stripes_total: u64,
    /// Whether the sweep has finished and the array is healthy again.
    pub complete: bool,
}

/// Progress of an incremental scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubProgress {
    /// Stripes verified so far in the current pass.
    pub stripes_done: u64,
    /// Stripes the pass will visit in total.
    pub stripes_total: u64,
    /// Whether the current pass has finished.
    pub complete: bool,
}

/// What one [`crate::ArraySink::scrub_step`] call accomplished — the
/// per-step deltas the engine folds into its own metrics windows (the
/// array's [`crate::ArrayStats`] carry the cumulative totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubStep {
    /// Stripes whose chunks were verified this step.
    pub stripes_scrubbed: u64,
    /// Chunks (data + parity) whose checksums were verified this step.
    pub chunks_scrubbed: u64,
    /// Bytes read off devices to verify them.
    pub read_bytes: u64,
    /// Checksum mismatches (silent corruptions) detected this step.
    pub detected: u64,
    /// Mismatched chunks repaired from stripe survivors and rewritten.
    pub healed: u64,
    /// Mismatched chunks that could not be repaired (a second fault in
    /// the same stripe).
    pub unrecoverable: u64,
    /// Latent sector errors repaired by rewriting the chunk.
    pub latent_repaired: u64,
    /// Bytes written back by repairs (healed + latent rewrites).
    pub heal_write_bytes: u64,
    /// Sum over detections of ops elapsed since each corruption was
    /// injected (detection latency, op clock).
    pub detection_latency_ops: u64,
    /// The step did nothing because a rebuild is in flight (rebuild I/O
    /// has priority; scrub resumes after).
    pub paused_for_rebuild: bool,
    /// The pass covered its last stripe during this step.
    pub pass_complete: bool,
}

impl ScrubStep {
    /// A step that declined to run because the array is rebuilding.
    pub fn paused() -> Self {
        Self { paused_for_rebuild: true, ..Default::default() }
    }
}

/// Deterministic, seedable fault schedule.
///
/// Operations are counted by the array (`record_op` on every chunk write
/// and read); schedules are expressed against that counter so the same
/// plan replayed over the same workload injects the same faults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed for the transient-error draw.
    seed: u64,
    /// Device → operation index at which it fails permanently.
    fail_at_op: BTreeMap<usize, u64>,
    /// Probability in [0, 1] that any single chunk read raises a
    /// transient error (retry succeeds).
    transient_read_prob: f64,
    /// (device, stripe) pairs whose media is unreadable until rewritten.
    latent_sectors: BTreeSet<(usize, u64)>,
    /// Scheduled silent corruptions: (op, device, stripe) — the chunk at
    /// (device, stripe) silently flips bits once `op` operations have
    /// been observed. Unlike latent sectors, the device still serves the
    /// chunk; only a checksum can tell.
    #[serde(default)]
    corrupt_at_op: Vec<(u64, usize, u64)>,
    /// Operations observed so far.
    ops: u64,
    /// Deterministic RNG state (derived from `seed`).
    rng_state: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, rng_state: seed ^ 0x9e3779b97f4a7c15, ..Default::default() }
    }

    /// Schedule `device` to fail permanently once `op` operations have
    /// been observed.
    pub fn fail_device_at(mut self, device: usize, op: u64) -> Self {
        self.fail_at_op.insert(device, op);
        self
    }

    /// Schedule a correlated failure: every device in `devices` fails at
    /// the same operation (shared power rail, firmware bug, one shelf).
    /// [`Self::record_op`] reports them together in a single call.
    pub fn fail_devices_at(mut self, devices: &[usize], op: u64) -> Self {
        for &d in devices {
            self.fail_at_op.insert(d, op);
        }
        self
    }

    /// Make every chunk read raise a transient error with probability `p`.
    pub fn with_transient_read_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.transient_read_prob = p;
        self
    }

    /// Mark (device, stripe) as a latent sector error: direct reads of
    /// that chunk fail until it is rewritten (e.g. by a rebuild).
    pub fn with_latent_sector(mut self, device: usize, stripe: u64) -> Self {
        self.add_latent_sector(device, stripe);
        self
    }

    /// Inject a latent sector error on an existing plan (media degrades
    /// after the data was written).
    pub fn add_latent_sector(&mut self, device: usize, stripe: u64) {
        self.latent_sectors.insert((device, stripe));
    }

    /// Schedule a silent corruption of the chunk at (device, stripe)
    /// once `op` operations have been observed.
    pub fn with_corruption_at(mut self, op: u64, device: usize, stripe: u64) -> Self {
        self.corrupt_at_op.push((op, device, stripe));
        self
    }

    /// Schedule a silent corruption on an existing plan.
    pub fn add_corruption_at(&mut self, op: u64, device: usize, stripe: u64) {
        self.corrupt_at_op.push((op, device, stripe));
    }

    /// Drain corruption events whose scheduled op has been reached.
    /// Arrays call this right after [`Self::record_op`] and flip bytes in
    /// (or mark as corrupted) each returned (device, stripe).
    pub fn take_due_corruptions(&mut self) -> Vec<(usize, u64)> {
        let mut due = Vec::new();
        self.corrupt_at_op.retain(|&(op, device, stripe)| {
            if op <= self.ops {
                due.push((device, stripe));
                false
            } else {
                true
            }
        });
        due
    }

    /// Corruption events not yet injected.
    pub fn pending_corruptions(&self) -> usize {
        self.corrupt_at_op.len()
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Advance the operation counter; returns devices whose scheduled
    /// failure op has now been reached.
    pub fn record_op(&mut self) -> Vec<usize> {
        self.ops += 1;
        let due: Vec<usize> =
            self.fail_at_op.iter().filter(|&(_, &op)| op <= self.ops).map(|(&d, _)| d).collect();
        for d in &due {
            self.fail_at_op.remove(d);
        }
        due
    }

    /// Deterministic draw: does this read raise a transient error?
    pub fn transient_read_fires(&mut self) -> bool {
        if self.transient_read_prob <= 0.0 {
            return false;
        }
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.transient_read_prob
    }

    /// Whether (device, stripe) has an outstanding latent sector error.
    pub fn is_latent(&self, device: usize, stripe: u64) -> bool {
        self.latent_sectors.contains(&(device, stripe))
    }

    /// Clear a latent sector error (the chunk was rewritten).
    pub fn clear_latent(&mut self, device: usize, stripe: u64) {
        self.latent_sectors.remove(&(device, stripe));
    }

    /// Outstanding latent sector errors.
    pub fn latent_count(&self) -> usize {
        self.latent_sectors.len()
    }

    /// Outstanding latent sector errors, as (device, stripe) pairs. The
    /// rebuild driver uses this to order its sweep most-exposed-first.
    pub fn latent_entries(&self) -> impl Iterator<Item = &(usize, u64)> + '_ {
        self.latent_sectors.iter()
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: deterministic, cheap, good enough for fault draws.
        self.rng_state = self.rng_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_fails_at_scheduled_op() {
        let mut p = FaultPlan::new(1).fail_device_at(2, 3);
        assert!(p.record_op().is_empty());
        assert!(p.record_op().is_empty());
        assert_eq!(p.record_op(), vec![2]);
        assert!(p.record_op().is_empty(), "failure fires once");
    }

    #[test]
    fn transient_draw_is_deterministic() {
        let draws = |seed| {
            let mut p = FaultPlan::new(seed).with_transient_read_prob(0.3);
            (0..64).map(|_| p.transient_read_fires()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
        let fired = draws(7).iter().filter(|&&b| b).count();
        assert!(fired > 5 && fired < 40, "p=0.3 over 64 draws fired {fired}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut p = FaultPlan::new(3);
        assert!((0..100).all(|_| !p.transient_read_fires()));
    }

    #[test]
    fn latent_sectors_clear_on_rewrite() {
        let mut p = FaultPlan::new(0).with_latent_sector(1, 42);
        assert!(p.is_latent(1, 42));
        assert!(!p.is_latent(1, 43));
        p.clear_latent(1, 42);
        assert!(!p.is_latent(1, 42));
        assert_eq!(p.latent_count(), 0);
    }

    #[test]
    fn health_reports_failed_device() {
        assert_eq!(ArrayHealth::Healthy.failed_device(), None);
        assert_eq!(ArrayHealth::Degraded { device: 2 }.failed_device(), Some(2));
        assert_eq!(ArrayHealth::Rebuilding { device: 1 }.failed_device(), Some(1));
    }

    #[test]
    fn read_outcome_byte_accounting() {
        let normal = ReadOutcome::normal(65536);
        assert_eq!(normal.device_bytes_read, 65536);
        let recon = ReadOutcome::reconstructed(65536, 3);
        assert_eq!(recon.device_bytes_read, 3 * 65536);
        assert_eq!(recon.mode, ReadMode::Reconstructed);
        let healed = ReadOutcome::healed(65536, 3);
        assert_eq!(healed.device_bytes_read, 4 * 65536, "bad chunk + survivors");
        assert_eq!(healed.mode, ReadMode::Healed);
    }

    #[test]
    fn corruption_fires_at_scheduled_op() {
        let mut p = FaultPlan::new(5).with_corruption_at(2, 1, 10).with_corruption_at(4, 3, 20);
        assert_eq!(p.pending_corruptions(), 2);
        p.record_op();
        assert!(p.take_due_corruptions().is_empty());
        p.record_op();
        assert_eq!(p.take_due_corruptions(), vec![(1, 10)]);
        assert_eq!(p.pending_corruptions(), 1);
        p.record_op();
        p.record_op();
        assert_eq!(p.take_due_corruptions(), vec![(3, 20)]);
        assert!(p.take_due_corruptions().is_empty(), "each event fires once");
    }

    #[test]
    fn correlated_failures_fire_together() {
        let mut p = FaultPlan::new(9).fail_devices_at(&[1, 3], 2);
        assert!(p.record_op().is_empty());
        assert_eq!(p.record_op(), vec![1, 3], "both devices down in one op");
        assert!(p.record_op().is_empty());
    }

    #[test]
    fn disk_state_summary() {
        use DiskState::*;
        assert_eq!(ArrayHealth::from_disk_states(&[Healthy, Healthy]), ArrayHealth::Healthy);
        assert_eq!(
            ArrayHealth::from_disk_states(&[Healthy, Draining]),
            ArrayHealth::Healthy,
            "draining is planned, not a fault"
        );
        assert_eq!(
            ArrayHealth::from_disk_states(&[Healthy, Failed, Failed]),
            ArrayHealth::Degraded { device: 1 }
        );
        assert_eq!(
            ArrayHealth::from_disk_states(&[Failed, Rebuilding]),
            ArrayHealth::Rebuilding { device: 1 }
        );
        assert!(Failed.is_erased() && Rebuilding.is_erased());
        assert!(!Healthy.is_erased() && !Draining.is_erased());
    }

    #[test]
    fn scrub_step_paused_marker() {
        let step = ScrubStep::paused();
        assert!(step.paused_for_rebuild);
        assert_eq!(step.stripes_scrubbed, 0);
        assert!(!step.pass_complete);
    }
}
