//! Deterministic fault injection for the array layer.
//!
//! A [`FaultPlan`] is a seedable schedule of device failures, transient
//! read errors, and latent sector errors. It is consulted by the array
//! implementations on every operation, so a given seed + schedule replays
//! the exact same fault sequence — the property the recovery tests and the
//! fault-scenario simulator rely on.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Health of the array as seen by the layer above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayHealth {
    /// All devices operational.
    Healthy,
    /// One device failed; reads to it are served by reconstruction.
    Degraded { device: usize },
    /// A spare is being rebuilt for the failed device.
    Rebuilding { device: usize },
}

impl ArrayHealth {
    /// The failed device, if any.
    pub fn failed_device(&self) -> Option<usize> {
        match self {
            ArrayHealth::Healthy => None,
            ArrayHealth::Degraded { device } | ArrayHealth::Rebuilding { device } => Some(*device),
        }
    }
}

/// How a read was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Directly from the chunk's home device.
    Normal,
    /// Reconstructed by XOR-ing the stripe's survivors.
    Reconstructed,
}

/// Result of a successful chunk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// How the read was served.
    pub mode: ReadMode,
    /// Bytes physically read from devices to serve it (one chunk when
    /// normal; the surviving `n-1` chunks when reconstructed).
    pub device_bytes_read: u64,
}

impl ReadOutcome {
    /// A direct read of one chunk.
    pub fn normal(chunk_bytes: u64) -> Self {
        Self { mode: ReadMode::Normal, device_bytes_read: chunk_bytes }
    }

    /// A reconstruction from `survivors` chunks.
    pub fn reconstructed(chunk_bytes: u64, survivors: usize) -> Self {
        Self { mode: ReadMode::Reconstructed, device_bytes_read: chunk_bytes * survivors as u64 }
    }
}

/// Progress of an incremental rebuild sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildProgress {
    /// Stripes rebuilt so far.
    pub stripes_done: u64,
    /// Stripes the sweep will visit in total.
    pub stripes_total: u64,
    /// Whether the sweep has finished and the array is healthy again.
    pub complete: bool,
}

/// Deterministic, seedable fault schedule.
///
/// Operations are counted by the array (`record_op` on every chunk write
/// and read); schedules are expressed against that counter so the same
/// plan replayed over the same workload injects the same faults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed for the transient-error draw.
    seed: u64,
    /// Device → operation index at which it fails permanently.
    fail_at_op: BTreeMap<usize, u64>,
    /// Probability in [0, 1] that any single chunk read raises a
    /// transient error (retry succeeds).
    transient_read_prob: f64,
    /// (device, stripe) pairs whose media is unreadable until rewritten.
    latent_sectors: BTreeSet<(usize, u64)>,
    /// Operations observed so far.
    ops: u64,
    /// Deterministic RNG state (derived from `seed`).
    rng_state: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, rng_state: seed ^ 0x9e3779b97f4a7c15, ..Default::default() }
    }

    /// Schedule `device` to fail permanently once `op` operations have
    /// been observed.
    pub fn fail_device_at(mut self, device: usize, op: u64) -> Self {
        self.fail_at_op.insert(device, op);
        self
    }

    /// Make every chunk read raise a transient error with probability `p`.
    pub fn with_transient_read_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.transient_read_prob = p;
        self
    }

    /// Mark (device, stripe) as a latent sector error: direct reads of
    /// that chunk fail until it is rewritten (e.g. by a rebuild).
    pub fn with_latent_sector(mut self, device: usize, stripe: u64) -> Self {
        self.add_latent_sector(device, stripe);
        self
    }

    /// Inject a latent sector error on an existing plan (media degrades
    /// after the data was written).
    pub fn add_latent_sector(&mut self, device: usize, stripe: u64) {
        self.latent_sectors.insert((device, stripe));
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Advance the operation counter; returns devices whose scheduled
    /// failure op has now been reached.
    pub fn record_op(&mut self) -> Vec<usize> {
        self.ops += 1;
        let due: Vec<usize> =
            self.fail_at_op.iter().filter(|&(_, &op)| op <= self.ops).map(|(&d, _)| d).collect();
        for d in &due {
            self.fail_at_op.remove(d);
        }
        due
    }

    /// Deterministic draw: does this read raise a transient error?
    pub fn transient_read_fires(&mut self) -> bool {
        if self.transient_read_prob <= 0.0 {
            return false;
        }
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.transient_read_prob
    }

    /// Whether (device, stripe) has an outstanding latent sector error.
    pub fn is_latent(&self, device: usize, stripe: u64) -> bool {
        self.latent_sectors.contains(&(device, stripe))
    }

    /// Clear a latent sector error (the chunk was rewritten).
    pub fn clear_latent(&mut self, device: usize, stripe: u64) {
        self.latent_sectors.remove(&(device, stripe));
    }

    /// Outstanding latent sector errors.
    pub fn latent_count(&self) -> usize {
        self.latent_sectors.len()
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: deterministic, cheap, good enough for fault draws.
        self.rng_state = self.rng_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_fails_at_scheduled_op() {
        let mut p = FaultPlan::new(1).fail_device_at(2, 3);
        assert!(p.record_op().is_empty());
        assert!(p.record_op().is_empty());
        assert_eq!(p.record_op(), vec![2]);
        assert!(p.record_op().is_empty(), "failure fires once");
    }

    #[test]
    fn transient_draw_is_deterministic() {
        let draws = |seed| {
            let mut p = FaultPlan::new(seed).with_transient_read_prob(0.3);
            (0..64).map(|_| p.transient_read_fires()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
        let fired = draws(7).iter().filter(|&&b| b).count();
        assert!(fired > 5 && fired < 40, "p=0.3 over 64 draws fired {fired}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut p = FaultPlan::new(3);
        assert!((0..100).all(|_| !p.transient_read_fires()));
    }

    #[test]
    fn latent_sectors_clear_on_rewrite() {
        let mut p = FaultPlan::new(0).with_latent_sector(1, 42);
        assert!(p.is_latent(1, 42));
        assert!(!p.is_latent(1, 43));
        p.clear_latent(1, 42);
        assert!(!p.is_latent(1, 42));
        assert_eq!(p.latent_count(), 0);
    }

    #[test]
    fn health_reports_failed_device() {
        assert_eq!(ArrayHealth::Healthy.failed_device(), None);
        assert_eq!(ArrayHealth::Degraded { device: 2 }.failed_device(), Some(2));
        assert_eq!(ArrayHealth::Rebuilding { device: 1 }.failed_device(), Some(1));
    }

    #[test]
    fn read_outcome_byte_accounting() {
        let normal = ReadOutcome::normal(65536);
        assert_eq!(normal.device_bytes_read, 65536);
        let recon = ReadOutcome::reconstructed(65536, 3);
        assert_eq!(recon.device_bytes_read, 3 * 65536);
        assert_eq!(recon.mode, ReadMode::Reconstructed);
    }
}
