//! Per-device and array-wide traffic accounting.

use serde::{Deserialize, Serialize};

/// Byte counters for one member device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCounters {
    /// Bytes of live payload (user writes and GC rewrites).
    pub data_bytes: u64,
    /// Bytes of zero padding absorbed.
    pub pad_bytes: u64,
    /// Bytes of parity chunks written.
    pub parity_bytes: u64,
    /// Number of chunk writes (any kind) issued to this device.
    pub chunk_writes: u64,
}

impl DeviceCounters {
    /// Total bytes physically written to the device.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.pad_bytes + self.parity_bytes
    }
}

/// Aggregated view across all devices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArrayStats {
    /// Per-device counters, indexed by device id.
    pub devices: Vec<DeviceCounters>,
    /// Count of chunks that contained any padding.
    pub padded_chunks: u64,
    /// Count of completely full (pad-free) chunks.
    pub full_chunks: u64,
    /// Number of complete stripes closed (parity generated).
    pub stripes_completed: u64,
    /// Reads served by parity reconstruction while a device was failed
    /// (or a latent sector error hid the direct copy).
    pub degraded_reads: u64,
    /// Bytes read from surviving devices to serve degraded reads.
    pub reconstructed_bytes: u64,
    /// Bytes read from survivors by the rebuild sweep.
    pub rebuild_read_bytes: u64,
    /// Bytes written to the replacement device by the rebuild sweep.
    pub rebuild_write_bytes: u64,
    /// Chunks restored onto the replacement device.
    pub rebuilt_chunks: u64,
}

impl ArrayStats {
    /// Create stats for an array of `n` devices.
    pub fn new(n: usize) -> Self {
        Self { devices: vec![DeviceCounters::default(); n], ..Default::default() }
    }

    /// Total payload bytes across devices.
    pub fn data_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.data_bytes).sum()
    }

    /// Total padding bytes across devices.
    pub fn pad_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.pad_bytes).sum()
    }

    /// Total parity bytes across devices.
    pub fn parity_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.parity_bytes).sum()
    }

    /// Total bytes physically written (data + pad + parity).
    pub fn total_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.total_bytes()).sum()
    }

    /// Fraction of non-parity bytes that are padding.
    pub fn pad_fraction(&self) -> f64 {
        let data = self.data_bytes() + self.pad_bytes();
        if data == 0 {
            return 0.0;
        }
        self.pad_bytes() as f64 / data as f64
    }

    /// Total bytes moved by the rebuild sweep (reads + writes).
    pub fn rebuild_bytes(&self) -> u64 {
        self.rebuild_read_bytes + self.rebuild_write_bytes
    }

    /// Coefficient of variation of per-device total bytes (0 = perfectly
    /// balanced). Useful to confirm the rotation spreads load.
    pub fn device_imbalance(&self) -> f64 {
        let totals: Vec<f64> = self.devices.iter().map(|d| d.total_bytes() as f64).collect();
        let n = totals.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = totals.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = ArrayStats::new(2);
        s.devices[0].data_bytes = 100;
        s.devices[0].pad_bytes = 10;
        s.devices[1].parity_bytes = 50;
        assert_eq!(s.data_bytes(), 100);
        assert_eq!(s.pad_bytes(), 10);
        assert_eq!(s.parity_bytes(), 50);
        assert_eq!(s.total_bytes(), 160);
        assert!((s.pad_fraction() - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_zero_when_equal() {
        let mut s = ArrayStats::new(3);
        for d in &mut s.devices {
            d.data_bytes = 77;
        }
        assert!(s.device_imbalance() < 1e-12);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut s = ArrayStats::new(2);
        s.devices[0].data_bytes = 100;
        s.devices[1].data_bytes = 0;
        assert!(s.device_imbalance() > 0.9);
    }

    #[test]
    fn empty_stats_no_nan() {
        let s = ArrayStats::new(0);
        assert_eq!(s.pad_fraction(), 0.0);
        assert_eq!(s.device_imbalance(), 0.0);
    }
}
