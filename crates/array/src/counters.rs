//! Per-device and array-wide traffic accounting.

use crate::fault::ScrubStep;
use serde::{Deserialize, Serialize};

/// Byte counters for one member device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCounters {
    /// Bytes of live payload (user writes and GC rewrites).
    pub data_bytes: u64,
    /// Bytes of zero padding absorbed.
    pub pad_bytes: u64,
    /// Bytes of parity chunks written.
    pub parity_bytes: u64,
    /// Number of chunk writes (any kind) issued to this device.
    pub chunk_writes: u64,
}

impl DeviceCounters {
    /// Total bytes physically written to the device.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.pad_bytes + self.parity_bytes
    }
}

/// Aggregated view across all devices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArrayStats {
    /// Per-device counters, indexed by device id.
    pub devices: Vec<DeviceCounters>,
    /// Count of chunks that contained any padding.
    pub padded_chunks: u64,
    /// Count of completely full (pad-free) chunks.
    pub full_chunks: u64,
    /// Number of complete stripes closed (parity generated).
    pub stripes_completed: u64,
    /// Reads served by parity reconstruction while a device was failed
    /// (or a latent sector error hid the direct copy).
    pub degraded_reads: u64,
    /// Bytes read from surviving devices to serve degraded reads.
    pub reconstructed_bytes: u64,
    /// Bytes read from survivors by the rebuild sweep.
    pub rebuild_read_bytes: u64,
    /// Bytes written to the replacement device by the rebuild sweep.
    pub rebuild_write_bytes: u64,
    /// Chunks restored onto the replacement device.
    pub rebuilt_chunks: u64,
    /// Chunks whose checksum the scrub driver verified.
    #[serde(default)]
    pub chunks_scrubbed: u64,
    /// Bytes read off devices by the scrub driver.
    #[serde(default)]
    pub scrub_read_bytes: u64,
    /// Checksum mismatches detected (on read or by scrub).
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Mismatched chunks repaired from survivors and rewritten in place.
    #[serde(default)]
    pub corruptions_healed: u64,
    /// Mismatched chunks that could not be repaired.
    #[serde(default)]
    pub corruptions_unrecoverable: u64,
    /// Bytes written back by heal rewrites (mismatch + latent repairs).
    #[serde(default)]
    pub heal_write_bytes: u64,
    /// Sum over detections of ops elapsed between corruption injection
    /// and detection. Divide by `corruptions_detected` for the mean.
    #[serde(default)]
    pub detection_latency_ops: u64,
    /// Latent sector errors repaired by the scrub driver (rewritten
    /// before they could pair with a device failure).
    #[serde(default)]
    pub scrub_latent_repaired: u64,
    /// Bytes read off a draining device by the proactive evacuation sweep.
    #[serde(default)]
    pub drain_read_bytes: u64,
    /// Bytes written to the replacement by the drain sweep.
    #[serde(default)]
    pub drain_write_bytes: u64,
    /// Chunks copied off a draining device.
    #[serde(default)]
    pub drained_chunks: u64,
    /// Payload bytes memcpy'd between RAM buffers inside the array layer
    /// (parity-accumulator seeds, borrowed-slice ownership transfers) —
    /// *not* modeled device I/O. The zero-copy work (PR 7) exists to drive
    /// this toward the single unavoidable copy per stripe; the `hotpath`
    /// bench section tracks it per host write.
    #[serde(default)]
    pub copy_bytes: u64,
}

impl ArrayStats {
    /// Create stats for an array of `n` devices.
    pub fn new(n: usize) -> Self {
        Self { devices: vec![DeviceCounters::default(); n], ..Default::default() }
    }

    /// Total payload bytes across devices.
    pub fn data_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.data_bytes).sum()
    }

    /// Total padding bytes across devices.
    pub fn pad_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.pad_bytes).sum()
    }

    /// Total parity bytes across devices.
    pub fn parity_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.parity_bytes).sum()
    }

    /// Total bytes physically written (data + pad + parity).
    pub fn total_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.total_bytes()).sum()
    }

    /// Fraction of non-parity bytes that are padding.
    pub fn pad_fraction(&self) -> f64 {
        let data = self.data_bytes() + self.pad_bytes();
        if data == 0 {
            return 0.0;
        }
        self.pad_bytes() as f64 / data as f64
    }

    /// Total bytes moved by the rebuild sweep (reads + writes).
    pub fn rebuild_bytes(&self) -> u64 {
        self.rebuild_read_bytes + self.rebuild_write_bytes
    }

    /// Fold one scrub step's deltas into the cumulative totals.
    pub fn fold_scrub_step(&mut self, step: &ScrubStep) {
        self.chunks_scrubbed += step.chunks_scrubbed;
        self.scrub_read_bytes += step.read_bytes;
        self.corruptions_detected += step.detected;
        self.corruptions_healed += step.healed;
        self.corruptions_unrecoverable += step.unrecoverable;
        self.heal_write_bytes += step.heal_write_bytes;
        self.detection_latency_ops += step.detection_latency_ops;
        self.scrub_latent_repaired += step.latent_repaired;
    }

    /// Mean ops between corruption injection and detection (0 when
    /// nothing was detected).
    pub fn mean_detection_latency_ops(&self) -> f64 {
        if self.corruptions_detected == 0 {
            return 0.0;
        }
        self.detection_latency_ops as f64 / self.corruptions_detected as f64
    }

    /// Fold another array's totals into this one, for array-wide rollups
    /// across independent shards: `other`'s devices are *appended* (each
    /// shard owns a disjoint physical array, so device ids don't overlap)
    /// and every scalar counter sums. The exhaustive destructure makes a
    /// newly added counter a compile error here rather than a silently
    /// missing term in merged reports.
    pub fn merge_from(&mut self, other: &ArrayStats) {
        let ArrayStats {
            devices,
            padded_chunks,
            full_chunks,
            stripes_completed,
            degraded_reads,
            reconstructed_bytes,
            rebuild_read_bytes,
            rebuild_write_bytes,
            rebuilt_chunks,
            chunks_scrubbed,
            scrub_read_bytes,
            corruptions_detected,
            corruptions_healed,
            corruptions_unrecoverable,
            heal_write_bytes,
            detection_latency_ops,
            scrub_latent_repaired,
            drain_read_bytes,
            drain_write_bytes,
            drained_chunks,
            copy_bytes,
        } = other;
        self.devices.extend_from_slice(devices);
        self.padded_chunks += padded_chunks;
        self.full_chunks += full_chunks;
        self.stripes_completed += stripes_completed;
        self.degraded_reads += degraded_reads;
        self.reconstructed_bytes += reconstructed_bytes;
        self.rebuild_read_bytes += rebuild_read_bytes;
        self.rebuild_write_bytes += rebuild_write_bytes;
        self.rebuilt_chunks += rebuilt_chunks;
        self.chunks_scrubbed += chunks_scrubbed;
        self.scrub_read_bytes += scrub_read_bytes;
        self.corruptions_detected += corruptions_detected;
        self.corruptions_healed += corruptions_healed;
        self.corruptions_unrecoverable += corruptions_unrecoverable;
        self.heal_write_bytes += heal_write_bytes;
        self.detection_latency_ops += detection_latency_ops;
        self.scrub_latent_repaired += scrub_latent_repaired;
        self.drain_read_bytes += drain_read_bytes;
        self.drain_write_bytes += drain_write_bytes;
        self.drained_chunks += drained_chunks;
        self.copy_bytes += copy_bytes;
    }

    /// Coefficient of variation of per-device total bytes (0 = perfectly
    /// balanced). Useful to confirm the rotation spreads load.
    pub fn device_imbalance(&self) -> f64 {
        let totals: Vec<f64> = self.devices.iter().map(|d| d.total_bytes() as f64).collect();
        let n = totals.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = totals.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = ArrayStats::new(2);
        s.devices[0].data_bytes = 100;
        s.devices[0].pad_bytes = 10;
        s.devices[1].parity_bytes = 50;
        assert_eq!(s.data_bytes(), 100);
        assert_eq!(s.pad_bytes(), 10);
        assert_eq!(s.parity_bytes(), 50);
        assert_eq!(s.total_bytes(), 160);
        assert!((s.pad_fraction() - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_zero_when_equal() {
        let mut s = ArrayStats::new(3);
        for d in &mut s.devices {
            d.data_bytes = 77;
        }
        assert!(s.device_imbalance() < 1e-12);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut s = ArrayStats::new(2);
        s.devices[0].data_bytes = 100;
        s.devices[1].data_bytes = 0;
        assert!(s.device_imbalance() > 0.9);
    }

    #[test]
    fn empty_stats_no_nan() {
        let s = ArrayStats::new(0);
        assert_eq!(s.pad_fraction(), 0.0);
        assert_eq!(s.device_imbalance(), 0.0);
        assert_eq!(s.mean_detection_latency_ops(), 0.0);
    }

    #[test]
    fn merge_appends_devices_and_sums_counters() {
        let mut a = ArrayStats::new(2);
        a.devices[0].data_bytes = 10;
        a.padded_chunks = 1;
        a.stripes_completed = 3;
        let mut b = ArrayStats::new(3);
        b.devices[2].parity_bytes = 7;
        b.padded_chunks = 2;
        b.copy_bytes = 99;
        a.merge_from(&b);
        assert_eq!(a.devices.len(), 5, "shards own disjoint arrays");
        assert_eq!(a.devices[4].parity_bytes, 7);
        assert_eq!(a.padded_chunks, 3);
        assert_eq!(a.stripes_completed, 3);
        assert_eq!(a.copy_bytes, 99);
        assert_eq!(a.total_bytes(), 17);
    }

    #[test]
    fn detection_latency_mean() {
        let mut s = ArrayStats::new(1);
        s.corruptions_detected = 4;
        s.detection_latency_ops = 100;
        assert!((s.mean_detection_latency_ops() - 25.0).abs() < 1e-12);
    }
}
