//! Array geometry configuration.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Redundancy scheme implied by a geometry's parity count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodingScheme {
    /// One rotating XOR parity chunk per stripe (classic RAID-5).
    Raid5,
    /// Two Reed-Solomon parity chunks (P + Q, classic RAID-6).
    Raid6,
    /// General Reed-Solomon `k + m` with `m ≥ 3`.
    ReedSolomon,
}

impl CodingScheme {
    /// Short tag for report rows ("raid5", "raid6", "rs").
    pub fn tag(&self) -> &'static str {
        match self {
            CodingScheme::Raid5 => "raid5",
            CodingScheme::Raid6 => "raid6",
            CodingScheme::ReedSolomon => "rs",
        }
    }
}

/// Geometry of the SSD array.
///
/// Defaults mirror the paper's setup (§4.1): four SSDs under mdraid RAID-5
/// with a 64 KiB chunk (mdraid's default chunk size). `parity_devices`
/// generalizes the redundancy: 1 keeps the original XOR RAID-5, 2 is
/// Reed-Solomon RAID-6 (P+Q), and any `m` up to `num_devices - 2` yields
/// a general `k + m` code that survives m simultaneous device losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of member devices (data + rotating parity). Needs at least
    /// `parity_devices + 2`.
    pub num_devices: usize,
    /// Chunk size in bytes — the minimum write unit of the array.
    pub chunk_bytes: u64,
    /// Parity chunks per stripe (`m`). 1 = RAID-5 XOR, 2 = RAID-6 P+Q,
    /// 3+ = general Reed-Solomon.
    pub parity_devices: usize,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self { num_devices: 4, chunk_bytes: 64 * 1024, parity_devices: 1 }
    }
}

impl ArrayConfig {
    /// Create a single-parity (RAID-5) config, validating the geometry.
    pub fn new(num_devices: usize, chunk_bytes: u64) -> Self {
        Self::with_parity(num_devices, 1, chunk_bytes)
    }

    /// Create a `k + m` config with `m = parity_devices`, validating the
    /// geometry.
    pub fn with_parity(num_devices: usize, parity_devices: usize, chunk_bytes: u64) -> Self {
        let cfg = Self { num_devices, chunk_bytes, parity_devices };
        cfg.validate();
        cfg
    }

    /// Panic if the geometry is not a valid layout.
    pub fn validate(&self) {
        assert!(self.parity_devices >= 1, "at least one parity chunk per stripe");
        assert!(
            self.num_devices >= self.parity_devices + 2,
            "need at least two data columns: {} devices with {} parity",
            self.num_devices,
            self.parity_devices
        );
        assert!(self.num_devices <= 256, "GF(256) limits the array to 256 devices");
        assert!(self.chunk_bytes > 0, "chunk size must be positive");
    }

    /// Number of data chunks per stripe (`k`).
    pub fn data_columns(&self) -> usize {
        self.num_devices - self.parity_devices
    }

    /// Bytes of user-visible capacity per stripe.
    pub fn stripe_data_bytes(&self) -> u64 {
        self.data_columns() as u64 * self.chunk_bytes
    }

    /// Parity overhead ratio: parity bytes per data byte.
    pub fn parity_overhead(&self) -> f64 {
        self.parity_devices as f64 / self.data_columns() as f64
    }

    /// Simultaneous device losses the geometry tolerates (`m`).
    pub fn fault_tolerance(&self) -> usize {
        self.parity_devices
    }

    /// The derived geometry summary (scheme, k, m, chunk layout).
    pub fn geometry(&self) -> ArrayGeometry {
        ArrayGeometry {
            scheme: match self.parity_devices {
                1 => CodingScheme::Raid5,
                2 => CodingScheme::Raid6,
                _ => CodingScheme::ReedSolomon,
            },
            data_columns: self.data_columns(),
            parity_columns: self.parity_devices,
            chunk_bytes: self.chunk_bytes,
        }
    }
}

/// A geometry described as code parameters: the scheme, `k` data columns,
/// `m` parity columns, and the chunk size. This is the axis value the
/// scenario runners and `sweep_grid` carry — `ArrayConfig` is the same
/// information keyed by device count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Redundancy scheme (derived from `parity_columns`).
    pub scheme: CodingScheme,
    /// Data chunks per stripe (`k`).
    pub data_columns: usize,
    /// Parity chunks per stripe (`m`).
    pub parity_columns: usize,
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
}

impl ArrayGeometry {
    /// Geometry for `k` data + `m` parity columns at the default 64 KiB
    /// chunk.
    pub fn new(data_columns: usize, parity_columns: usize) -> Self {
        ArrayConfig::with_parity(data_columns + parity_columns, parity_columns, 64 * 1024)
            .geometry()
    }

    /// The equivalent `ArrayConfig` (devices = k + m).
    pub fn config(&self) -> ArrayConfig {
        ArrayConfig::with_parity(
            self.data_columns + self.parity_columns,
            self.parity_columns,
            self.chunk_bytes,
        )
    }

    /// The `"k+m"` label used on report rows and CLI flags ("3+1",
    /// "6+2").
    pub fn label(&self) -> String {
        format!("{}+{}", self.data_columns, self.parity_columns)
    }
}

impl fmt::Display for ArrayGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl FromStr for ArrayGeometry {
    type Err = String;

    /// Parse a `"k+m"` geometry label ("3+1", "6+2").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (k, m) = s
            .split_once('+')
            .ok_or_else(|| format!("geometry must be k+m (e.g. 6+2), got {s:?}"))?;
        let k: usize = k.trim().parse().map_err(|_| format!("bad data-column count in {s:?}"))?;
        let m: usize = m.trim().parse().map_err(|_| format!("bad parity-column count in {s:?}"))?;
        if k < 2 || m < 1 || k + m > 256 {
            return Err(format!("geometry {s:?} out of range (need k >= 2, m >= 1, k+m <= 256)"));
        }
        Ok(ArrayGeometry::new(k, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = ArrayConfig::default();
        assert_eq!(c.num_devices, 4);
        assert_eq!(c.chunk_bytes, 64 * 1024);
        assert_eq!(c.parity_devices, 1);
        assert_eq!(c.data_columns(), 3);
        assert_eq!(c.stripe_data_bytes(), 192 * 1024);
        assert_eq!(c.geometry().scheme, CodingScheme::Raid5);
        assert_eq!(c.geometry().label(), "3+1");
    }

    #[test]
    fn parity_overhead() {
        assert!((ArrayConfig::new(4, 65536).parity_overhead() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ArrayConfig::new(5, 65536).parity_overhead() - 0.25).abs() < 1e-12);
        assert!(
            (ArrayConfig::with_parity(8, 2, 65536).parity_overhead() - 2.0 / 6.0).abs() < 1e-12
        );
    }

    #[test]
    fn raid6_geometry() {
        let c = ArrayConfig::with_parity(8, 2, 65536);
        assert_eq!(c.data_columns(), 6);
        assert_eq!(c.fault_tolerance(), 2);
        let g = c.geometry();
        assert_eq!(g.scheme, CodingScheme::Raid6);
        assert_eq!(g.label(), "6+2");
        assert_eq!(g.config(), c);
    }

    #[test]
    fn geometry_label_round_trips() {
        for s in ["3+1", "6+2", "4+2", "10+4"] {
            let g: ArrayGeometry = s.parse().unwrap();
            assert_eq!(g.label(), s);
            assert_eq!(g.to_string(), s);
        }
        assert!("6".parse::<ArrayGeometry>().is_err());
        assert!("1+1".parse::<ArrayGeometry>().is_err());
        assert!("x+2".parse::<ArrayGeometry>().is_err());
    }

    #[test]
    #[should_panic]
    fn too_few_devices_rejected() {
        ArrayConfig::new(2, 65536);
    }

    #[test]
    #[should_panic]
    fn too_much_parity_rejected() {
        ArrayConfig::with_parity(4, 3, 65536);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        ArrayConfig::new(4, 0);
    }
}
