//! Array geometry configuration.

use serde::{Deserialize, Serialize};

/// Geometry of the RAID-5 SSD array.
///
/// Defaults mirror the paper's setup (§4.1): four SSDs under mdraid RAID-5
/// with a 64 KiB chunk (mdraid's default chunk size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of member devices (data + rotating parity). RAID-5 needs ≥ 3.
    pub num_devices: usize,
    /// Chunk size in bytes — the minimum write unit of the array.
    pub chunk_bytes: u64,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self { num_devices: 4, chunk_bytes: 64 * 1024 }
    }
}

impl ArrayConfig {
    /// Create a config, validating the geometry.
    pub fn new(num_devices: usize, chunk_bytes: u64) -> Self {
        let cfg = Self { num_devices, chunk_bytes };
        cfg.validate();
        cfg
    }

    /// Panic if the geometry is not a valid RAID-5 layout.
    pub fn validate(&self) {
        assert!(self.num_devices >= 3, "RAID-5 requires at least 3 devices");
        assert!(self.chunk_bytes > 0, "chunk size must be positive");
    }

    /// Number of data chunks per stripe (one device per stripe holds parity).
    pub fn data_columns(&self) -> usize {
        self.num_devices - 1
    }

    /// Bytes of user-visible capacity per stripe.
    pub fn stripe_data_bytes(&self) -> u64 {
        self.data_columns() as u64 * self.chunk_bytes
    }

    /// Parity overhead ratio: parity bytes per data byte.
    pub fn parity_overhead(&self) -> f64 {
        1.0 / self.data_columns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = ArrayConfig::default();
        assert_eq!(c.num_devices, 4);
        assert_eq!(c.chunk_bytes, 64 * 1024);
        assert_eq!(c.data_columns(), 3);
        assert_eq!(c.stripe_data_bytes(), 192 * 1024);
    }

    #[test]
    fn parity_overhead() {
        assert!((ArrayConfig::new(4, 65536).parity_overhead() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ArrayConfig::new(5, 65536).parity_overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn too_few_devices_rejected() {
        ArrayConfig::new(2, 65536);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        ArrayConfig::new(4, 0);
    }
}
