//! Runtime CPU-feature detection shared by every SIMD kernel.
//!
//! The CRC32C module (PR 5) and the parity XOR kernels each need to know,
//! once, what the CPU offers. This module performs a single probe — cached
//! in a `OnceLock` so hot paths pay one relaxed load — and exposes the
//! result to all of them. The probe also honors the `ADAPT_NO_SIMD`
//! environment variable (any non-empty value other than `0`), which forces
//! every kernel onto its scalar/software reference path; CI uses it to keep
//! the fallbacks covered on hardware that would otherwise never run them.
//!
//! The env knob is read exactly once, at the first probe: flipping
//! `ADAPT_NO_SIMD` after any kernel has dispatched has no effect for the
//! remainder of the process. Tests that must exercise a specific tier call
//! the explicitly-named kernel functions (`crc32c_soft`, `xor_into_scalar`)
//! instead of toggling the environment.
//!
//! `adapt-core` re-exports this module (`adapt_core::cpu_features`) so the
//! policy crate and everything above it share the same probe; the module
//! lives here because the crate dependency graph points upward
//! (`adapt-core` depends on `adapt-array`, not the reverse).

use std::sync::OnceLock;

/// What the running CPU offers the SIMD kernels, after applying the
/// `ADAPT_NO_SIMD` override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// SSE2 128-bit vector XOR (baseline on x86_64, but probed anyway so
    /// the override can clear it).
    pub sse2: bool,
    /// SSSE3 `pshufb` byte shuffles (the GF(256) nibble-table kernels).
    pub ssse3: bool,
    /// SSE4.2 `crc32` instructions.
    pub sse42: bool,
    /// AVX2 256-bit vector XOR.
    pub avx2: bool,
    /// `ADAPT_NO_SIMD` was set: every flag above was forced off.
    pub forced_scalar: bool,
}

impl CpuFeatures {
    /// Short human-readable capability tag, stamped into bench reports so
    /// numbers from different machines are interpretable side by side.
    pub fn summary(&self) -> String {
        if self.forced_scalar {
            return "scalar(ADAPT_NO_SIMD)".to_string();
        }
        let mut tiers = Vec::new();
        if self.avx2 {
            tiers.push("avx2");
        }
        if self.sse42 {
            tiers.push("sse4.2");
        }
        if self.ssse3 {
            tiers.push("ssse3");
        }
        if self.sse2 {
            tiers.push("sse2");
        }
        if tiers.is_empty() {
            return "scalar".to_string();
        }
        tiers.join("+")
    }
}

/// The cached one-time probe. Every SIMD dispatch in the workspace funnels
/// through this.
pub fn get() -> &'static CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    FEATURES.get_or_init(probe)
}

/// Whether `ADAPT_NO_SIMD` requests the scalar paths ("" and "0" mean no).
fn simd_disabled_by_env() -> bool {
    match std::env::var("ADAPT_NO_SIMD") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

#[cfg(target_arch = "x86_64")]
fn probe() -> CpuFeatures {
    if simd_disabled_by_env() {
        return CpuFeatures {
            sse2: false,
            ssse3: false,
            sse42: false,
            avx2: false,
            forced_scalar: true,
        };
    }
    CpuFeatures {
        sse2: std::arch::is_x86_feature_detected!("sse2"),
        ssse3: std::arch::is_x86_feature_detected!("ssse3"),
        sse42: std::arch::is_x86_feature_detected!("sse4.2"),
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        forced_scalar: false,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe() -> CpuFeatures {
    CpuFeatures {
        sse2: false,
        ssse3: false,
        sse42: false,
        avx2: false,
        forced_scalar: simd_disabled_by_env(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_cached_and_consistent() {
        let a = get();
        let b = get();
        assert!(std::ptr::eq(a, b), "OnceLock must hand out the same probe");
    }

    #[test]
    fn summary_reflects_flags() {
        let f =
            CpuFeatures { sse2: true, ssse3: true, sse42: true, avx2: true, forced_scalar: false };
        assert_eq!(f.summary(), "avx2+sse4.2+ssse3+sse2");
        let f = CpuFeatures {
            sse2: true,
            ssse3: false,
            sse42: false,
            avx2: false,
            forced_scalar: false,
        };
        assert_eq!(f.summary(), "sse2");
        let f = CpuFeatures {
            sse2: false,
            ssse3: false,
            sse42: false,
            avx2: false,
            forced_scalar: false,
        };
        assert_eq!(f.summary(), "scalar");
        let f =
            CpuFeatures { sse2: true, ssse3: true, sse42: true, avx2: true, forced_scalar: true };
        assert_eq!(f.summary(), "scalar(ADAPT_NO_SIMD)");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_64_probe_tiers_are_monotone() {
        // AVX2 implies SSE2 on any real CPU; the probe must never report an
        // inverted tier ladder (unless the env override cleared everything).
        let f = get();
        if f.avx2 {
            assert!(f.sse2, "avx2 without sse2 is not a real x86_64");
        }
    }
}
