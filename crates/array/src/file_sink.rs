//! Durable on-disk array backend: per-device segment files.
//!
//! [`FileArraySink`] implements the same [`ArraySink`] trait as
//! [`CountingArray`], so `lss::Engine` runs unchanged on either backend —
//! it delegates all accounting to an inner [`CountingArray`] (location and
//! statistics parity is exact) and additionally persists one fixed-size,
//! CRC32C-framed *chunk record* per chunk write into per-device files.
//!
//! Because the left-symmetric rotation gives every device exactly one
//! chunk per stripe (one data column or one of the `m` parity chunks),
//! each device's record sequence is strictly
//! stripe-ordered: the record for stripe `s` on device `d` lives in file
//! `s / stripes_per_file` at offset `(s % stripes_per_file) ×
//! RECORD_BYTES`. Files are append-only and sealed when full; the
//! superblock (generation counter plus geometry) is replaced atomically
//! via temp-write-and-rename on every seal and checkpoint.
//!
//! The record is an accounting-level digest (addresses, traffic-class byte
//! split, CRC) rather than the 64 KiB payload — the simulator models
//! placement and wear, not contents — but every durability-relevant
//! mechanism is real: volatile write caching, torn tails on power loss,
//! CRC-validated scans, and atomic superblock replacement (see
//! [`crate::media`]).

use crate::config::ArrayConfig;
use crate::counters::ArrayStats;
use crate::crc::crc32c;
use crate::error::{ArrayError, StorageFailure};
use crate::fault::{ArrayHealth, ReadOutcome};
use crate::layout::{ChunkLocation, Raid5Layout};
use crate::media::{atomic_replace, MediaError, MediaFile, PowerBudget, WriteTag};
use crate::sink::{ArraySink, ChunkFlush, CountingArray, RecoveredFlush, SinkReconcile};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bytes per on-disk chunk record.
pub const RECORD_BYTES: u64 = 64;

const RECORD_MAGIC: u32 = 0x4144_434B; // "ADCK"
const RECORD_VERSION: u16 = 1;
const SUPERBLOCK_MAGIC: u32 = 0x4144_5342; // "ADSB"
                                           // v1 had no parity count (RAID-5 implied); v2 stores `m` in the two
                                           // formerly-reserved bytes at offset 6 so any `k + m` geometry round-trips.
const SUPERBLOCK_VERSION: u16 = 2;
const KIND_DATA: u8 = 0;
const KIND_PARITY: u8 = 1;

/// Tuning knobs for the durable backend.
#[derive(Debug, Clone)]
pub struct FileSinkOptions {
    /// Issue real `fdatasync` calls on sync points. Off by default: tests
    /// and crash simulation get durability *semantics* from the media
    /// layer's explicit sync points without paying syscall latency.
    pub fsync: bool,
    /// Stripes (records) per device file before the file is sealed and the
    /// superblock rolls forward.
    pub stripes_per_file: u64,
    /// Power budget shared with the rest of the simulated machine; `None`
    /// means power never fails.
    pub budget: Option<Arc<PowerBudget>>,
}

impl Default for FileSinkOptions {
    fn default() -> Self {
        Self { fsync: false, stripes_per_file: 256, budget: None }
    }
}

/// Typed error for the durable backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileSinkError {
    /// The media layer failed (power loss or real I/O error).
    Media(MediaError),
    /// A record or superblock failed validation during a scan.
    Corrupt { path: PathBuf, offset: u64, detail: String },
    /// The on-disk geometry disagrees with the configured geometry.
    GeometryMismatch { detail: String },
    /// Recovery needed a record that is neither on disk nor replayable
    /// from the WAL tail — pre-checkpoint loss the backend cannot repair.
    MissingRecord { chunk_seq: u64 },
}

impl std::fmt::Display for FileSinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileSinkError::Media(e) => write!(f, "{e}"),
            FileSinkError::Corrupt { path, offset, detail } => {
                write!(f, "corrupt record in {} at byte {offset}: {detail}", path.display())
            }
            FileSinkError::GeometryMismatch { detail } => {
                write!(f, "on-disk geometry mismatch: {detail}")
            }
            FileSinkError::MissingRecord { chunk_seq } => {
                write!(f, "chunk record {chunk_seq} missing and not recoverable from WAL")
            }
        }
    }
}

impl std::error::Error for FileSinkError {}

impl From<MediaError> for FileSinkError {
    fn from(e: MediaError) -> Self {
        FileSinkError::Media(e)
    }
}

impl From<FileSinkError> for ArrayError {
    fn from(e: FileSinkError) -> Self {
        let failure = match e {
            FileSinkError::Media(MediaError::PowerLoss) => StorageFailure::PowerLoss,
            FileSinkError::Media(MediaError::Io(_)) => StorageFailure::Io,
            FileSinkError::Corrupt { .. } => StorageFailure::BadRecord,
            FileSinkError::GeometryMismatch { .. } => StorageFailure::BadRecord,
            FileSinkError::MissingRecord { .. } => StorageFailure::MissingRecord,
        };
        ArrayError::Storage { failure }
    }
}

impl From<MediaError> for ArrayError {
    fn from(e: MediaError) -> Self {
        ArrayError::from(FileSinkError::from(e))
    }
}

impl crate::error::Retryable for MediaError {
    /// Power loss ends the run and I/O errors need operator intervention:
    /// neither resolves by reissuing the same write.
    fn is_retryable(&self) -> bool {
        false
    }
}

impl crate::error::Retryable for FileSinkError {
    fn is_retryable(&self) -> bool {
        match self {
            FileSinkError::Media(e) => crate::error::Retryable::is_retryable(e),
            // Corruption and missing records describe on-disk state: the
            // same scan reproduces the same verdict.
            FileSinkError::Corrupt { .. }
            | FileSinkError::GeometryMismatch { .. }
            | FileSinkError::MissingRecord { .. } => false,
        }
    }
}

/// One fixed-size on-disk record describing a chunk write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkRecord {
    kind: u8,
    group: u8,
    chunk_seq: u64,
    stripe: u64,
    device: u32,
    column: u32,
    seg: u32,
    chunk_in_seg: u32,
    user_bytes: u32,
    gc_bytes: u32,
    shadow_bytes: u32,
    pad_bytes: u32,
    /// CRC32C of the chunk payload when the write arrived through the
    /// borrowed-slice path ([`ArraySink::write_chunk_payload`]); zero for
    /// payload-less accounting writes. Streamed straight off the caller's
    /// slice — the payload is never copied into an interim buffer.
    payload_crc: u32,
}

impl ChunkRecord {
    fn data(flush: &ChunkFlush, loc: &ChunkLocation, chunk_seq: u64, payload_crc: u32) -> Self {
        Self {
            kind: KIND_DATA,
            group: flush.group,
            chunk_seq,
            stripe: loc.stripe,
            device: loc.device as u32,
            column: loc.column as u32,
            seg: flush.seg,
            chunk_in_seg: flush.chunk_in_seg,
            user_bytes: flush.user_bytes as u32,
            gc_bytes: flush.gc_bytes as u32,
            shadow_bytes: flush.shadow_bytes as u32,
            pad_bytes: flush.pad_bytes as u32,
            payload_crc,
        }
    }

    /// The record for parity row `j` of `stripe`; `shard = k + j` names
    /// the parity chunk's shard index (for `m = 1` this equals the old
    /// "column = data_columns" encoding byte-for-byte).
    fn parity(stripe: u64, device: usize, shard: usize) -> Self {
        Self {
            kind: KIND_PARITY,
            group: 0,
            chunk_seq: stripe,
            stripe,
            device: device as u32,
            column: shard as u32,
            seg: 0,
            chunk_in_seg: 0,
            user_bytes: 0,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            payload_crc: 0,
        }
    }

    fn to_flush(self) -> ChunkFlush {
        ChunkFlush {
            user_bytes: self.user_bytes as u64,
            gc_bytes: self.gc_bytes as u64,
            shadow_bytes: self.shadow_bytes as u64,
            pad_bytes: self.pad_bytes as u64,
            group: self.group,
            seg: self.seg,
            chunk_in_seg: self.chunk_in_seg,
        }
    }

    fn encode(&self) -> [u8; RECORD_BYTES as usize] {
        let mut b = [0u8; RECORD_BYTES as usize];
        b[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        b[4..6].copy_from_slice(&RECORD_VERSION.to_le_bytes());
        b[6] = self.kind;
        b[7] = self.group;
        b[8..16].copy_from_slice(&self.chunk_seq.to_le_bytes());
        b[16..24].copy_from_slice(&self.stripe.to_le_bytes());
        b[24..28].copy_from_slice(&self.device.to_le_bytes());
        b[28..32].copy_from_slice(&self.column.to_le_bytes());
        b[32..36].copy_from_slice(&self.seg.to_le_bytes());
        b[36..40].copy_from_slice(&self.chunk_in_seg.to_le_bytes());
        b[40..44].copy_from_slice(&self.user_bytes.to_le_bytes());
        b[44..48].copy_from_slice(&self.gc_bytes.to_le_bytes());
        b[48..52].copy_from_slice(&self.shadow_bytes.to_le_bytes());
        b[52..56].copy_from_slice(&self.pad_bytes.to_le_bytes());
        // Formerly reserved-zero; zero still means "no payload digest".
        b[56..60].copy_from_slice(&self.payload_crc.to_le_bytes());
        let crc = crc32c(&b[..60]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Option<Self> {
        if b.len() < RECORD_BYTES as usize {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        if u32_at(0) != RECORD_MAGIC {
            return None;
        }
        if u16::from_le_bytes(b[4..6].try_into().unwrap()) != RECORD_VERSION {
            return None;
        }
        if crc32c(&b[..60]) != u32_at(60) {
            return None;
        }
        Some(Self {
            kind: b[6],
            group: b[7],
            chunk_seq: u64_at(8),
            stripe: u64_at(16),
            device: u32_at(24),
            column: u32_at(28),
            seg: u32_at(32),
            chunk_in_seg: u32_at(36),
            user_bytes: u32_at(40),
            gc_bytes: u32_at(44),
            shadow_bytes: u32_at(48),
            pad_bytes: u32_at(52),
            payload_crc: u32_at(56),
        })
    }
}

enum Backing {
    /// Normal operation: one open media file per device.
    Active { files: Vec<MediaFile> },
    /// Opened for recovery: the CRC-valid record prefix scanned from each
    /// device, waiting for [`ArraySink::recover_reconcile`].
    Recovering { scanned: Vec<Vec<ChunkRecord>> },
}

/// The durable array backend. See the module docs for the on-disk layout.
pub struct FileArraySink {
    dir: PathBuf,
    opts: FileSinkOptions,
    counting: CountingArray,
    backing: Backing,
    /// Records appended per device (drives file positions).
    dev_records: Vec<u64>,
    generation: u64,
    /// First media failure observed; once set, the sink stops persisting
    /// (the machine is off) while accounting continues so the engine can
    /// finish its op and surface the loss through the WAL path.
    failed: Option<FileSinkError>,
}

impl std::fmt::Debug for FileArraySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileArraySink")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("chunks_written", &self.counting.chunks_written())
            .field("failed", &self.failed)
            .finish()
    }
}

impl FileArraySink {
    /// Create a fresh on-disk array at `dir`, clearing any previous one.
    pub fn create(
        cfg: ArrayConfig,
        dir: impl Into<PathBuf>,
        opts: FileSinkOptions,
    ) -> Result<Self, FileSinkError> {
        let dir = dir.into();
        for d in 0..cfg.num_devices {
            let dev = dir.join(format!("dev{d}"));
            if dev.exists() {
                std::fs::remove_dir_all(&dev).map_err(MediaError::from)?;
            }
            std::fs::create_dir_all(&dev).map_err(MediaError::from)?;
        }
        let _ = std::fs::remove_file(dir.join("superblock.bin"));
        let mut sink = Self {
            dir,
            counting: CountingArray::new(cfg),
            backing: Backing::Active { files: Vec::new() },
            dev_records: vec![0; cfg.num_devices],
            generation: 0,
            failed: None,
            opts,
        };
        let files = (0..cfg.num_devices)
            .map(|d| sink.open_file(d, 0, true))
            .collect::<Result<Vec<_>, _>>()?;
        sink.backing = Backing::Active { files };
        sink.write_superblock()?;
        Ok(sink)
    }

    /// Open an existing on-disk array for recovery: parse the superblock
    /// and scan every device's files, keeping the longest CRC-valid,
    /// stripe-consistent record prefix per device. The sink is inert until
    /// [`ArraySink::recover_reconcile`] aligns it with the recovered log.
    pub fn open_recovery(
        cfg: ArrayConfig,
        dir: impl Into<PathBuf>,
        opts: FileSinkOptions,
    ) -> Result<Self, FileSinkError> {
        let dir = dir.into();
        let generation = read_superblock(&dir, &cfg)?;
        let mut scanned = Vec::with_capacity(cfg.num_devices);
        let mut dev_records = Vec::with_capacity(cfg.num_devices);
        for d in 0..cfg.num_devices {
            let recs = scan_device(&dir, d, opts.stripes_per_file);
            dev_records.push(recs.len() as u64);
            scanned.push(recs);
        }
        Ok(Self {
            dir,
            counting: CountingArray::new(cfg),
            backing: Backing::Recovering { scanned },
            dev_records,
            generation,
            failed: None,
            opts,
        })
    }

    /// The first media failure observed, if any (power loss in a crash
    /// simulation, or a real I/O error).
    pub fn failure(&self) -> Option<&FileSinkError> {
        self.failed.as_ref()
    }

    /// Superblock generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Make everything written so far durable and roll the superblock.
    pub fn sync_all(&mut self) -> Result<(), FileSinkError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if let Err(e) = self.try_sync_files() {
            self.failed = Some(e.clone());
            return Err(e);
        }
        if let Err(e) = self.write_superblock() {
            self.failed = Some(e.clone());
            return Err(e);
        }
        Ok(())
    }

    fn try_sync_files(&mut self) -> Result<(), FileSinkError> {
        let Backing::Active { files } = &mut self.backing else {
            return Ok(());
        };
        for f in files.iter_mut() {
            f.sync()?;
        }
        Ok(())
    }

    fn file_path(&self, device: usize, file_idx: u64) -> PathBuf {
        self.dir.join(format!("dev{device}")).join(format!("f{file_idx:06}.seg"))
    }

    fn open_file(
        &self,
        device: usize,
        file_idx: u64,
        truncate: bool,
    ) -> Result<MediaFile, FileSinkError> {
        let path = self.file_path(device, file_idx);
        let f = if truncate {
            MediaFile::create(path, self.opts.budget.clone(), WriteTag::SinkRecord, self.opts.fsync)
        } else {
            MediaFile::append_to(
                path,
                self.opts.budget.clone(),
                WriteTag::SinkRecord,
                self.opts.fsync,
            )
        }?;
        Ok(f)
    }

    fn write_superblock(&mut self) -> Result<(), FileSinkError> {
        self.generation += 1;
        let cfg = *self.counting.config();
        let mut b = Vec::with_capacity(48);
        b.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        b.extend_from_slice(&SUPERBLOCK_VERSION.to_le_bytes());
        b.extend_from_slice(&(cfg.parity_devices as u16).to_le_bytes());
        b.extend_from_slice(&self.generation.to_le_bytes());
        b.extend_from_slice(&(cfg.num_devices as u32).to_le_bytes());
        b.extend_from_slice(&(cfg.chunk_bytes as u32).to_le_bytes());
        b.extend_from_slice(&self.opts.stripes_per_file.to_le_bytes());
        let crc = crc32c(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        atomic_replace(
            &self.dir.join("superblock.bin"),
            &b,
            self.opts.budget.as_ref(),
            WriteTag::Superblock,
            self.opts.fsync,
        )?;
        Ok(())
    }

    fn append_record(&mut self, device: usize, rec: ChunkRecord) {
        if let Backing::Active { files } = &mut self.backing {
            files[device].write(&rec.encode());
            self.dev_records[device] += 1;
        }
    }

    /// Seal the just-completed files and open the next generation.
    fn roll_files(&mut self) -> Result<(), FileSinkError> {
        let n = self.counting.config().num_devices;
        let next_idx = self.dev_records[0] / self.opts.stripes_per_file;
        let files =
            (0..n).map(|d| self.open_file(d, next_idx, true)).collect::<Result<Vec<_>, _>>()?;
        self.backing = Backing::Active { files };
        self.write_superblock()
    }

    fn read_record(&mut self, device: usize, stripe: u64) -> Option<ChunkRecord> {
        let spf = self.opts.stripes_per_file;
        let file_idx = stripe / spf;
        let offset = (stripe % spf) * RECORD_BYTES;
        let mut buf = [0u8; RECORD_BYTES as usize];
        // The file open for appends (its tail may still be volatile).
        // Files roll together on *global* stripe completion, so the open
        // index must come from the global stripe count — a device that
        // already wrote its record for the last stripe of a file is still
        // appending to that file until the whole stripe completes and
        // `roll_files` runs.
        let cur_file = self.counting.stats().stripes_completed / spf;
        match &mut self.backing {
            Backing::Active { files } if file_idx == cur_file => {
                // Possibly still in the open file's volatile buffer.
                files[device].read_at(offset, &mut buf).ok()?;
            }
            Backing::Active { .. } => {
                let path = self.file_path(device, file_idx);
                let mut f = std::fs::File::open(path).ok()?;
                f.seek(SeekFrom::Start(offset)).ok()?;
                f.read_exact(&mut buf).ok()?;
            }
            Backing::Recovering { scanned } => {
                return scanned[device].get(stripe as usize).copied();
            }
        }
        ChunkRecord::decode(&buf)
    }
}

fn read_superblock(dir: &Path, cfg: &ArrayConfig) -> Result<u64, FileSinkError> {
    let path = dir.join("superblock.bin");
    let Ok(b) = std::fs::read(&path) else {
        // No superblock: a crash before the first generation landed. The
        // record CRCs carry the truth; start from generation zero.
        return Ok(0);
    };
    let corrupt = |detail: &str| FileSinkError::Corrupt {
        path: path.clone(),
        offset: 0,
        detail: detail.to_string(),
    };
    if b.len() < 36 {
        return Err(corrupt("short superblock"));
    }
    if u32::from_le_bytes(b[0..4].try_into().unwrap()) != SUPERBLOCK_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if crc32c(&b[..32]) != u32::from_le_bytes(b[32..36].try_into().unwrap()) {
        return Err(corrupt("superblock CRC mismatch"));
    }
    let parity_devices = match u16::from_le_bytes(b[4..6].try_into().unwrap()) {
        1 => 1, // v1 predates the parity field: RAID-5 implied
        2 => u16::from_le_bytes(b[6..8].try_into().unwrap()) as usize,
        v => return Err(corrupt(&format!("unsupported superblock version {v}"))),
    };
    let generation = u64::from_le_bytes(b[8..16].try_into().unwrap());
    let num_devices = u32::from_le_bytes(b[16..20].try_into().unwrap()) as usize;
    let chunk_bytes = u32::from_le_bytes(b[20..24].try_into().unwrap()) as u64;
    if num_devices != cfg.num_devices
        || chunk_bytes != cfg.chunk_bytes
        || parity_devices != cfg.parity_devices
    {
        return Err(FileSinkError::GeometryMismatch {
            detail: format!(
                "superblock says {num_devices} devices ({parity_devices} parity) × \
                 {chunk_bytes} B chunks, config says {} ({}) × {}",
                cfg.num_devices, cfg.parity_devices, cfg.chunk_bytes
            ),
        });
    }
    Ok(generation)
}

/// Scan one device's files, returning the longest valid record prefix: a
/// record is kept only if it CRC-verifies, names this device, and sits at
/// the stripe its file position implies. The first violation (torn tail,
/// bit rot, stale file) ends the prefix.
fn scan_device(dir: &Path, device: usize, stripes_per_file: u64) -> Vec<ChunkRecord> {
    let mut out = Vec::new();
    let dev_dir = dir.join(format!("dev{device}"));
    for file_idx in 0.. {
        let path = dev_dir.join(format!("f{file_idx:06}.seg"));
        let Ok(bytes) = std::fs::read(&path) else {
            return out;
        };
        for (i, chunk) in bytes.chunks(RECORD_BYTES as usize).enumerate() {
            let expect_stripe = file_idx * stripes_per_file + i as u64;
            match ChunkRecord::decode(chunk) {
                Some(rec) if rec.device as usize == device && rec.stripe == expect_stripe => {
                    out.push(rec)
                }
                _ => return out,
            }
        }
        if bytes.len() < (stripes_per_file * RECORD_BYTES) as usize {
            // Partial file: nothing can follow it.
            return out;
        }
    }
    unreachable!()
}

impl FileArraySink {
    /// Shared body of the payload-less and borrowed-slice write paths:
    /// account the chunk, frame its digest record (carrying `payload_crc`
    /// when the payload was provided), and handle stripe-close sync/roll.
    fn write_chunk_framed(&mut self, flush: ChunkFlush, payload_crc: u32) -> ChunkLocation {
        let chunk_seq = self.counting.chunks_written();
        let stripes_before = self.counting.stats().stripes_completed;
        let loc = self.counting.write_chunk(flush);
        if self.failed.is_some() {
            return loc; // power is off: accounting only
        }
        debug_assert!(
            matches!(self.backing, Backing::Active { .. }),
            "write_chunk before recover_reconcile"
        );
        self.append_record(loc.device, ChunkRecord::data(&flush, &loc, chunk_seq, payload_crc));
        if self.counting.stats().stripes_completed > stripes_before {
            let layout = *self.counting.layout();
            let k = layout.config().data_columns();
            for j in 0..layout.config().parity_devices {
                let pdev = layout.parity_device_j(loc.stripe, j);
                self.append_record(pdev, ChunkRecord::parity(loc.stripe, pdev, k + j));
            }
            // Stripe complete: make it durable, then seal files on the
            // stripes_per_file boundary.
            if let Err(e) = self.try_sync_files() {
                self.failed = Some(e);
                return loc;
            }
            if (loc.stripe + 1).is_multiple_of(self.opts.stripes_per_file) {
                if let Err(e) = self.roll_files() {
                    self.failed = Some(e);
                }
            }
        }
        loc
    }
}

impl ArraySink for FileArraySink {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        self.write_chunk_framed(flush, 0)
    }

    fn write_chunk_payload(&mut self, flush: ChunkFlush, payload: &[u8]) -> ChunkLocation {
        debug_assert_eq!(payload.len() as u64, self.counting.config().chunk_bytes);
        // Zero-copy: the digest is streamed straight off the borrowed
        // slice; the payload never lands in an interim buffer.
        self.write_chunk_framed(flush, crc32c(payload))
    }

    fn config(&self) -> &ArrayConfig {
        self.counting.config()
    }

    fn stats(&self) -> &ArrayStats {
        self.counting.stats()
    }

    fn health(&self) -> ArrayHealth {
        ArrayHealth::Healthy
    }

    fn read_chunk_at(&mut self, loc: ChunkLocation) -> Result<ReadOutcome, ArrayError> {
        let chunk = self.config().chunk_bytes;
        let k = self.config().data_columns() as u64;
        let chunk_seq = loc.stripe * k + loc.column as u64;
        if chunk_seq >= self.counting.chunks_written() {
            return Err(ArrayError::MissingChunk { loc });
        }
        match self.read_record(loc.device, loc.stripe) {
            Some(rec)
                if rec.kind == KIND_DATA
                    && rec.chunk_seq == chunk_seq
                    && rec.column as usize == loc.column =>
            {
                Ok(ReadOutcome::normal(chunk))
            }
            _ => Err(ArrayError::ChecksumMismatch { loc }),
        }
    }

    fn sync_for_checkpoint(&mut self) -> Result<(), ArrayError> {
        self.sync_all().map_err(ArrayError::from)
    }

    fn recover_reconcile(
        &mut self,
        next_chunk_seq: u64,
        tail: &[RecoveredFlush],
    ) -> Result<SinkReconcile, ArrayError> {
        let Backing::Recovering { scanned } =
            std::mem::replace(&mut self.backing, Backing::Active { files: Vec::new() })
        else {
            return Err(ArrayError::Storage { failure: StorageFailure::Unsupported });
        };
        let cfg = *self.counting.config();
        let layout = Raid5Layout::new(cfg);
        let k = cfg.data_columns() as u64;
        let mut report = SinkReconcile {
            records_scanned: scanned.iter().map(|v| v.len() as u64).sum(),
            ..SinkReconcile::default()
        };

        // Index the scanned records by global chunk sequence, and the WAL
        // tail digests likewise.
        let mut on_disk: std::collections::BTreeMap<u64, ChunkRecord> =
            std::collections::BTreeMap::new();
        let mut parity_on_disk: std::collections::BTreeMap<(u64, u32), ChunkRecord> =
            std::collections::BTreeMap::new();
        for recs in &scanned {
            for rec in recs {
                if rec.kind == KIND_DATA {
                    on_disk.insert(rec.chunk_seq, *rec);
                } else {
                    parity_on_disk.insert((rec.stripe, rec.device), *rec);
                }
            }
        }
        let from_wal: std::collections::BTreeMap<u64, ChunkFlush> =
            tail.iter().map(|r| (r.chunk_seq, r.flush)).collect();

        // Rebuild the authoritative record stream: every chunk the
        // recovered log proves durable, replayed through the counting
        // model so lifetime statistics and the layout cursor are exact.
        let mut counting = CountingArray::new(cfg);
        let mut rebuilt: Vec<Vec<ChunkRecord>> = vec![Vec::new(); cfg.num_devices];
        for seq in 0..next_chunk_seq {
            let (flush, payload_crc) = match on_disk.get(&seq) {
                Some(rec) => {
                    report.records_reused += 1;
                    (rec.to_flush(), rec.payload_crc)
                }
                None => match from_wal.get(&seq) {
                    // WAL records carry accounting only — a payload digest
                    // lost with the torn record cannot be reinvented.
                    Some(flush) => {
                        report.records_restored += 1;
                        (*flush, 0)
                    }
                    None => {
                        return Err(FileSinkError::MissingRecord { chunk_seq: seq }.into());
                    }
                },
            };
            let loc = counting.write_chunk(flush);
            debug_assert_eq!(loc, layout.locate(seq));
            rebuilt[loc.device].push(ChunkRecord::data(&flush, &loc, seq, payload_crc));
            if (seq + 1).is_multiple_of(k) {
                for j in 0..cfg.parity_devices {
                    let pdev = layout.parity_device_j(loc.stripe, j);
                    if parity_on_disk.remove(&(loc.stripe, pdev as u32)).is_some() {
                        report.records_reused += 1;
                    } else {
                        report.records_restored += 1;
                    }
                    rebuilt[pdev].push(ChunkRecord::parity(loc.stripe, pdev, k as usize + j));
                }
            }
        }
        report.records_discarded = report.records_scanned.saturating_sub(report.records_reused);

        // Rewrite the device files from the rebuilt stream (each full or
        // partial file installed atomically), delete stale later files,
        // and reopen the live tail for appends.
        let spf = self.opts.stripes_per_file;
        for (d, recs) in rebuilt.iter().enumerate() {
            let dev_dir = self.dir.join(format!("dev{d}"));
            std::fs::create_dir_all(&dev_dir)
                .map_err(|e| ArrayError::from(FileSinkError::Media(e.into())))?;
            let n_files = recs.len().div_ceil(spf as usize);
            for file_idx in 0..n_files {
                let lo = file_idx * spf as usize;
                let hi = (lo + spf as usize).min(recs.len());
                let mut bytes = Vec::with_capacity((hi - lo) * RECORD_BYTES as usize);
                for rec in &recs[lo..hi] {
                    bytes.extend_from_slice(&rec.encode());
                }
                atomic_replace(
                    &self.file_path(d, file_idx as u64),
                    &bytes,
                    self.opts.budget.as_ref(),
                    WriteTag::SinkRecord,
                    self.opts.fsync,
                )
                .map_err(|e| ArrayError::from(FileSinkError::Media(e)))?;
            }
            // Drop files beyond the rebuilt stream (unacked tail). The
            // live append file is recreated below if needed.
            let mut stale_idx = n_files as u64;
            while std::fs::remove_file(self.file_path(d, stale_idx)).is_ok() {
                stale_idx += 1;
            }
        }
        self.dev_records = rebuilt.iter().map(|v| v.len() as u64).collect();
        let cur_idx = self.dev_records.first().copied().unwrap_or(0) / spf;
        let files = (0..cfg.num_devices)
            .map(|d| self.open_file(d, cur_idx, false))
            .collect::<Result<Vec<_>, _>>()
            .map_err(ArrayError::from)?;
        self.backing = Backing::Active { files };
        self.counting = counting;
        self.write_superblock().map_err(ArrayError::from)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adapt-filesink-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn flush(group: u8, seg: u32, chunk_in_seg: u32) -> ChunkFlush {
        ChunkFlush {
            user_bytes: 65536,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 0,
            group,
            seg,
            chunk_in_seg,
        }
    }

    #[test]
    fn record_roundtrip_and_crc() {
        let loc = ChunkLocation { stripe: 7, device: 2, column: 1 };
        let rec = ChunkRecord::data(&flush(3, 9, 4), &loc, 22, 0xDEAD_BEEF);
        let bytes = rec.encode();
        assert_eq!(ChunkRecord::decode(&bytes), Some(rec));
        let mut bad = bytes;
        bad[17] ^= 1;
        assert_eq!(ChunkRecord::decode(&bad), None, "bit flip must fail CRC");
        assert_eq!(ChunkRecord::decode(&bytes[..40]), None, "short read must fail");
    }

    #[test]
    fn locations_and_stats_match_counting_array() {
        let dir = scratch("parity");
        let cfg = ArrayConfig::default();
        let mut mem = CountingArray::new(cfg);
        let mut file = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        for i in 0..50u32 {
            let f = flush((i % 3) as u8, i / 8, i % 8);
            assert_eq!(mem.write_chunk(f), file.write_chunk(f));
        }
        assert_eq!(mem.stats(), file.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_verify_against_stored_records() {
        let dir = scratch("reads");
        let cfg = ArrayConfig::default();
        let mut sink = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        let locs: Vec<_> = (0..9u32).map(|i| sink.write_chunk(flush(0, 0, i))).collect();
        for &loc in &locs {
            assert!(sink.read_chunk_at(loc).is_ok(), "{loc:?}");
        }
        let never = ChunkLocation { stripe: 99, device: 0, column: 0 };
        assert!(matches!(sink.read_chunk_at(never), Err(ArrayError::MissingChunk { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a device that has written its record for the *last*
    /// stripe of a file keeps appending to that file until the whole
    /// stripe completes and the roll runs. Reading such a record used to
    /// look in the (nonexistent) next file and report a false checksum
    /// mismatch.
    #[test]
    fn reads_at_file_boundary_of_incomplete_stripe() {
        let dir = scratch("boundary");
        let cfg = ArrayConfig::default();
        let opts = FileSinkOptions { stripes_per_file: 1, ..FileSinkOptions::default() };
        let mut sink = FileArraySink::create(cfg, &dir, opts).unwrap();
        // One data chunk of stripe 0: the stripe is incomplete, so file 0
        // is still open, yet this device's record count already equals the
        // file capacity.
        let loc = sink.write_chunk(flush(0, 0, 0));
        assert!(sink.read_chunk_at(loc).is_ok(), "boundary read must hit the open file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn files_roll_and_superblock_generation_advances() {
        let dir = scratch("roll");
        let cfg = ArrayConfig::default();
        let opts = FileSinkOptions { stripes_per_file: 2, ..FileSinkOptions::default() };
        let mut sink = FileArraySink::create(cfg, &dir, opts).unwrap();
        let g0 = sink.generation();
        // 4 complete stripes = 12 data chunks = two sealed files per device.
        for i in 0..12u32 {
            sink.write_chunk(flush(0, 0, i));
        }
        assert!(sink.generation() > g0);
        assert!(dir.join("dev0").join("f000001.seg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_scan_recovers_everything() {
        let dir = scratch("scan");
        let cfg = ArrayConfig::default();
        let opts = FileSinkOptions { stripes_per_file: 2, ..FileSinkOptions::default() };
        let mut sink = FileArraySink::create(cfg, &dir, opts.clone()).unwrap();
        let n = 15u32; // 5 complete stripes
        for i in 0..n {
            sink.write_chunk(flush(0, 0, i));
        }
        sink.sync_all().unwrap();
        drop(sink);

        let mut sink = FileArraySink::open_recovery(cfg, &dir, opts).unwrap();
        let report = sink.recover_reconcile(n as u64, &[]).unwrap();
        assert_eq!(report.records_restored, 0);
        assert_eq!(report.records_discarded, 0);
        assert_eq!(sink.counting.chunks_written(), n as u64);
        // The rebuilt sink serves reads and accepts appends.
        let loc = Raid5Layout::new(cfg).locate(3);
        assert!(sink.read_chunk_at(loc).is_ok());
        sink.write_chunk(flush(0, 9, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_restored_from_wal_digests() {
        let dir = scratch("restore");
        let cfg = ArrayConfig::default();
        let mut sink = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        for i in 0..6u32 {
            sink.write_chunk(flush(0, 0, i));
        }
        sink.sync_all().unwrap();
        drop(sink);
        // Tear the last record of dev0's file.
        let f0 = dir.join("dev0").join("f000000.seg");
        let mut bytes = std::fs::read(&f0).unwrap();
        let cut = bytes.len() - 10;
        bytes.truncate(cut);
        std::fs::write(&f0, &bytes).unwrap();

        let mut sink = FileArraySink::open_recovery(cfg, &dir, FileSinkOptions::default()).unwrap();
        // The WAL tail still knows every flush.
        let tail: Vec<RecoveredFlush> =
            (0..6).map(|i| RecoveredFlush { chunk_seq: i, flush: flush(0, 0, i as u32) }).collect();
        let report = sink.recover_reconcile(6, &tail).unwrap();
        assert!(report.records_restored > 0, "{report:?}");
        for seq in 0..6 {
            let loc = Raid5Layout::new(cfg).locate(seq);
            assert!(sink.read_chunk_at(loc).is_ok(), "chunk {seq}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_pre_checkpoint_record_is_typed_error() {
        let dir = scratch("missing");
        let cfg = ArrayConfig::default();
        let sink = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        drop(sink);
        let mut sink = FileArraySink::open_recovery(cfg, &dir, FileSinkOptions::default()).unwrap();
        let err = sink.recover_reconcile(4, &[]).unwrap_err();
        assert_eq!(err, ArrayError::Storage { failure: StorageFailure::MissingRecord });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raid6_locations_and_stats_match_counting_array() {
        let dir = scratch("raid6");
        let cfg = ArrayConfig::with_parity(8, 2, 65536);
        let mut mem = CountingArray::new(cfg);
        let mut file = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        for i in 0..60u32 {
            let f = flush((i % 3) as u8, i / 8, i % 8);
            assert_eq!(mem.write_chunk(f), file.write_chunk(f));
        }
        assert_eq!(mem.stats(), file.stats());
        assert_eq!(file.stats().parity_bytes(), 10 * 2 * 65536, "2 parity chunks × 10 stripes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raid6_clean_scan_recovers_everything() {
        let dir = scratch("raid6-scan");
        let cfg = ArrayConfig::with_parity(6, 2, 65536);
        let opts = FileSinkOptions { stripes_per_file: 2, ..FileSinkOptions::default() };
        let mut sink = FileArraySink::create(cfg, &dir, opts.clone()).unwrap();
        let n = 16u32; // 4 complete 4+2 stripes
        for i in 0..n {
            sink.write_chunk(flush(0, 0, i));
        }
        sink.sync_all().unwrap();
        drop(sink);

        let mut sink = FileArraySink::open_recovery(cfg, &dir, opts).unwrap();
        let report = sink.recover_reconcile(n as u64, &[]).unwrap();
        assert_eq!(report.records_restored, 0, "{report:?}");
        assert_eq!(report.records_discarded, 0, "{report:?}");
        assert_eq!(sink.counting.chunks_written(), n as u64);
        let loc = Raid5Layout::new(cfg).locate(5);
        assert!(sink.read_chunk_at(loc).is_ok());
        sink.write_chunk(flush(0, 9, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn geometry_mismatch_on_open_is_typed() {
        let dir = scratch("geom");
        let cfg = ArrayConfig::with_parity(6, 2, 65536);
        let mut sink = FileArraySink::create(cfg, &dir, FileSinkOptions::default()).unwrap();
        for i in 0..4u32 {
            sink.write_chunk(flush(0, 0, i));
        }
        sink.sync_all().unwrap();
        drop(sink);
        // Reopening a 4+2 array as 5+1 must refuse before touching records.
        let wrong = ArrayConfig::new(6, 65536);
        let err =
            FileArraySink::open_recovery(wrong, &dir, FileSinkOptions::default()).unwrap_err();
        assert!(matches!(err, FileSinkError::GeometryMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_loss_stops_persistence_but_not_accounting() {
        let dir = scratch("powerloss");
        let cfg = ArrayConfig::default();
        let budget = PowerBudget::limited(200); // a few records, then dark
        let opts = FileSinkOptions { budget: Some(budget.clone()), ..FileSinkOptions::default() };
        let mut sink = FileArraySink::create(cfg, &dir, opts).unwrap();
        for i in 0..30u32 {
            sink.write_chunk(flush(0, 0, i));
        }
        assert!(budget.is_tripped());
        assert!(sink.failure().is_some());
        assert_eq!(sink.counting.chunks_written(), 30, "accounting keeps running");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
