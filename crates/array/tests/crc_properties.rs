//! Differential property tests: the dispatching CRC32C entry point
//! (hardware SSE4.2 when the CPU has it) must be bit-identical to the
//! software slicing-by-8 path on arbitrary buffers.

use adapt_array::crc::{crc32c, crc32c_soft, hw_available, update, update_soft};
use proptest::prelude::*;

proptest! {
    /// One-shot checksums agree on arbitrary buffers.
    #[test]
    fn hardware_matches_software(
        data in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        prop_assert_eq!(crc32c(&data), crc32c_soft(&data));
    }

    /// Incremental updates agree at arbitrary split points, so streamed
    /// (chunk-at-a-time) checksums match regardless of which path each
    /// piece took.
    #[test]
    fn incremental_hardware_matches_software(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        split in 0usize..2048,
    ) {
        let split = split % (data.len() + 1);
        let (a, b) = data.split_at(split);
        let dispatched = update(update(!0, a), b) ^ !0;
        let soft = update_soft(update_soft(!0, a), b) ^ !0;
        prop_assert_eq!(dispatched, soft);
    }
}

#[test]
fn report_dispatch_path() {
    // Not an assertion — records in test output which path the
    // differential tests actually exercised on this machine.
    println!("crc32c hardware path available: {}", hw_available());
}
