//! DAC: Dynamic dAta Clustering (Chiang, Lee & Chang, SP&E 1999).
//!
//! DAC partitions flash into `k` regions ordered from coldest to hottest
//! and moves data between adjacent regions on two events:
//!
//! * **update** — the block is being rewritten soon after its last write,
//!   so it is promoted one region toward *hot*;
//! * **GC migration** — the block survived long enough for its segment to
//!   be collected, so it is demoted one region toward *cold*.
//!
//! Every region accepts both user and GC writes (the paper configures DAC
//! with five mixed groups), which is exactly why it suffers high padding
//! under sparse traffic: user writes are spread over five open chunks
//! (Observation 3).

use crate::lba_table::LbaTable;
use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, VictimMeta};

/// Number of temperature regions in the paper's DAC configuration.
pub const DAC_GROUPS: usize = 5;

/// Dynamic data clustering policy.
#[derive(Debug, Clone)]
pub struct Dac {
    groups: Vec<GroupKind>,
    /// Region of each block, biased by +1 (0 = never seen).
    region: LbaTable<u8>,
}

impl Default for Dac {
    fn default() -> Self {
        Self::new()
    }
}

impl Dac {
    /// Create with the paper's five regions.
    pub fn new() -> Self {
        Self::with_groups(DAC_GROUPS)
    }

    /// Create with a custom region count (≥ 2).
    pub fn with_groups(k: usize) -> Self {
        assert!((2..=255).contains(&k));
        Self { groups: vec![GroupKind::Mixed; k], region: LbaTable::default() }
    }

    fn hottest(&self) -> u8 {
        (self.groups.len() - 1) as u8
    }

    /// Current region of a block, if ever written.
    pub fn region_of(&self, lba: Lba) -> Option<u8> {
        let r = self.region.get(lba);
        if r == 0 {
            None
        } else {
            Some(r - 1)
        }
    }
}

impl PlacementPolicy for Dac {
    fn name(&self) -> &'static str {
        "DAC"
    }

    fn groups(&self) -> &[GroupKind] {
        &self.groups
    }

    fn place_user(&mut self, _ctx: &PolicyCtx, lba: Lba) -> GroupId {
        let new_region = match self.region_of(lba) {
            // Update: the block proved hot — promote toward the hottest.
            Some(r) => r.saturating_add(1).min(self.hottest()),
            // First write: enter at the coldest region.
            None => 0,
        };
        self.region.set(lba, new_region + 1);
        new_region
    }

    fn place_gc(&mut self, _ctx: &PolicyCtx, lba: Lba, _victim: &VictimMeta) -> GroupId {
        // Surviving GC: the block proved colder than assumed — demote.
        let r = self.region_of(lba).unwrap_or(0);
        let new_region = r.saturating_sub(1);
        self.region.set(lba, new_region + 1);
        new_region
    }

    fn memory_bytes(&self) -> usize {
        self.region.memory_bytes() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim() -> VictimMeta {
        VictimMeta { seg: 0, group: 0, created_user_bytes: 0, valid_blocks: 0, segment_blocks: 128 }
    }

    #[test]
    fn first_write_goes_cold() {
        let mut p = Dac::new();
        assert_eq!(p.place_user(&PolicyCtx::default(), 7), 0);
    }

    #[test]
    fn repeated_updates_promote_to_hottest() {
        let mut p = Dac::new();
        let ctx = PolicyCtx::default();
        let mut last = p.place_user(&ctx, 7);
        for _ in 0..10 {
            let g = p.place_user(&ctx, 7);
            assert!(g >= last);
            last = g;
        }
        assert_eq!(last, 4);
    }

    #[test]
    fn gc_demotes() {
        let mut p = Dac::new();
        let ctx = PolicyCtx::default();
        for _ in 0..5 {
            p.place_user(&ctx, 7); // reach hottest
        }
        assert_eq!(p.place_gc(&ctx, 7, &victim()), 3);
        assert_eq!(p.place_gc(&ctx, 7, &victim()), 2);
    }

    #[test]
    fn demotion_saturates_at_coldest() {
        let mut p = Dac::new();
        let ctx = PolicyCtx::default();
        p.place_user(&ctx, 3);
        for _ in 0..10 {
            let g = p.place_gc(&ctx, 3, &victim());
            assert_eq!(g, 0);
        }
    }

    #[test]
    fn all_groups_mixed() {
        let p = Dac::new();
        assert!(p.groups().iter().all(|&k| k == GroupKind::Mixed));
        assert_eq!(p.groups().len(), 5);
    }

    #[test]
    fn memory_tracks_address_space() {
        let mut p = Dac::new();
        let ctx = PolicyCtx::default();
        p.place_user(&ctx, 100_000);
        assert!(p.memory_bytes() >= 100_000);
    }
}
