//! WARCIP: Write Amplification Reduction by Clustering I/O Pages
//! (Yang, Pei & Yang, SYSTOR 2019).
//!
//! WARCIP clusters pages by their *rewrite interval* — the wall-clock gap
//! between consecutive writes to the same page — on the theory that pages
//! rewritten at similar cadence invalidate together. We implement the
//! clustering as streaming one-dimensional k-means over `log2(interval)`:
//! each write is assigned to the nearest centroid (its cluster = its
//! group) and pulls that centroid toward itself with a small learning
//! rate. Centroids are kept sorted so group 0 is always the
//! shortest-interval (hottest) cluster.
//!
//! Configuration per the paper: five user clusters plus one GC group.

use crate::lba_table::LbaTable;
use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, VictimMeta};

/// User clusters in the paper's WARCIP configuration.
pub const WARCIP_USER_GROUPS: usize = 5;

/// Learning rate of the online k-means update.
const LEARNING_RATE: f64 = 0.05;

/// Rewrite-interval clustering policy.
#[derive(Debug, Clone)]
pub struct Warcip {
    groups: Vec<GroupKind>,
    /// Last write wall-clock (µs) + 1 per block; 0 = never written.
    last_write_us: LbaTable<u64>,
    /// Cluster centroids in log2(µs) space, ascending.
    centroids: Vec<f64>,
}

impl Default for Warcip {
    fn default() -> Self {
        Self::new()
    }
}

impl Warcip {
    /// Create with the paper's 5+1 configuration.
    pub fn new() -> Self {
        Self::with_user_groups(WARCIP_USER_GROUPS)
    }

    /// Create with a custom number of user clusters (≥ 2).
    pub fn with_user_groups(k: usize) -> Self {
        assert!((2..=254).contains(&k));
        let mut groups = vec![GroupKind::User; k];
        groups.push(GroupKind::Gc);
        // Seed centroids across the plausible interval range: 100 µs … 100 s,
        // evenly spaced in log2 space.
        let lo = (100.0f64).log2();
        let hi = (100_000_000.0f64).log2();
        let centroids = (0..k).map(|i| lo + (hi - lo) * i as f64 / (k - 1) as f64).collect();
        Self { groups, last_write_us: LbaTable::default(), centroids }
    }

    /// The GC group id.
    pub fn gc_group(&self) -> GroupId {
        (self.groups.len() - 1) as GroupId
    }

    /// Current centroids (log2 µs), for inspection.
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// Nearest centroid index for a log-interval.
    fn nearest(&self, x: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &c) in self.centroids.iter().enumerate() {
            let d = (x - c).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl PlacementPolicy for Warcip {
    fn name(&self) -> &'static str {
        "WARCIP"
    }

    fn groups(&self) -> &[GroupKind] {
        &self.groups
    }

    fn place_user(&mut self, ctx: &PolicyCtx, lba: Lba) -> GroupId {
        let prev = self.last_write_us.get(lba);
        self.last_write_us.set(lba, ctx.now_us + 1);
        if prev == 0 {
            // First write: no interval yet — treat as the coldest cluster
            // (an unknown page is assumed long-lived).
            return (self.centroids.len() - 1) as GroupId;
        }
        let interval_us = ctx.now_us.saturating_sub(prev - 1).max(1);
        let x = (interval_us as f64).log2();
        let cluster = self.nearest(x);
        // Online k-means update keeps clusters tracking the workload.
        self.centroids[cluster] += LEARNING_RATE * (x - self.centroids[cluster]);
        // Preserve ordering so group ids keep their hot→cold meaning.
        self.centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cluster as GroupId
    }

    fn place_gc(&mut self, _ctx: &PolicyCtx, _lba: Lba, _victim: &VictimMeta) -> GroupId {
        self.gc_group()
    }

    fn memory_bytes(&self) -> usize {
        self.last_write_us.memory_bytes()
            + self.centroids.capacity() * std::mem::size_of::<f64>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_at(now_us: u64) -> PolicyCtx {
        PolicyCtx { now_us, ..Default::default() }
    }

    fn victim() -> VictimMeta {
        VictimMeta { seg: 0, group: 0, created_user_bytes: 0, valid_blocks: 0, segment_blocks: 128 }
    }

    #[test]
    fn first_write_is_cold() {
        let mut p = Warcip::new();
        assert_eq!(p.place_user(&ctx_at(0), 5), 4);
    }

    #[test]
    fn short_intervals_cluster_hot_long_cluster_cold() {
        let mut p = Warcip::new();
        // Warm up block 1 at a 200 µs cadence and block 2 at 10 s.
        let mut t = 0;
        let mut hot_group = 0;
        for _ in 0..50 {
            t += 200;
            hot_group = p.place_user(&ctx_at(t), 1);
        }
        let mut cold_group = 0;
        let mut t2 = 0;
        for _ in 0..50 {
            t2 += 10_000_000;
            cold_group = p.place_user(&ctx_at(t2), 2);
        }
        assert!(hot_group < cold_group, "hot {hot_group} vs cold {cold_group}");
    }

    #[test]
    fn gc_always_goes_to_gc_group() {
        let mut p = Warcip::new();
        assert_eq!(p.place_gc(&ctx_at(0), 1, &victim()), 5);
    }

    #[test]
    fn centroids_stay_sorted() {
        let mut p = Warcip::new();
        let mut t = 0;
        for i in 0..1000u64 {
            t += (i % 17 + 1) * 97;
            p.place_user(&ctx_at(t), i % 50);
        }
        let c = p.centroids();
        assert!(c.windows(2).all(|w| w[0] <= w[1]), "{c:?}");
    }

    #[test]
    fn topology_is_five_plus_one() {
        let p = Warcip::new();
        assert_eq!(p.groups().len(), 6);
        assert_eq!(p.groups()[5], GroupKind::Gc);
        assert!(p.groups()[..5].iter().all(|&k| k == GroupKind::User));
    }

    #[test]
    fn zero_interval_handled() {
        let mut p = Warcip::new();
        p.place_user(&ctx_at(100), 1);
        // Same-timestamp rewrite: interval clamps to 1 µs, no NaN.
        let g = p.place_user(&ctx_at(100), 1);
        assert!((g as usize) < 5);
        assert!(p.centroids().iter().all(|c| c.is_finite()));
    }
}
