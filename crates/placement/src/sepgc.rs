//! SepGC: the minimal user/GC separation baseline.
//!
//! Van Houdt ("On the necessity of hot and cold data identification …",
//! Performance Evaluation 2014) showed that merely separating user writes
//! from GC rewrites already reduces write amplification substantially.
//! SepGC is the paper's simplest baseline: one group absorbs every user
//! write, one absorbs every GC rewrite. It has no per-block state at all —
//! which also makes it the strongest baseline under *sparse* traffic
//! (Fig. 11 left): a single user group concentrates what little traffic
//! exists, maximizing chunk fill.

use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, VictimMeta};

/// The two-group user/GC separation policy.
#[derive(Debug, Clone)]
pub struct SepGc {
    groups: [GroupKind; 2],
}

impl Default for SepGc {
    fn default() -> Self {
        Self::new()
    }
}

impl SepGc {
    /// Group receiving user writes.
    pub const USER: GroupId = 0;
    /// Group receiving GC rewrites.
    pub const GC: GroupId = 1;

    /// Create the policy.
    pub fn new() -> Self {
        Self { groups: [GroupKind::User, GroupKind::Gc] }
    }
}

impl PlacementPolicy for SepGc {
    fn name(&self) -> &'static str {
        "SepGC"
    }

    fn groups(&self) -> &[GroupKind] {
        &self.groups
    }

    fn place_user(&mut self, _ctx: &PolicyCtx, _lba: Lba) -> GroupId {
        Self::USER
    }

    fn place_gc(&mut self, _ctx: &PolicyCtx, _lba: Lba, _victim: &VictimMeta) -> GroupId {
        Self::GC
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_user_and_gc_apart() {
        let mut p = SepGc::new();
        let ctx = PolicyCtx::default();
        let victim = VictimMeta {
            seg: 0,
            group: 0,
            created_user_bytes: 0,
            valid_blocks: 0,
            segment_blocks: 128,
        };
        assert_eq!(p.place_user(&ctx, 1), SepGc::USER);
        assert_eq!(p.place_gc(&ctx, 1, &victim), SepGc::GC);
        assert_eq!(p.groups().len(), 2);
        assert_eq!(p.groups()[0], GroupKind::User);
        assert_eq!(p.groups()[1], GroupKind::Gc);
    }

    #[test]
    fn memory_is_constant() {
        let p = SepGc::new();
        assert!(p.memory_bytes() < 64);
    }
}
