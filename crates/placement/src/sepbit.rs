//! SepBIT: separation via Block Invalidation Time inference
//! (Wang et al., FAST 2022).
//!
//! SepBIT infers how long a freshly written block will live from how long
//! its *previous* version lived, measured on the user-byte clock: when LBA
//! `b` is rewritten, the previous version's lifespan was
//! `v = now_bytes − last_write_bytes(b)`. If `v` is below the threshold
//! `ℓ`, the new version is predicted short-lived (class 1), else class 2.
//! GC-rewritten blocks are split by *age* `u = now_bytes −
//! last_write_bytes(b)` into classes 3–6 with exponentially growing bounds
//! `ℓ, 4ℓ, 16ℓ`.
//!
//! `ℓ` self-tunes as the average lifespan of recently collected class-1
//! segments (EWMA here); until the first class-1 collection it is infinite
//! so early user writes all land in class 1, which is exactly how the
//! original bootstraps.
//!
//! Group map: 0–1 user (classes 1–2), 2–5 GC (classes 3–6).

use crate::lba_table::LbaTable;
use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, ReclaimInfo, VictimMeta};

/// EWMA factor for the class-1 lifespan threshold.
const EWMA_ALPHA: f64 = 0.5;

/// The SepBIT policy.
#[derive(Debug, Clone)]
pub struct SepBit {
    groups: [GroupKind; 6],
    /// Byte-clock of each block's last *user* write, +1 (0 = never).
    last_write_bytes: LbaTable<u64>,
    /// Lifespan threshold ℓ in bytes; `f64::INFINITY` until learned.
    threshold: f64,
}

impl Default for SepBit {
    fn default() -> Self {
        Self::new()
    }
}

impl SepBit {
    /// Class-1 group (predicted short-lived user writes).
    pub const CLASS1: GroupId = 0;
    /// Class-2 group (other user writes).
    pub const CLASS2: GroupId = 1;

    /// Create the policy with its paper-default 2+4 groups.
    pub fn new() -> Self {
        Self {
            groups: [
                GroupKind::User,
                GroupKind::User,
                GroupKind::Gc,
                GroupKind::Gc,
                GroupKind::Gc,
                GroupKind::Gc,
            ],
            last_write_bytes: LbaTable::default(),
            threshold: f64::INFINITY,
        }
    }

    /// Current lifespan threshold ℓ (bytes).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Age of `lba`'s current data on the byte clock, if ever written.
    fn age_bytes(&self, lba: Lba, now_bytes: u64) -> Option<u64> {
        let v = self.last_write_bytes.get(lba);
        if v == 0 {
            None
        } else {
            Some(now_bytes.saturating_sub(v - 1))
        }
    }

    /// Map an age to a GC class (groups 2..=5) with bounds ℓ, 4ℓ, 16ℓ.
    fn gc_class(&self, age: u64) -> GroupId {
        let l = self.threshold;
        let a = age as f64;
        if a < l {
            2
        } else if a < 4.0 * l {
            3
        } else if a < 16.0 * l {
            4
        } else {
            5
        }
    }
}

impl PlacementPolicy for SepBit {
    fn name(&self) -> &'static str {
        "SepBIT"
    }

    fn groups(&self) -> &[GroupKind] {
        &self.groups
    }

    fn place_user(&mut self, ctx: &PolicyCtx, lba: Lba) -> GroupId {
        // Inferred BIT of the new write = lifespan of the version it kills.
        let class = match self.age_bytes(lba, ctx.user_bytes) {
            Some(v) if (v as f64) < self.threshold => Self::CLASS1,
            Some(_) => Self::CLASS2,
            // First write: no inference possible; SepBIT sends it to
            // class 2 (unknown data is assumed long-lived).
            None => Self::CLASS2,
        };
        self.last_write_bytes.set(lba, ctx.user_bytes + 1);
        class
    }

    fn place_gc(&mut self, ctx: &PolicyCtx, lba: Lba, _victim: &VictimMeta) -> GroupId {
        let age = self.age_bytes(lba, ctx.user_bytes).unwrap_or(u64::MAX);
        self.gc_class(age)
    }

    fn on_segment_reclaimed(&mut self, _ctx: &PolicyCtx, info: &ReclaimInfo) {
        // ℓ tracks the lifespan of collected class-1 segments.
        if info.group == Self::CLASS1 {
            let lifespan = info.lifespan_bytes() as f64;
            self.threshold = if self.threshold.is_finite() {
                EWMA_ALPHA * lifespan + (1.0 - EWMA_ALPHA) * self.threshold
            } else {
                lifespan
            };
        }
    }

    fn memory_bytes(&self) -> usize {
        self.last_write_bytes.memory_bytes() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(user_bytes: u64) -> PolicyCtx {
        PolicyCtx { user_bytes, ..Default::default() }
    }

    fn victim(group: GroupId) -> VictimMeta {
        VictimMeta { seg: 0, group, created_user_bytes: 0, valid_blocks: 0, segment_blocks: 128 }
    }

    fn reclaim(group: GroupId, created: u64, now: u64) -> ReclaimInfo {
        ReclaimInfo {
            seg: 0,
            group,
            created_user_bytes: created,
            reclaimed_user_bytes: now,
            migrated_blocks: 0,
        }
    }

    #[test]
    fn bootstrap_sends_rewrites_to_class1() {
        let mut p = SepBit::new();
        assert_eq!(p.place_user(&ctx(0), 1), SepBit::CLASS2); // first write
                                                              // With ℓ = ∞ every inferred lifespan is "short".
        assert_eq!(p.place_user(&ctx(10_000), 1), SepBit::CLASS1);
    }

    #[test]
    fn threshold_learned_from_class1_reclaims() {
        let mut p = SepBit::new();
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 1_000_000));
        assert!((p.threshold() - 1_000_000.0).abs() < 1e-6);
        // EWMA halves toward the next observation.
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 2_000_000));
        assert!((p.threshold() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn class2_reclaims_do_not_move_threshold() {
        let mut p = SepBit::new();
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 1_000_000));
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS2, 0, 9_000_000));
        p.on_segment_reclaimed(&ctx(0), &reclaim(3, 0, 9_000_000));
        assert!((p.threshold() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn user_separation_after_learning() {
        let mut p = SepBit::new();
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 1_000_000));
        p.place_user(&ctx(0), 7);
        // Rewritten quickly (lifespan 100k < ℓ=1M): hot.
        assert_eq!(p.place_user(&ctx(100_000), 7), SepBit::CLASS1);
        p.place_user(&ctx(200_000), 8);
        // Rewritten slowly (lifespan 5M > ℓ): cold.
        assert_eq!(p.place_user(&ctx(5_200_000), 8), SepBit::CLASS2);
    }

    #[test]
    fn gc_classes_follow_age_ladder() {
        let mut p = SepBit::new();
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 1_000_000));
        // Blocks written at byte-clock 0, collected at different ages.
        p.place_user(&ctx(0), 1);
        assert_eq!(p.place_gc(&ctx(500_000), 1, &victim(0)), 2); // age < ℓ
        assert_eq!(p.place_gc(&ctx(2_000_000), 1, &victim(0)), 3); // < 4ℓ
        assert_eq!(p.place_gc(&ctx(8_000_000), 1, &victim(0)), 4); // < 16ℓ
        assert_eq!(p.place_gc(&ctx(20_000_000), 1, &victim(0)), 5); // ≥ 16ℓ
    }

    #[test]
    fn gc_of_unknown_block_is_coldest() {
        let mut p = SepBit::new();
        p.on_segment_reclaimed(&ctx(0), &reclaim(SepBit::CLASS1, 0, 1_000));
        assert_eq!(p.place_gc(&ctx(0), 999, &victim(0)), 5);
    }

    #[test]
    fn topology_two_user_four_gc() {
        let p = SepBit::new();
        assert_eq!(p.groups().len(), 6);
        assert_eq!(&p.groups()[..2], &[GroupKind::User, GroupKind::User]);
        assert!(p.groups()[2..].iter().all(|&k| k == GroupKind::Gc));
    }
}
