//! MiDA: migration-count-based lifetime classification
//! (Park, Lee, Kim & Noh, APSys 2021).
//!
//! MiDA observes that a block's *migration count* — how many times GC has
//! had to carry it forward — is a cheap, robust proxy for its remaining
//! lifetime: data that keeps surviving collections is long-lived. Blocks
//! are therefore assigned to stream `min(migrations, m−1)`.
//!
//! Following the ADAPT paper's characterization of MiDA (Observation 2:
//! "all groups can handle user requests"), a *user* rewrite of a block is
//! placed according to the age its migration count had accumulated —
//! grouping it with data of similar longevity — and the count then resets,
//! since the new version starts a fresh life. GC migrations increment the
//! count. The paper configures eight mixed groups.

use crate::lba_table::LbaTable;
use adapt_lss::{GroupId, GroupKind, Lba, PlacementPolicy, PolicyCtx, VictimMeta};

/// Number of streams in the paper's MiDA configuration.
pub const MIDA_GROUPS: usize = 8;

/// Migration-count placement policy.
#[derive(Debug, Clone)]
pub struct Mida {
    groups: Vec<GroupKind>,
    /// Migration count of the current version of each block.
    migrations: LbaTable<u8>,
}

impl Default for Mida {
    fn default() -> Self {
        Self::new()
    }
}

impl Mida {
    /// Create with the paper's eight streams.
    pub fn new() -> Self {
        Self::with_groups(MIDA_GROUPS)
    }

    /// Create with a custom stream count (≥ 2).
    pub fn with_groups(m: usize) -> Self {
        assert!((2..=255).contains(&m));
        Self { groups: vec![GroupKind::Mixed; m], migrations: LbaTable::default() }
    }

    fn cap(&self, count: u8) -> GroupId {
        count.min((self.groups.len() - 1) as u8)
    }

    /// Migration count of a block's current version.
    pub fn migration_count(&self, lba: Lba) -> u8 {
        self.migrations.get(lba)
    }
}

impl PlacementPolicy for Mida {
    fn name(&self) -> &'static str {
        "MiDA"
    }

    fn groups(&self) -> &[GroupKind] {
        &self.groups
    }

    fn place_user(&mut self, _ctx: &PolicyCtx, lba: Lba) -> GroupId {
        // Place by the longevity the previous version demonstrated, then
        // start the new version's life at zero migrations.
        let g = self.cap(self.migrations.get(lba));
        self.migrations.set(lba, 0);
        g
    }

    fn place_gc(&mut self, _ctx: &PolicyCtx, lba: Lba, _victim: &VictimMeta) -> GroupId {
        let count = self.migrations.get(lba).saturating_add(1);
        self.migrations.set(lba, count);
        self.cap(count)
    }

    fn memory_bytes(&self) -> usize {
        self.migrations.memory_bytes() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim() -> VictimMeta {
        VictimMeta { seg: 0, group: 0, created_user_bytes: 0, valid_blocks: 0, segment_blocks: 128 }
    }

    #[test]
    fn fresh_block_goes_to_stream_zero() {
        let mut p = Mida::new();
        assert_eq!(p.place_user(&PolicyCtx::default(), 1), 0);
    }

    #[test]
    fn migrations_deepen_the_stream() {
        let mut p = Mida::new();
        let ctx = PolicyCtx::default();
        p.place_user(&ctx, 1);
        for expect in 1..=7u8 {
            assert_eq!(p.place_gc(&ctx, 1, &victim()), expect);
        }
        // Saturates at the deepest stream.
        assert_eq!(p.place_gc(&ctx, 1, &victim()), 7);
    }

    #[test]
    fn user_rewrite_uses_then_resets_age() {
        let mut p = Mida::new();
        let ctx = PolicyCtx::default();
        p.place_user(&ctx, 1);
        p.place_gc(&ctx, 1, &victim());
        p.place_gc(&ctx, 1, &victim());
        // The rewrite lands in the stream its age earned (2)…
        assert_eq!(p.place_user(&ctx, 1), 2);
        // …and the next rewrite starts fresh.
        assert_eq!(p.place_user(&ctx, 1), 0);
    }

    #[test]
    fn count_saturates_without_overflow() {
        let mut p = Mida::with_groups(4);
        let ctx = PolicyCtx::default();
        p.place_user(&ctx, 1);
        for _ in 0..300 {
            let g = p.place_gc(&ctx, 1, &victim());
            assert!(g <= 3);
        }
    }

    #[test]
    fn eight_mixed_groups() {
        let p = Mida::new();
        assert_eq!(p.groups().len(), 8);
        assert!(p.groups().iter().all(|&k| k == GroupKind::Mixed));
    }
}
