//! Baseline data-placement policies.
//!
//! Reimplementations of the five schemes the ADAPT paper compares against
//! (§4.1), each with its original default group configuration:
//!
//! | Policy  | Groups | Separation signal |
//! |---------|--------|-------------------|
//! | SepGC   | 1 user + 1 GC | user vs GC writes only |
//! | DAC     | 5 mixed       | access counts (promote on update, demote on GC) |
//! | WARCIP  | 5 user + 1 GC | rewrite-interval clustering (online k-means) |
//! | MiDA    | 8 mixed       | migration counts (block age) |
//! | SepBIT  | 2 user + 4 GC | inferred block invalidation time + residual lifespan |
//!
//! All of them pad on SLA expiry (the engine default) — none performs
//! cross-group aggregation; that is ADAPT's contribution (`adapt-core`).

pub mod dac;
pub mod lba_table;
pub mod mida;
pub mod sepbit;
pub mod sepgc;
pub mod warcip;

pub use dac::Dac;
pub use lba_table::LbaTable;
pub use mida::Mida;
pub use sepbit::SepBit;
pub use sepgc::SepGc;
pub use warcip::Warcip;
