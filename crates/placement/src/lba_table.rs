//! Dense per-LBA state table shared by the policies.

/// Growable dense table mapping LBA → policy state. Block volumes address
/// a dense LBA space, so a flat vector beats a hash map on both memory and
/// the per-write hot path.
#[derive(Debug, Clone)]
pub struct LbaTable<T: Copy + Default> {
    entries: Vec<T>,
}

impl<T: Copy + Default> Default for LbaTable<T> {
    fn default() -> Self {
        Self { entries: Vec::new() }
    }
}

impl<T: Copy + Default> LbaTable<T> {
    /// Create with a capacity hint.
    pub fn with_capacity(blocks: u64) -> Self {
        Self { entries: Vec::with_capacity(blocks as usize) }
    }

    /// Value for `lba` (default when never set).
    #[inline]
    pub fn get(&self, lba: u64) -> T {
        self.entries.get(lba as usize).copied().unwrap_or_default()
    }

    /// Set the value, growing as needed.
    #[inline]
    pub fn set(&mut self, lba: u64, value: T) {
        let idx = lba as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, T::default());
        }
        self.entries[idx] = value;
    }

    /// Whether `lba` has an explicit entry slot (it may still hold the
    /// default value).
    #[inline]
    pub fn covers(&self, lba: u64) -> bool {
        (lba as usize) < self.entries.len()
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<T>()
    }

    /// Number of slots allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was ever set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_until_set() {
        let mut t: LbaTable<u32> = LbaTable::default();
        assert_eq!(t.get(10), 0);
        t.set(10, 7);
        assert_eq!(t.get(10), 7);
        assert_eq!(t.get(9), 0);
        assert!(t.covers(10));
        assert!(!t.covers(11));
    }

    #[test]
    fn grows_sparsely() {
        let mut t: LbaTable<u8> = LbaTable::default();
        t.set(1000, 3);
        assert_eq!(t.len(), 1001);
        assert_eq!(t.get(500), 0);
    }

    #[test]
    fn memory_scales_with_type() {
        let mut a: LbaTable<u8> = LbaTable::default();
        let mut b: LbaTable<u64> = LbaTable::default();
        a.set(999, 1);
        b.set(999, 1);
        assert!(b.memory_bytes() >= 8 * a.memory_bytes() / 2);
    }
}
