//! Prototype evaluation harness (paper §4.4).
//!
//! The trace-driven simulator measures WA but not throughput or memory;
//! this crate runs the same engine + placement stack under *real threads*
//! against a bandwidth-modeled four-device RAID-5 array:
//!
//! * [`timeline::DeviceTimeline`] — per-device virtual-time accounting:
//!   every chunk flush charges `bytes / bandwidth` to its device; client
//!   threads throttle against the most-backlogged device, so array
//!   bandwidth is the shared bottleneck exactly as in the paper's Fig. 12a
//!   (GC and padding traffic steal user bandwidth, so lower-WA policies
//!   sustain higher client throughput once the disks saturate).
//! * [`bench::ThroughputBench`] — spawns N client threads (YCSB-A update
//!   streams; paper: 1/4/8 clients, I/O depth 8) over one shared engine and
//!   reports aggregate ops/s, plus the engine's resident metadata footprint
//!   for the memory comparison of Fig. 12b.

pub mod bench;
pub mod sink;
pub mod timeline;

pub use bench::{run_throughput, ThroughputConfig, ThroughputResult};
pub use sink::ProtoSink;
pub use timeline::DeviceTimeline;
