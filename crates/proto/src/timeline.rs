//! Per-device bandwidth accounting on a virtual timeline.
//!
//! Each member SSD is modeled as a serial channel of fixed bandwidth.
//! Chunk flushes *charge* nanoseconds of busy time to their device
//! atomically (lock-free; charging happens inside the engine lock and must
//! be cheap). Client threads then *throttle* outside the lock: if the
//! most-backlogged device's busy time runs ahead of wall-clock time, the
//! client sleeps out the difference — which is precisely how a saturated
//! array back-pressures its submitters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Virtual busy-time ledger for an array's devices.
#[derive(Debug)]
pub struct DeviceTimeline {
    /// Accumulated busy nanoseconds per device.
    busy_ns: Vec<AtomicU64>,
    /// Device bandwidth in bytes per second.
    bytes_per_sec: f64,
    /// Wall-clock epoch the timeline measures against.
    epoch: Instant,
    /// Nanoseconds of the epoch consumed before the last `reset`.
    epoch_offset_ns: AtomicU64,
}

impl DeviceTimeline {
    /// Create a timeline for `devices` members of `bytes_per_sec` each.
    pub fn new(devices: usize, bytes_per_sec: f64) -> Self {
        assert!(devices > 0 && bytes_per_sec > 0.0);
        Self {
            busy_ns: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            bytes_per_sec,
            epoch: Instant::now(),
            epoch_offset_ns: AtomicU64::new(0),
        }
    }

    /// Charge a write of `bytes` to `device`. Lock-free and wait-free.
    pub fn charge(&self, device: usize, bytes: u64) {
        let ns = (bytes as f64 / self.bytes_per_sec * 1e9) as u64;
        self.busy_ns[device].fetch_add(ns, Ordering::Relaxed);
    }

    /// Busy time of the most-backlogged device (ns).
    pub fn max_busy_ns(&self) -> u64 {
        self.busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// Total busy time across devices (ns).
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sleep until wall time catches up with the array's backlog. Returns
    /// the time slept.
    pub fn throttle(&self) -> Duration {
        let busy = Duration::from_nanos(self.max_busy_ns());
        let offset = Duration::from_nanos(self.epoch_offset_ns.load(Ordering::Relaxed));
        let elapsed = self.epoch.elapsed().saturating_sub(offset);
        if busy > elapsed {
            let wait = busy - elapsed;
            std::thread::sleep(wait);
            wait
        } else {
            Duration::ZERO
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.busy_ns.len()
    }

    /// Zero the ledger and restart the wall-clock epoch (used between a
    /// pre-fill phase and the timed window).
    pub fn reset(&self) {
        for b in &self.busy_ns {
            b.store(0, Ordering::Relaxed);
        }
        // Epoch cannot be swapped without &mut; store the offset instead.
        self.epoch_offset_ns.store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_per_device() {
        let t = DeviceTimeline::new(4, 1e9); // 1 GB/s
        t.charge(0, 500_000_000); // 0.5 s
        t.charge(0, 500_000_000); // +0.5 s
        t.charge(1, 250_000_000);
        assert_eq!(t.max_busy_ns(), 1_000_000_000);
        assert_eq!(t.total_busy_ns(), 1_250_000_000);
    }

    #[test]
    fn throttle_sleeps_when_backlogged() {
        let t = DeviceTimeline::new(2, 1e9);
        t.charge(0, 30_000_000); // 30 ms backlog
        let slept = t.throttle();
        assert!(slept > Duration::from_millis(5), "slept {slept:?}");
        // After throttling, we are caught up.
        assert_eq!(t.throttle(), Duration::ZERO);
    }

    #[test]
    fn no_sleep_without_backlog() {
        let t = DeviceTimeline::new(2, 1e12);
        t.charge(0, 1000);
        assert_eq!(t.throttle(), Duration::ZERO);
    }

    #[test]
    fn concurrent_charges_race_free() {
        let t = std::sync::Arc::new(DeviceTimeline::new(1, 1e9));
        let mut handles = vec![];
        for _ in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.charge(0, 1000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.total_busy_ns(), 8 * 1000 * 1000);
    }
}
