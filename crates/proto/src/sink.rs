//! Array sink that charges chunk flushes to the device timeline.

use crate::timeline::DeviceTimeline;
use adapt_array::{ArrayConfig, ArraySink, ArrayStats, ChunkFlush, ChunkLocation, CountingArray};
use std::sync::Arc;

/// [`CountingArray`] composed with a shared [`DeviceTimeline`]: all
/// placement, parity, and stats accounting is the counting sink's (one
/// source of truth — general k+m coding, zero-copy payload path and
/// all), and this wrapper only *observes* the per-device byte deltas of
/// each write and charges them to the timeline. The charge is a couple
/// of atomic adds — cheap enough to run inside the engine lock.
#[derive(Debug)]
pub struct ProtoSink {
    inner: CountingArray,
    timeline: Arc<DeviceTimeline>,
    /// Per-device `total_bytes()` before the write in flight (scratch,
    /// avoids an allocation per chunk).
    before: Vec<u64>,
}

impl ProtoSink {
    /// Create a sink over a shared timeline.
    pub fn new(cfg: ArrayConfig, timeline: Arc<DeviceTimeline>) -> Self {
        assert_eq!(cfg.num_devices, timeline.devices());
        Self { inner: CountingArray::new(cfg), timeline, before: vec![0; cfg.num_devices] }
    }

    /// The shared timeline.
    pub fn timeline(&self) -> &Arc<DeviceTimeline> {
        &self.timeline
    }

    fn snapshot(&mut self) {
        for (slot, dev) in self.before.iter_mut().zip(&self.inner.stats().devices) {
            *slot = dev.total_bytes();
        }
    }

    /// Charge every device's byte growth since [`snapshot`](Self::snapshot)
    /// to the timeline — data, padding, and parity alike, on whichever
    /// devices the counting sink touched.
    fn charge_deltas(&mut self) {
        for (device, (dev, &before)) in
            self.inner.stats().devices.iter().zip(&self.before).enumerate()
        {
            let delta = dev.total_bytes() - before;
            if delta > 0 {
                self.timeline.charge(device, delta);
            }
        }
    }
}

impl ArraySink for ProtoSink {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        self.snapshot();
        let loc = self.inner.write_chunk(flush);
        self.charge_deltas();
        loc
    }

    fn write_chunk_payload(&mut self, flush: ChunkFlush, payload: &[u8]) -> ChunkLocation {
        self.snapshot();
        let loc = self.inner.write_chunk_payload(flush, payload);
        self.charge_deltas();
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.inner.config()
    }

    fn stats(&self) -> &ArrayStats {
        self.inner.stats()
    }

    fn recover_reconcile(
        &mut self,
        next_chunk_seq: u64,
        tail: &[adapt_array::RecoveredFlush],
    ) -> Result<adapt_array::SinkReconcile, adapt_array::ArrayError> {
        self.inner.recover_reconcile(next_chunk_seq, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_charge_timeline() {
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline.clone());
        for _ in 0..3 {
            sink.write_chunk(ChunkFlush {
                user_bytes: cfg.chunk_bytes,
                gc_bytes: 0,
                shadow_bytes: 0,
                pad_bytes: 0,
                group: 0,
                seg: 0,
                chunk_in_seg: 0,
            });
        }
        // 3 data chunks + 1 parity chunk at 64 KiB each over 1 GB/s.
        let expect_ns = (4 * cfg.chunk_bytes) as f64; // 1 byte = 1 ns at 1 GB/s
        assert_eq!(timeline.total_busy_ns(), expect_ns as u64);
        assert_eq!(sink.stats().stripes_completed, 1);
    }

    #[test]
    fn stats_match_counting_semantics() {
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline);
        sink.write_chunk(ChunkFlush {
            user_bytes: cfg.chunk_bytes - 4096,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 4096,
            group: 1,
            seg: 0,
            chunk_in_seg: 0,
        });
        assert_eq!(sink.stats().padded_chunks, 1);
        assert_eq!(sink.stats().pad_bytes(), 4096);
    }

    #[test]
    fn charges_equal_counting_stats_exactly() {
        // The timeline's busy bytes must equal the counting sink's total
        // byte accounting — the wrapper adds no accounting of its own.
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline.clone());
        for i in 0..17u64 {
            let pad = if i % 5 == 0 { 4096 } else { 0 };
            sink.write_chunk(ChunkFlush {
                user_bytes: cfg.chunk_bytes - pad,
                gc_bytes: 0,
                shadow_bytes: 0,
                pad_bytes: pad,
                group: 0,
                seg: 0,
                chunk_in_seg: 0,
            });
        }
        assert_eq!(timeline.total_busy_ns(), sink.stats().total_bytes());
    }

    #[test]
    fn payload_path_charges_too() {
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline.clone());
        let payload = vec![7u8; cfg.chunk_bytes as usize];
        sink.write_chunk_payload(
            ChunkFlush {
                user_bytes: cfg.chunk_bytes,
                gc_bytes: 0,
                shadow_bytes: 0,
                pad_bytes: 0,
                group: 0,
                seg: 0,
                chunk_in_seg: 0,
            },
            &payload,
        );
        assert_eq!(timeline.total_busy_ns(), cfg.chunk_bytes);
    }
}
