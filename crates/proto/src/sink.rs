//! Array sink that charges chunk flushes to the device timeline.

use crate::timeline::DeviceTimeline;
use adapt_array::{ArrayConfig, ArraySink, ArrayStats, ChunkFlush, ChunkLocation, Raid5Layout};
use std::sync::Arc;

/// Counting RAID-5 sink that additionally charges each chunk (and the
/// stripe's parity chunk) to a shared [`DeviceTimeline`]. The charge is a
/// pair of atomic adds — cheap enough to run inside the engine lock.
#[derive(Debug)]
pub struct ProtoSink {
    layout: Raid5Layout,
    stats: ArrayStats,
    next_chunk_seq: u64,
    timeline: Arc<DeviceTimeline>,
}

impl ProtoSink {
    /// Create a sink over a shared timeline.
    pub fn new(cfg: ArrayConfig, timeline: Arc<DeviceTimeline>) -> Self {
        assert_eq!(cfg.num_devices, timeline.devices());
        Self {
            layout: Raid5Layout::new(cfg),
            stats: ArrayStats::new(cfg.num_devices),
            next_chunk_seq: 0,
            timeline,
        }
    }

    /// The shared timeline.
    pub fn timeline(&self) -> &Arc<DeviceTimeline> {
        &self.timeline
    }
}

impl ArraySink for ProtoSink {
    fn write_chunk(&mut self, flush: ChunkFlush) -> ChunkLocation {
        let cfg = *self.layout.config();
        debug_assert_eq!(flush.total_bytes(), cfg.chunk_bytes);
        let loc = self.layout.locate(self.next_chunk_seq);
        self.next_chunk_seq += 1;

        let dev = &mut self.stats.devices[loc.device];
        dev.data_bytes += flush.payload_bytes();
        dev.pad_bytes += flush.pad_bytes;
        dev.chunk_writes += 1;
        if flush.pad_bytes > 0 {
            self.stats.padded_chunks += 1;
        } else {
            self.stats.full_chunks += 1;
        }
        self.timeline.charge(loc.device, cfg.chunk_bytes);

        let k = cfg.data_columns() as u64;
        if self.next_chunk_seq.is_multiple_of(k) {
            let pdev = self.layout.parity_device(loc.stripe);
            let p = &mut self.stats.devices[pdev];
            p.parity_bytes += cfg.chunk_bytes;
            p.chunk_writes += 1;
            self.stats.stripes_completed += 1;
            self.timeline.charge(pdev, cfg.chunk_bytes);
        }
        loc
    }

    fn config(&self) -> &ArrayConfig {
        self.layout.config()
    }

    fn stats(&self) -> &ArrayStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_charge_timeline() {
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline.clone());
        for _ in 0..3 {
            sink.write_chunk(ChunkFlush {
                user_bytes: cfg.chunk_bytes,
                gc_bytes: 0,
                shadow_bytes: 0,
                pad_bytes: 0,
                group: 0,
                seg: 0,
                chunk_in_seg: 0,
            });
        }
        // 3 data chunks + 1 parity chunk at 64 KiB each over 1 GB/s.
        let expect_ns = (4 * cfg.chunk_bytes) as f64; // 1 byte = 1 ns at 1 GB/s
        assert_eq!(timeline.total_busy_ns(), expect_ns as u64);
        assert_eq!(sink.stats().stripes_completed, 1);
    }

    #[test]
    fn stats_match_counting_semantics() {
        let cfg = ArrayConfig::default();
        let timeline = Arc::new(DeviceTimeline::new(4, 1e9));
        let mut sink = ProtoSink::new(cfg, timeline);
        sink.write_chunk(ChunkFlush {
            user_bytes: cfg.chunk_bytes - 4096,
            gc_bytes: 0,
            shadow_bytes: 0,
            pad_bytes: 4096,
            group: 1,
            seg: 0,
            chunk_in_seg: 0,
        });
        assert_eq!(sink.stats().padded_chunks, 1);
        assert_eq!(sink.stats().pad_bytes(), 4096);
    }
}
