//! Multi-client throughput benchmark (Fig. 12).
//!
//! N client threads issue a YCSB-A-shaped stream against one shared engine
//! whose chunk flushes charge a bandwidth-modeled array. Clients are paced
//! to a fixed per-client service rate (think time + I/O-depth-8 pipeline),
//! so a single client cannot saturate the array; with 4–8 clients the
//! array becomes the bottleneck, and each policy's sustainable throughput
//! is set by how much of the bandwidth its GC + padding traffic burns.

use crate::sink::ProtoSink;
use crate::timeline::DeviceTimeline;
use adapt_lss::{GcSelection, Lss, LssConfig, PlacementPolicy};
use adapt_sim::scheme::{with_policy, PolicyVisitor};
use adapt_sim::Scheme;
use adapt_trace::rng::Xoshiro256StarStar;
use adapt_trace::ZipfGenerator;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Throughput experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Volume size in blocks (pre-filled before timing).
    pub num_blocks: u64,
    /// Operations issued per client during the timed run.
    pub ops_per_client: u64,
    /// Number of client threads (paper: 1, 4, 8).
    pub clients: usize,
    /// Zipfian skew of the update stream (YCSB-A default 0.99).
    pub zipf_alpha: f64,
    /// Read fraction (reads bypass the write path; YCSB-A: 0.5).
    pub read_ratio: f64,
    /// Per-device bandwidth (bytes/s). Scaled down so a laptop-scale run
    /// saturates in seconds; the *ratios* between schemes are what Fig. 12a
    /// reports.
    pub device_bytes_per_sec: f64,
    /// Per-client mean service interval per op (µs): models client think
    /// time plus an I/O depth-8 pipeline; bounds a single client's demand.
    pub client_service_us: u64,
    /// GC victim selection.
    pub gc: GcSelection,
    /// Run GC on dedicated background threads (one per client, as the
    /// paper configures) instead of inline on the write path.
    pub background_gc: bool,
    /// RNG seed base.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            num_blocks: 48 * 1024,
            ops_per_client: 12_000,
            clients: 4,
            zipf_alpha: 0.99,
            read_ratio: 0.5,
            device_bytes_per_sec: 120e6,
            client_service_us: 20,
            gc: GcSelection::Greedy,
            background_gc: true,
            seed: 0xB_EEF,
        }
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Client threads used.
    pub clients: usize,
    /// Aggregate operations per second over the timed window.
    pub ops_per_sec: f64,
    /// Write amplification over the timed window.
    pub wa: f64,
    /// Policy-state resident bytes at the end (Fig. 12b).
    pub policy_memory_bytes: u64,
    /// Engine resident bytes (block index + policy) at the end.
    pub engine_memory_bytes: u64,
    /// Wall-clock duration of the timed window.
    pub elapsed_secs: f64,
    /// Median per-write service latency (engine lock + write), µs.
    pub p50_latency_us: f64,
    /// 99th-percentile per-write service latency, µs.
    pub p99_latency_us: f64,
}

struct BenchVisitor {
    cfg: ThroughputConfig,
}

impl PolicyVisitor<ThroughputResult> for BenchVisitor {
    fn visit<P: PlacementPolicy + Send + 'static>(self, policy: P) -> ThroughputResult {
        run_with_policy(self.cfg, policy)
    }
}

/// Run the throughput benchmark for one scheme.
pub fn run_throughput(scheme: Scheme, cfg: ThroughputConfig) -> ThroughputResult {
    let lss = engine_config(&cfg);
    let mut result = with_policy(scheme, &lss, BenchVisitor { cfg });
    result.scheme = scheme;
    result
}

fn engine_config(cfg: &ThroughputConfig) -> LssConfig {
    // Same sizing policy as the simulator (OP floored for small volumes).
    let mut lss = adapt_sim::ReplayConfig::for_volume(cfg.num_blocks, cfg.gc).lss;
    lss.background_gc = cfg.background_gc;
    lss
}

fn run_with_policy<P: PlacementPolicy + Send>(
    cfg: ThroughputConfig,
    policy: P,
) -> ThroughputResult {
    let lss = engine_config(&cfg);
    let array_cfg = lss.array_config();
    let timeline = Arc::new(DeviceTimeline::new(array_cfg.num_devices, cfg.device_bytes_per_sec));
    let sink = ProtoSink::new(array_cfg, timeline.clone());
    let mut engine = Lss::builder(policy, sink).config(lss).gc_select(cfg.gc).build();

    // Pre-fill (dense, untimed).
    for lba in 0..cfg.num_blocks {
        engine.write(lba, lba);
    }
    engine.reset_metrics();
    timeline.reset();

    let engine = Arc::new(Mutex::new(engine));
    // Virtual clock driving the engine's SLA logic: saturated submission
    // (I/O depth 8, async writes) means the device queue never drains, so
    // simulated time holds still between ops and no SLA window expires —
    // matching the paper's throughput setup where coalescing always fills.
    let clock = Arc::new(AtomicU64::new(cfg.num_blocks * 2));

    let start = Instant::now();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut latencies_ns: Vec<u64> = std::thread::scope(|scope| {
        // Background GC threads, one per client (paper §4.4).
        if cfg.background_gc {
            for _ in 0..cfg.clients {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let collected = {
                            let mut e = engine.lock();
                            if e.needs_gc() {
                                e.gc_step()
                            } else {
                                false
                            }
                        };
                        if !collected {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                });
            }
        }
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let engine = Arc::clone(&engine);
                let clock = Arc::clone(&clock);
                let timeline = Arc::clone(&timeline);
                scope.spawn(move || {
                    let mut rng = Xoshiro256StarStar::new(cfg.seed ^ (client as u64) << 32);
                    let zipf = ZipfGenerator::new(cfg.num_blocks, cfg.zipf_alpha);
                    let scatter = adapt_trace::rng::mix64(cfg.seed) | 1;
                    let client_start = Instant::now();
                    let mut vtime_us: u64 = 0;
                    let mut lat = Vec::with_capacity(cfg.ops_per_client as usize / 8);
                    for i in 0..cfg.ops_per_client {
                        let ts = clock.load(Ordering::Relaxed);
                        let rank = zipf.sample(&mut rng);
                        let lba =
                            ((rank as u128 * scatter as u128) % cfg.num_blocks as u128) as u64;
                        if rng.next_f64() >= cfg.read_ratio {
                            // Sample 1-in-8 write latencies (lock + engine).
                            if i % 8 == 0 {
                                let t0 = Instant::now();
                                engine.lock().write(ts, lba);
                                lat.push(t0.elapsed().as_nanos() as u64);
                            } else {
                                engine.lock().write(ts, lba);
                            }
                        }
                        vtime_us += cfg.client_service_us;
                        if i % 64 == 63 {
                            // Client-side pacing (think time / queue depth).
                            let target = Duration::from_micros(vtime_us);
                            let elapsed = client_start.elapsed();
                            if target > elapsed {
                                std::thread::sleep(target - elapsed);
                            }
                            // Array back-pressure.
                            timeline.throttle();
                        }
                    }
                    lat
                })
            })
            .collect();
        let lat: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect();
        done.store(true, Ordering::Relaxed);
        lat
    });
    let elapsed = start.elapsed();
    latencies_ns.sort_unstable();
    let pick = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * q) as usize;
        latencies_ns[idx] as f64 / 1000.0
    };
    let (p50, p99) = (pick(0.5), pick(0.99));

    let mut engine = Arc::try_unwrap(engine).ok().expect("all clients joined").into_inner();
    engine.flush_all(); // complete the accounting for the final partial chunks
    let total_ops = (cfg.ops_per_client * cfg.clients as u64) as f64;
    ThroughputResult {
        scheme: Scheme::SepGc, // overwritten by the caller
        clients: cfg.clients,
        ops_per_sec: total_ops / elapsed.as_secs_f64(),
        wa: engine.metrics().wa(),
        policy_memory_bytes: engine.policy().memory_bytes() as u64,
        engine_memory_bytes: engine.memory_bytes() as u64,
        elapsed_secs: elapsed.as_secs_f64(),
        p50_latency_us: p50,
        p99_latency_us: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(clients: usize) -> ThroughputConfig {
        ThroughputConfig {
            num_blocks: 8 * 1024,
            ops_per_client: 2_000,
            clients,
            client_service_us: 10,
            device_bytes_per_sec: 60e6,
            ..Default::default()
        }
    }

    #[test]
    fn single_client_run_completes() {
        let r = run_throughput(Scheme::SepGc, quick_cfg(1));
        assert!(r.ops_per_sec > 0.0);
        // WA can dip below 1 on short windows: hot overwrites coalesce in
        // the open-chunk buffer before ever reaching the array.
        assert!(r.wa > 0.3 && r.wa < 20.0, "wa {}", r.wa);
        assert!(r.elapsed_secs > 0.0);
    }

    #[test]
    fn multi_client_run_aggregates_ops() {
        let r = run_throughput(Scheme::Adapt, quick_cfg(4));
        assert_eq!(r.clients, 4);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.policy_memory_bytes > 0);
        assert!(r.engine_memory_bytes >= r.policy_memory_bytes);
    }

    #[test]
    fn throughput_scales_with_clients_when_unsaturated() {
        // With a huge bandwidth budget the array never binds; 4 clients
        // should push noticeably more than 1.
        let mut one = quick_cfg(1);
        one.device_bytes_per_sec = 10e9;
        let mut four = quick_cfg(4);
        four.device_bytes_per_sec = 10e9;
        let r1 = run_throughput(Scheme::SepGc, one);
        let r4 = run_throughput(Scheme::SepGc, four);
        assert!(
            r4.ops_per_sec > 1.8 * r1.ops_per_sec,
            "1 client {:.0} vs 4 clients {:.0}",
            r1.ops_per_sec,
            r4.ops_per_sec
        );
    }

    #[test]
    fn inline_gc_mode_still_works() {
        let mut cfg = quick_cfg(2);
        cfg.background_gc = false;
        let r = run_throughput(Scheme::SepBit, cfg);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn scheme_tag_preserved() {
        let r = run_throughput(Scheme::SepBit, quick_cfg(1));
        assert_eq!(r.scheme, Scheme::SepBit);
    }
}
