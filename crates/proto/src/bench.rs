//! Multi-client throughput benchmark (Fig. 12), rebased on the serving
//! engine's async submission API.
//!
//! N client threads issue a YCSB-A-shaped stream through cloned
//! [`Client`] handles against a one-shard server whose engine flushes
//! into a bandwidth-modeled array ([`ProtoSink`]). Clients are paced to
//! a fixed per-client service rate (think time + an I/O-depth-8
//! submission window), so a single client cannot saturate the array;
//! with 4–8 clients the shard becomes the bottleneck, and each policy's
//! sustainable throughput is set by how much of the bandwidth its GC +
//! padding traffic burns. Background GC runs on the shard's drain
//! thread, interleaved with serving, exactly as production serving
//! configures it.
//!
//! Latency is measured end to end: every eighth write is submitted and
//! awaited round trip, so the percentiles cover queueing, apply, and the
//! group-commit barrier — the latency a real caller of the async API
//! observes, not just the engine's lock hold time.

use crate::sink::ProtoSink;
use crate::timeline::DeviceTimeline;
use adapt_lss::{GcSelection, Lss, LssConfig, PlacementPolicy};
use adapt_serve::{Client, Request, ServerBuilder, ShardEngine, ShardPlan, Ticket};
use adapt_sim::serve::{start_server_with, ShardEngineBuilder};
use adapt_sim::Scheme;
use adapt_trace::rng::Xoshiro256StarStar;
use adapt_trace::ZipfGenerator;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Throughput experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Volume size in blocks (pre-filled before timing).
    pub num_blocks: u64,
    /// Operations issued per client during the timed run.
    pub ops_per_client: u64,
    /// Number of client threads (paper: 1, 4, 8).
    pub clients: usize,
    /// Zipfian skew of the update stream (YCSB-A default 0.99).
    pub zipf_alpha: f64,
    /// Read fraction (reads bypass the write path; YCSB-A: 0.5).
    pub read_ratio: f64,
    /// Per-device bandwidth (bytes/s). Scaled down so a laptop-scale run
    /// saturates in seconds; the *ratios* between schemes are what Fig. 12a
    /// reports.
    pub device_bytes_per_sec: f64,
    /// Per-client mean service interval per op (µs): models client think
    /// time plus an I/O depth-8 pipeline; bounds a single client's demand.
    pub client_service_us: u64,
    /// GC victim selection.
    pub gc: GcSelection,
    /// Run GC on the shard's drain thread (interleaved with serving, as
    /// the paper's background-GC configuration) instead of inline on the
    /// write path.
    pub background_gc: bool,
    /// RNG seed base.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            num_blocks: 48 * 1024,
            ops_per_client: 12_000,
            clients: 4,
            zipf_alpha: 0.99,
            read_ratio: 0.5,
            device_bytes_per_sec: 120e6,
            client_service_us: 20,
            gc: GcSelection::Greedy,
            background_gc: true,
            seed: 0xB_EEF,
        }
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Client threads used.
    pub clients: usize,
    /// Aggregate operations per second over the timed window.
    pub ops_per_sec: f64,
    /// Write amplification over the timed window.
    pub wa: f64,
    /// Policy-state resident bytes at the end (Fig. 12b).
    pub policy_memory_bytes: u64,
    /// Engine resident bytes (block index + policy) at the end.
    pub engine_memory_bytes: u64,
    /// Wall-clock duration of the timed window.
    pub elapsed_secs: f64,
    /// Median end-to-end write latency (submit → completion), µs.
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end write latency, µs.
    pub p99_latency_us: f64,
}

fn engine_config(cfg: &ThroughputConfig) -> LssConfig {
    // Same sizing policy as the simulator (OP floored for small volumes).
    // The serving clock advances 1 µs per applied op; pushing the flush
    // SLA out of reach reproduces the saturated-submission setup where
    // coalescing windows always fill before they expire.
    adapt_sim::ReplayConfig::for_volume(cfg.num_blocks, cfg.gc)
        .lss
        .with_background_gc(cfg.background_gc)
        .with_sla_us(1 << 40)
}

/// Engine factory: [`ProtoSink`] over the shared timeline, dense
/// pre-fill, metrics reset so the timed window starts clean.
struct PrefilledProtoEngines {
    timeline: Arc<DeviceTimeline>,
    gc: GcSelection,
}

impl ShardEngineBuilder for PrefilledProtoEngines {
    fn build<P: PlacementPolicy + Send + 'static>(
        &mut self,
        plan: &ShardPlan,
        policy: P,
    ) -> Box<dyn ShardEngine> {
        let sink = ProtoSink::new(plan.lss.array_config(), Arc::clone(&self.timeline));
        let mut engine = Lss::builder(policy, sink).config(plan.lss).gc_select(self.gc).build();
        for lba in 0..plan.lss.user_blocks {
            engine.write(0, lba);
        }
        engine.reset_metrics();
        Box::new(engine)
    }
}

/// Run the throughput benchmark for one scheme.
pub fn run_throughput(scheme: Scheme, cfg: ThroughputConfig) -> ThroughputResult {
    let lss = engine_config(&cfg);
    let timeline =
        Arc::new(DeviceTimeline::new(lss.array_config().num_devices, cfg.device_bytes_per_sec));
    // One shard, one slot: the shared-engine configuration of Fig. 12.
    let builder = ServerBuilder::new()
        .shards(1)
        .queue_depth(256)
        .group_commit_window(8 * cfg.clients.max(1) as u32)
        .range_blocks(cfg.num_blocks)
        .engine_config(lss)
        .volume(0, cfg.num_blocks);
    let server = start_server_with(
        scheme,
        builder,
        PrefilledProtoEngines { timeline: Arc::clone(&timeline), gc: cfg.gc },
    );
    timeline.reset();

    let start = Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client_idx| {
                let client = server.client();
                let timeline = Arc::clone(&timeline);
                scope.spawn(move || run_client(&cfg, client_idx, client, &timeline))
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
    });
    let elapsed = start.elapsed();
    latencies_ns.sort_unstable();
    let pick = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * q) as usize;
        latencies_ns[idx] as f64 / 1000.0
    };
    let (p50, p99) = (pick(0.5), pick(0.99));

    let report = server.shutdown();
    let shard = &report.shards[0];
    assert!(report.balanced(), "throughput run lost completions");
    let total_ops = (cfg.ops_per_client * cfg.clients as u64) as f64;
    ThroughputResult {
        scheme,
        clients: cfg.clients,
        ops_per_sec: total_ops / elapsed.as_secs_f64(),
        wa: shard.telemetry.wa,
        policy_memory_bytes: shard.policy_memory_bytes,
        engine_memory_bytes: shard.engine_memory_bytes,
        elapsed_secs: elapsed.as_secs_f64(),
        p50_latency_us: p50,
        p99_latency_us: p99,
    }
}

/// One client thread: paced YCSB-A stream through the async API with an
/// I/O-depth-8 in-flight window. Returns sampled write latencies (ns).
fn run_client(
    cfg: &ThroughputConfig,
    client_idx: usize,
    client: Client,
    timeline: &DeviceTimeline,
) -> Vec<u64> {
    const DEPTH: usize = 8;
    let tenant = client_idx as u32;
    let mut rng = Xoshiro256StarStar::new(cfg.seed ^ (client_idx as u64) << 32);
    let zipf = ZipfGenerator::new(cfg.num_blocks, cfg.zipf_alpha);
    let scatter = adapt_trace::rng::mix64(cfg.seed) | 1;
    let client_start = Instant::now();
    let mut vtime_us: u64 = 0;
    let mut inflight: VecDeque<Ticket> = VecDeque::with_capacity(DEPTH);
    let mut lat = Vec::with_capacity(cfg.ops_per_client as usize / 8);
    for i in 0..cfg.ops_per_client {
        let rank = zipf.sample(&mut rng);
        let lba = ((rank as u128 * scatter as u128) % cfg.num_blocks as u128) as u64;
        if rng.next_f64() >= cfg.read_ratio {
            let request = Request::write(tenant, 0, lba, 1);
            if i % 8 == 0 {
                // Round-trip sample: end-to-end latency through queue,
                // apply, and group-commit barrier.
                let t0 = Instant::now();
                let ticket = client.submit_backoff(request).expect("submit");
                let c = client.wait(ticket);
                assert!(c.result.is_ok(), "write failed: {:?}", c.result);
                lat.push(t0.elapsed().as_nanos() as u64);
            } else {
                let ticket = client.submit_backoff(request).expect("submit");
                inflight.push_back(ticket);
                if inflight.len() >= DEPTH {
                    let t = inflight.pop_front().unwrap();
                    let c = client.wait(t);
                    assert!(c.result.is_ok(), "write failed: {:?}", c.result);
                }
            }
        }
        vtime_us += cfg.client_service_us;
        if i % 64 == 63 {
            // Client-side pacing (think time / queue depth).
            let target = Duration::from_micros(vtime_us);
            let elapsed = client_start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
            // Array back-pressure.
            timeline.throttle();
        }
    }
    for t in inflight {
        let c = client.wait(t);
        assert!(c.result.is_ok(), "write failed: {:?}", c.result);
    }
    lat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(clients: usize) -> ThroughputConfig {
        ThroughputConfig {
            num_blocks: 8 * 1024,
            ops_per_client: 2_000,
            clients,
            client_service_us: 10,
            device_bytes_per_sec: 60e6,
            ..Default::default()
        }
    }

    #[test]
    fn single_client_run_completes() {
        let r = run_throughput(Scheme::SepGc, quick_cfg(1));
        assert!(r.ops_per_sec > 0.0);
        // WA can dip below 1 on short windows: hot overwrites coalesce in
        // the open-chunk buffer before ever reaching the array.
        assert!(r.wa > 0.3 && r.wa < 20.0, "wa {}", r.wa);
        assert!(r.elapsed_secs > 0.0);
        assert!(r.p99_latency_us >= r.p50_latency_us);
    }

    #[test]
    fn multi_client_run_aggregates_ops() {
        let r = run_throughput(Scheme::Adapt, quick_cfg(4));
        assert_eq!(r.clients, 4);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.policy_memory_bytes > 0);
        assert!(r.engine_memory_bytes >= r.policy_memory_bytes);
    }

    #[test]
    fn throughput_scales_with_clients_when_unsaturated() {
        // With a huge bandwidth budget the array never binds; 4 clients
        // should push noticeably more than 1.
        let mut one = quick_cfg(1);
        one.device_bytes_per_sec = 10e9;
        let mut four = quick_cfg(4);
        four.device_bytes_per_sec = 10e9;
        let r1 = run_throughput(Scheme::SepGc, one);
        let r4 = run_throughput(Scheme::SepGc, four);
        assert!(
            r4.ops_per_sec > 1.8 * r1.ops_per_sec,
            "1 client {:.0} vs 4 clients {:.0}",
            r1.ops_per_sec,
            r4.ops_per_sec
        );
    }

    #[test]
    fn inline_gc_mode_still_works() {
        let mut cfg = quick_cfg(2);
        cfg.background_gc = false;
        let r = run_throughput(Scheme::SepBit, cfg);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn scheme_tag_preserved() {
        let r = run_throughput(Scheme::SepBit, quick_cfg(1));
        assert_eq!(r.scheme, Scheme::SepBit);
    }
}
