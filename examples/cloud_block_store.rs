//! Cloud block-store scenario: replay a calibrated Alibaba-like volume
//! population through ADAPT and the two strongest baselines, and print the
//! per-volume and aggregate comparison — a miniature of the paper's §4.2.
//!
//! ```sh
//! cargo run --release --example cloud_block_store [volumes]
//! ```

use adapt_repro::lss::GcSelection;
use adapt_repro::sim::compare::{compare_volumes, overall_wa_reduction_pct};
use adapt_repro::sim::runner::run_suite;
use adapt_repro::sim::Scheme;
use adapt_repro::trace::{SuiteKind, WorkloadSuite};

fn main() {
    let volumes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("Generating an AliCloud-calibrated evaluation selection ({volumes} volumes)…");
    let suite = WorkloadSuite::evaluation_selection(SuiteKind::Ali, 2026, volumes, 20.0);

    let adapt = run_suite(Scheme::Adapt, GcSelection::Greedy, &suite, None);
    let sepbit = run_suite(Scheme::SepBit, GcSelection::Greedy, &suite, None);
    let sepgc = run_suite(Scheme::SepGc, GcSelection::Greedy, &suite, None);

    println!("\n{:>10} {:>10} {:>12}", "scheme", "overall WA", "padding %");
    for r in [&sepgc, &sepbit, &adapt] {
        println!(
            "{:>10} {:>10.3} {:>11.1}%",
            r.scheme.name(),
            r.overall_wa(),
            r.overall_padding_ratio() * 100.0
        );
    }

    println!(
        "\nADAPT WA reduction: {:+.1}% vs SepBIT, {:+.1}% vs SepGC",
        overall_wa_reduction_pct(&adapt, &sepbit),
        overall_wa_reduction_pct(&adapt, &sepgc),
    );

    println!("\nPer-volume view (ADAPT vs SepBIT):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "vol", "rate req/s", "ADAPT WA", "SepBIT WA", "padΔ%"
    );
    let comps = compare_volumes(&adapt, &sepbit);
    for ((va, vb), c) in adapt.volumes.iter().zip(&sepbit.volumes).zip(&comps) {
        let rate = suite.volumes[va.volume_id as usize].mean_rate_per_sec();
        println!(
            "{:>6} {:>10.1} {:>10.3} {:>10.3} {:>9.1}%",
            va.volume_id,
            rate,
            va.wa(),
            vb.wa(),
            c.padding_reduction_pct
        );
    }
}
