//! Sensitivity sweep: how WA responds to workload skew at a fixed
//! intensity — the shape of the paper's Fig. 11 (right), runnable in
//! seconds.
//!
//! ```sh
//! cargo run --release --example sensitivity_sweep
//! ```

use adapt_repro::lss::GcSelection;
use adapt_repro::sim::{replay_volume, ReplayConfig, Scheme};
use adapt_repro::trace::ycsb::{AccessDistribution, TrafficIntensity, YcsbConfig};

fn main() {
    let blocks = 32 * 1024;
    let updates = 200_000;
    println!("YCSB-A skew sweep, medium intensity, {blocks} blocks, {updates} updates\n");
    println!("{:>6} {:>10} {:>10} {:>10}", "alpha", "SepGC", "SepBIT", "ADAPT");
    for alpha in [0.0, 0.5, 0.9, 0.99] {
        let mut row = format!("{alpha:>6.2}");
        for scheme in [Scheme::SepGc, Scheme::SepBit, Scheme::Adapt] {
            let cfg = YcsbConfig {
                num_blocks: blocks,
                num_updates: updates,
                zipf_alpha: alpha,
                read_ratio: 0.0,
                arrival: TrafficIntensity::Medium.arrival(),
                blocks_per_request: 1,
                distribution: AccessDistribution::Zipfian,
                seed: 0x2026,
            };
            let replay = ReplayConfig::for_volume(blocks, GcSelection::Greedy);
            let r = replay_volume(scheme, replay, 0, cfg.generator());
            row.push_str(&format!(" {:>10.3}", r.wa()));
        }
        println!("{row}");
    }
    println!("\nExpected shape: WA falls as skew rises; ADAPT lowest at high skew.");
}
