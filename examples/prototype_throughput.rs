//! Prototype throughput demo: the paper's Fig. 12a mechanism in action.
//! Multiple client threads share one engine over a bandwidth-modeled
//! RAID-5 array; lower-WA placement leaves more bandwidth for user writes.
//!
//! ```sh
//! cargo run --release --example prototype_throughput [clients]
//! ```

use adapt_repro::proto::{run_throughput, ThroughputConfig};
use adapt_repro::sim::Scheme;

fn main() {
    let clients: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("Prototype throughput, {clients} clients, YCSB-A, 4×RAID-5\n");
    println!("{:>8} {:>12} {:>8} {:>12}", "scheme", "ops/s", "WA", "policy KiB");
    for scheme in [Scheme::SepGc, Scheme::Warcip, Scheme::SepBit, Scheme::Adapt] {
        let cfg = ThroughputConfig {
            num_blocks: 32 * 1024,
            ops_per_client: 25_000,
            clients,
            ..Default::default()
        };
        let r = run_throughput(scheme, cfg);
        println!(
            "{:>8} {:>12.0} {:>8.3} {:>12.1}",
            scheme.name(),
            r.ops_per_sec,
            r.wa,
            r.policy_memory_bytes as f64 / 1024.0
        );
    }
    println!("\nWith enough clients the array saturates and throughput ranks by 1/WA.");
}
