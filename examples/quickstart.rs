//! Quickstart: build a log-structured store with the ADAPT placement
//! policy, feed it a small skewed workload, and read the write
//! amplification / padding metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adapt_repro::adapt::Adapt;
use adapt_repro::array::{ArraySink, CountingArray};
use adapt_repro::lss::{EventConfig, GcSelection, Lss, LssConfig};
use adapt_repro::trace::ycsb::{AccessDistribution, TrafficIntensity, YcsbConfig};

fn main() {
    // 1. Configure the engine: 4 KiB blocks, 64 KiB chunks, 512 KiB
    //    segments, 100 µs coalescing SLA — the paper's setup.
    let cfg = LssConfig { user_blocks: 32 * 1024, op_ratio: 0.28, ..Default::default() };

    // 2. Pick a placement policy (ADAPT here; see `adapt_placement` for the
    //    baselines) and an array sink (accounting-only RAID-5). Event
    //    capture is opt-in; it feeds the telemetry snapshot below.
    let policy = Adapt::new(&cfg);
    let sink = CountingArray::new(cfg.array_config());
    let mut engine = Lss::builder(policy, sink)
        .config(cfg)
        .gc_select(GcSelection::Greedy)
        .events(EventConfig::enabled())
        .build();

    // 3. Drive it with a workload. YCSB-A-shaped: fill once, then Zipfian
    //    updates at medium intensity (some chunks fill, some pad).
    let workload = YcsbConfig {
        num_blocks: 32 * 1024,
        num_updates: 200_000,
        zipf_alpha: 0.9,
        read_ratio: 0.0,
        arrival: TrafficIntensity::Medium.arrival(),
        blocks_per_request: 1,
        distribution: AccessDistribution::Zipfian,
        seed: 7,
    };
    let mut filled = false;
    for rec in workload.generator() {
        engine.write_request(rec.ts_us, rec.lba, rec.num_blocks);
        // Measure steady state only: reset counters once the fill is done.
        if !filled && engine.user_bytes_clock() >= 32 * 1024 * 4096 {
            engine.reset_metrics();
            filled = true;
        }
    }
    engine.flush_all();

    // 4. Inspect the results — one unified snapshot, then the raw metrics.
    let telemetry = engine.telemetry();
    let m = engine.metrics();
    println!("host writes      : {:>10} bytes", m.host_write_bytes);
    println!("user flushed     : {:>10} bytes", m.user_bytes);
    println!("GC rewrites      : {:>10} bytes", m.gc_bytes);
    println!("shadow copies    : {:>10} bytes", m.shadow_bytes);
    println!("zero padding     : {:>10} bytes", m.pad_bytes);
    println!("write amp (WA)   : {:>10.3}", m.wa());
    println!("padding ratio    : {:>10.1}%", m.padding_ratio() * 100.0);
    println!("GC passes        : {:>10}", m.gc_passes);
    println!("shadow appends   : {:>10}", m.shadow_append_events);
    println!(
        "adaptive thresh  : {:>10.0} bytes ({} adoptions)",
        engine.policy().effective_threshold(),
        engine.policy().adoptions()
    );
    println!("policy memory    : {:>10} bytes", engine.memory_bytes());

    let stats = engine.sink().stats();
    println!(
        "array            : {} chunks ({} padded), parity {} bytes, imbalance {:.4}",
        stats.devices.iter().map(|d| d.chunk_writes).sum::<u64>(),
        stats.padded_chunks,
        stats.parity_bytes(),
        stats.device_imbalance()
    );
    println!(
        "events           : {:>10} emitted across {} kinds, {} gauge samples",
        telemetry.events.emitted,
        telemetry.events.distinct_kinds(),
        telemetry.gauges.len()
    );
    println!("durability p99   : {:>10} µs", telemetry.durability_latency.p99_us);
}
