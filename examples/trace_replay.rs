//! Replay a real (or exported) block trace file through any placement
//! scheme. Works with the MSRC, Alibaba, and Tencent public trace formats.
//!
//! ```sh
//! cargo run --release --example trace_replay -- <file> <msrc|ali|tencent> \
//!     [scheme] [device-filter]
//! ```
//!
//! Without arguments it demonstrates the pipeline on a synthetic volume
//! exported to the Ali dialect.

use adapt_repro::lss::GcSelection;
use adapt_repro::sim::{replay_volume, ReplayConfig, Scheme};
use adapt_repro::trace::formats::{write_ali_format, TraceFormat, TraceParser};
use adapt_repro::trace::{SuiteKind, TraceRecord, WorkloadSuite};
use std::io::BufReader;

fn scheme_by_name(name: &str) -> Scheme {
    match name.to_ascii_lowercase().as_str() {
        "sepgc" => Scheme::SepGc,
        "dac" => Scheme::Dac,
        "warcip" => Scheme::Warcip,
        "mida" => Scheme::Mida,
        "sepbit" => Scheme::SepBit,
        _ => Scheme::Adapt,
    }
}

fn replay(records: Vec<TraceRecord>, scheme: Scheme) {
    let max_lba = records.iter().map(|r| r.lba + r.num_blocks as u64).max().unwrap_or(1);
    let writes: u64 = records.iter().filter(|r| r.is_write()).map(|r| r.num_blocks as u64).sum();
    println!(
        "{} records, {} write blocks, address space {} blocks ({} MiB)",
        records.len(),
        writes,
        max_lba,
        max_lba * 4096 / (1 << 20)
    );
    let cfg = ReplayConfig::for_volume(max_lba.max(4096), GcSelection::Greedy);
    let r = replay_volume(scheme, cfg, 0, records.into_iter());
    println!(
        "{}: WA {:.3}, padding {:.1}%, GC passes {}, read amp {:.2}",
        scheme.name(),
        r.wa(),
        r.padding_ratio() * 100.0,
        r.metrics.gc_passes,
        r.metrics.read_amplification()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 {
        let format = match args[2].as_str() {
            "msrc" => TraceFormat::Msrc,
            "tencent" => TraceFormat::Tencent,
            _ => TraceFormat::Ali,
        };
        let scheme = args.get(3).map(|s| scheme_by_name(s)).unwrap_or(Scheme::Adapt);
        let file = std::fs::File::open(&args[1]).expect("open trace file");
        let mut parser = TraceParser::new(BufReader::new(file), format);
        if let Some(dev) = args.get(4) {
            parser = parser.with_device_filter(dev.clone());
        }
        let records: Vec<TraceRecord> = parser.by_ref().collect();
        println!("parsed {} / skipped {}", parser.stats.parsed, parser.stats.skipped);
        replay(records, scheme);
        return;
    }

    // Demo path: synthesize → export → parse → replay.
    println!("(no trace file given; demonstrating with a synthetic Ali-like volume)\n");
    let suite = WorkloadSuite::evaluation_selection(SuiteKind::Ali, 2026, 1, 20.0);
    let records: Vec<TraceRecord> = suite.volumes[0].trace(30_000).collect();
    let mut buf = Vec::new();
    write_ali_format(&mut buf, "demo", records.iter().copied()).unwrap();
    println!("exported {} bytes in the Ali CSV dialect; parsing back…", buf.len());
    let parsed: Vec<TraceRecord> =
        TraceParser::new(std::io::Cursor::new(buf), TraceFormat::Ali).collect();
    replay(parsed, Scheme::Adapt);
}
